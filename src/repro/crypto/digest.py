"""Canonical digests of protocol values.

Protocol payloads are arbitrary Python values (the paper's interface
takes "an arbitrary string"; we are slightly more liberal and accept any
tree of basic types and dataclasses). :func:`stable_digest` serializes
such a value canonically — independent of dict insertion order — and
hashes it with SHA-256 so that two honest nodes always derive the same
digest for the same logical value.

The canonicalizer is iterative (an explicit stack instead of one Python
frame per tree node) with single-append fast paths for the str/int/
bytes leaves that dominate real payloads. :func:`cached_digest` adds an
identity-keyed memo on top for the frozen record objects the simulator
passes between replicas by reference — the same ``TransmissionRecord``
has its digest requested at every replica of every unit it crosses.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Callable, List, Optional

from repro.crypto.caches import IdentityLRU, caches_enabled
from repro.errors import CryptoError


class _Emit:
    """Stack marker: literal bytes to append when popped (container
    closers). A distinct type so byte *values* can never alias it."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


_CLOSE_LIST = _Emit(b"]")
_CLOSE_TUPLE = _Emit(b")")
_CLOSE_DICT = _Emit(b"}")
_CLOSE_SET = _Emit(b")")
_CLOSE_DATACLASS = _Emit(b">")

#: Per-class canonical expanders installed by :mod:`repro.core.codec`:
#: generated functions that push one dataclass's fields onto the walk
#: stack with the field-name encodings precomputed. Byte-identical to
#: the generic dataclass branch in :func:`_canonical_slow` — only the
#: per-field ``dataclasses.fields``/encode overhead is removed. Empty
#: when the codec is disabled (the ``--disable-codec`` control pass).
_CANONICAL_EXPANDERS: dict = {}


def set_canonical_expanders(mapping: Optional[dict]) -> None:
    """Install (or, with None, remove) generated per-class expanders."""
    global _CANONICAL_EXPANDERS
    _CANONICAL_EXPANDERS = mapping if mapping is not None else {}


def canonical_field_marker(name: str) -> _Emit:
    """Precomputed canonical encoding of a dataclass field name, for
    generated expanders (``s<len>:<name>`` merged into one append)."""
    encoded = name.encode("utf-8")
    return _Emit(b"s%d:" % len(encoded) + encoded)


def canonical_dataclass_close() -> _Emit:
    """The dataclass close marker, shared with generated expanders."""
    return _CLOSE_DATACLASS


def _canonical_into(value: Any, out: List[bytes]) -> None:
    """Append the canonical byte representation of ``value`` to ``out``.

    Iterative depth-first walk; children are pushed in reverse so pops
    emit them in order. Exact types take the fast path; subclasses fall
    back to the isinstance chain so e.g. ``IntEnum`` members serialize
    exactly as before.
    """
    append = out.append
    stack: List[Any] = [value]
    pop = stack.pop
    while stack:
        v = pop()
        cls = v.__class__
        if cls is _Emit:
            append(v.data)
        elif cls is str:
            encoded = v.encode("utf-8")
            append(b"s%d:" % len(encoded))
            append(encoded)
        elif cls is int:
            append(b"i%d" % v)
        elif cls is bool:
            append(b"b1" if v else b"b0")
        elif v is None:
            append(b"n")
        elif cls is bytes:
            append(b"y%d:" % len(v))
            append(v)
        elif cls is float:
            append(b"f" + repr(v).encode())
        elif cls is tuple:
            # Tuples and lists are distinct values and must never
            # collide (``(None, None)`` vs ``[None, None]``) — the wire
            # layer documents that JSON's tuple→list conversion changes
            # the digest and callers normalize on receipt.
            append(b"t%d(" % len(v))
            stack.append(_CLOSE_TUPLE)
            for item in reversed(v):
                stack.append(item)
        elif cls is list:
            append(b"l%d[" % len(v))
            stack.append(_CLOSE_LIST)
            for item in reversed(v):
                stack.append(item)
        elif cls is dict:
            append(b"d%d{" % len(v))
            stack.append(_CLOSE_DICT)
            try:
                items = sorted(v.items(), key=_repr_of_key)
            except TypeError as exc:  # unsortable keys
                raise CryptoError(
                    f"cannot canonicalize dict keys: {exc}"
                ) from exc
            for key, item in reversed(items):
                stack.append(item)
                stack.append(key)
        elif cls is set or cls is frozenset:
            append(b"S%d(" % len(v))
            stack.append(_CLOSE_SET)
            for item in sorted(v, key=repr, reverse=True):
                stack.append(item)
        else:
            expander = _CANONICAL_EXPANDERS.get(cls)
            if expander is not None:
                expander(v, append, stack)
            else:
                _canonical_slow(v, append, stack)


def _repr_of_key(kv: Any) -> str:
    return repr(kv[0])


def _canonical_slow(v: Any, append: Callable, stack: List[Any]) -> None:
    """Subclass / dataclass / unknown-type path of the canonical walk.

    Mirrors the exact-type dispatch with isinstance checks so values of
    derived types keep their historical encodings.
    """
    if isinstance(v, bool):
        append(b"b1" if v else b"b0")
    elif isinstance(v, int):
        append(b"i" + str(v).encode())
    elif isinstance(v, float):
        append(b"f" + repr(v).encode())
    elif isinstance(v, str):
        encoded = v.encode("utf-8")
        append(b"s%d:" % len(encoded))
        append(encoded)
    elif isinstance(v, bytes):
        append(b"y%d:" % len(v))
        append(v)
    elif isinstance(v, tuple):
        append(b"t%d(" % len(v))
        stack.append(_CLOSE_TUPLE)
        for item in reversed(v):
            stack.append(item)
    elif isinstance(v, list):
        append(b"l%d[" % len(v))
        stack.append(_CLOSE_LIST)
        for item in reversed(v):
            stack.append(item)
    elif isinstance(v, dict):
        append(b"d%d{" % len(v))
        stack.append(_CLOSE_DICT)
        try:
            items = sorted(v.items(), key=_repr_of_key)
        except TypeError as exc:
            raise CryptoError(f"cannot canonicalize dict keys: {exc}") from exc
        for key, item in reversed(items):
            stack.append(item)
            stack.append(key)
    elif isinstance(v, (set, frozenset)):
        append(b"S%d(" % len(v))
        stack.append(_CLOSE_SET)
        for item in sorted(v, key=repr, reverse=True):
            stack.append(item)
    elif dataclasses.is_dataclass(v) and not isinstance(v, type):
        append(b"D" + type(v).__name__.encode() + b"<")
        stack.append(_CLOSE_DATACLASS)
        for field in reversed(dataclasses.fields(v)):
            stack.append(getattr(v, field.name))
            stack.append(field.name)
    else:
        raise CryptoError(
            f"cannot canonicalize value of type {type(v).__name__}"
        )


def stable_digest(value: Any) -> str:
    """Return a hex SHA-256 digest of ``value``'s canonical form.

    Raises:
        CryptoError: If the value contains a type with no canonical
            representation (e.g. an arbitrary object).
    """
    out: List[bytes] = []
    _canonical_into(value, out)
    return hashlib.sha256(b"".join(out)).hexdigest()


# ----------------------------------------------------------------------
# Identity-keyed digest memo
# ----------------------------------------------------------------------

#: Shared memo for :func:`cached_digest`. Entries pin their keyed
#: object, so identity keys cannot be recycled while cached (see
#: :class:`~repro.crypto.caches.IdentityLRU`).
_DIGEST_CACHE = IdentityLRU(maxsize=8192)

#: Leaf types that can never change value in place.
_IMMUTABLE_LEAVES = (type(None), bool, int, float, str, bytes)

#: Per-class immutability verdicts installed by :mod:`repro.core.codec`:
#: for a MANIFEST class, ``False`` means "never deeply immutable" (not
#: frozen, or a field is always a mutable container) and a callable
#: isinstance-checks the scalar fields and pushes only the fields the
#: spec cannot decide statically. A verdict may only be *stricter* than
#: the reflective walk — refusing to memoize is always safe, memoizing a
#: mutable value never is. Empty when the codec is disabled (the
#: ``--disable-codec`` control pass).
_IMMUTABILITY_VERDICTS: dict = {}


def set_immutability_verdicts(mapping: Optional[dict]) -> None:
    """Install (or, with None, remove) generated per-class verdicts."""
    global _IMMUTABILITY_VERDICTS
    _IMMUTABILITY_VERDICTS = mapping if mapping is not None else {}


def _deeply_immutable(value: Any) -> bool:
    """Whether ``value`` is a tree of immutable values all the way down.

    Only such values are safe to memoize by identity with no
    invalidation protocol: nothing reachable from them can be mutated
    into a different canonical form. Frozen dataclasses qualify when
    every field value does; lists, dicts, sets, and non-frozen
    dataclasses do not.
    """
    verdicts = _IMMUTABILITY_VERDICTS
    stack = [value]
    pop = stack.pop
    while stack:
        v = pop()
        verdict = verdicts.get(v.__class__)
        if verdict is not None:
            if verdict is False:
                return False
            if verdict(v, stack):
                continue
            return False
        if isinstance(v, _IMMUTABLE_LEAVES):
            continue
        if isinstance(v, (tuple, frozenset)):
            stack.extend(v)
            continue
        if dataclasses.is_dataclass(v) and not isinstance(v, type):
            params = getattr(type(v), "__dataclass_params__", None)
            if params is None or not params.frozen:
                return False
            for field in dataclasses.fields(v):
                stack.append(getattr(v, field.name))
            continue
        return False
    return True


def cached_digest(
    obj: Any, compute: Optional[Callable[[Any], str]] = None
) -> str:
    """Identity-memoized digest of ``obj``.

    Args:
        obj: The value to digest. Cache hits require the *same object*
            (``is``-identity); equal-but-distinct objects recompute and
            agree with :func:`stable_digest` by construction.
        compute: Digest function applied on a miss; defaults to
            :func:`stable_digest` of ``obj`` itself. Record classes pass
            a function digesting their identity tuple so the cached
            value is byte-for-byte the historical formula.

    Mutable values (anything failing the deep-immutability check) are
    never cached — they take the compute path every time, so the memo
    needs no invalidation hooks.
    """
    fn = compute if compute is not None else stable_digest
    if not caches_enabled():
        return fn(obj)
    hit = _DIGEST_CACHE.lookup(obj)
    if hit is not None:
        return hit
    digest = fn(obj)
    if _deeply_immutable(obj):
        _DIGEST_CACHE.store(obj, digest)
    return digest


def clear_digest_cache() -> None:
    """Drop every memoized digest (used when caches are disabled)."""
    _DIGEST_CACHE.clear()


def digest_cache_stats() -> dict:
    """Hit/miss/size counters for the shared digest memo."""
    return {
        "hits": _DIGEST_CACHE.hits,
        "misses": _DIGEST_CACHE.misses,
        "size": len(_DIGEST_CACHE),
    }
