"""The trusted key registry (the deployment's PKI).

Blockplane is permissioned: the application administrator launches every
node and distributes key material, so "the set of nodes and their public
keys are known to all nodes" (Section III-B). :class:`KeyRegistry`
models that setup step. Each node gets a random per-node secret; the
signature layer derives MACs from it. In a real deployment these would
be asymmetric key pairs — the trust and quorum arithmetic is identical.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

from repro.crypto.caches import KeyedLRU
from repro.errors import CryptoError


class KeyRegistry:
    """Maps node ids to signing secrets.

    The registry also owns the signature-verification memo for its key
    material (see :func:`repro.crypto.signatures.verify`): verdicts are
    a pure function of ``(signer, digest, mac)`` *and* the registered
    secrets, so any mutation of the key set — a new registration or a
    rotation — drops every cached verdict. That wholesale invalidation
    is what makes negative caching safe: "unknown signer" can never
    outlive the registration that would change the answer.

    Args:
        seed: Deterministic seed so a deployment's keys are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._keys: Dict[str, bytes] = {}
        self._rotations: Dict[str, int] = {}
        #: Mutation counter; bumped whenever any secret (dis)appears.
        self.version = 0
        #: Bounded memo of verification verdicts under the current keys.
        self.verification_cache = KeyedLRU(maxsize=16384)

    def _invalidate(self) -> None:
        self.version += 1
        self.verification_cache.clear()

    def register(self, node_id: str) -> bytes:
        """Create (or return) the secret for ``node_id``."""
        if node_id not in self._keys:
            material = f"key/{self._seed}/{node_id}".encode()
            self._keys[node_id] = hashlib.sha256(material).digest()
            self._invalidate()
        return self._keys[node_id]

    def rotate(self, node_id: str) -> bytes:
        """Replace ``node_id``'s secret with a fresh one.

        Signatures minted under the old secret stop verifying, and any
        cached verdicts (positive or negative) are dropped.

        Raises:
            CryptoError: If the node was never registered.
        """
        if node_id not in self._keys:
            raise CryptoError(f"cannot rotate unregistered node {node_id!r}")
        generation = self._rotations.get(node_id, 0) + 1
        self._rotations[node_id] = generation
        material = f"key/{self._seed}/{node_id}/gen{generation}".encode()
        self._keys[node_id] = hashlib.sha256(material).digest()
        self._invalidate()
        return self._keys[node_id]

    def register_all(self, node_ids: Iterable[str]) -> None:
        """Register a batch of nodes."""
        for node_id in node_ids:
            self.register(node_id)

    def secret_for(self, node_id: str) -> bytes:
        """The signing secret of a registered node.

        Raises:
            CryptoError: If the node was never registered — signatures
                from unknown identities must never verify.
        """
        try:
            return self._keys[node_id]
        except KeyError:
            raise CryptoError(f"no key registered for node {node_id!r}") from None

    def known_nodes(self) -> List[str]:
        """All registered node ids (sorted, for determinism)."""
        return sorted(self._keys)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._keys
