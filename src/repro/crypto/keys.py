"""The trusted key registry (the deployment's PKI).

Blockplane is permissioned: the application administrator launches every
node and distributes key material, so "the set of nodes and their public
keys are known to all nodes" (Section III-B). :class:`KeyRegistry`
models that setup step. Each node gets a random per-node secret; the
signature layer derives MACs from it. In a real deployment these would
be asymmetric key pairs — the trust and quorum arithmetic is identical.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

from repro.errors import CryptoError


class KeyRegistry:
    """Maps node ids to signing secrets.

    Args:
        seed: Deterministic seed so a deployment's keys are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._keys: Dict[str, bytes] = {}

    def register(self, node_id: str) -> bytes:
        """Create (or return) the secret for ``node_id``."""
        if node_id not in self._keys:
            material = f"key/{self._seed}/{node_id}".encode()
            self._keys[node_id] = hashlib.sha256(material).digest()
        return self._keys[node_id]

    def register_all(self, node_ids: Iterable[str]) -> None:
        """Register a batch of nodes."""
        for node_id in node_ids:
            self.register(node_id)

    def secret_for(self, node_id: str) -> bytes:
        """The signing secret of a registered node.

        Raises:
            CryptoError: If the node was never registered — signatures
                from unknown identities must never verify.
        """
        try:
            return self._keys[node_id]
        except KeyError:
            raise CryptoError(f"no key registered for node {node_id!r}") from None

    def known_nodes(self) -> List[str]:
        """All registered node ids (sorted, for determinism)."""
        return sorted(self._keys)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._keys
