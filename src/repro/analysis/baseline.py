"""Finding baselines: land new rules blocking without freezing history.

A baseline file records a fingerprint per accepted finding; a
``--baseline`` run fails only on findings *not* in the file, so
BP009–BP012 can gate CI immediately while the legacy backlog is burned
down deliberately (and the stale-suppression audit keeps the burndown
honest).

Fingerprints hash ``rule:path:message`` — deliberately **not** the
line number, so reflowing a file does not resurrect an accepted
finding. Two identical findings in one file collapse into one
fingerprint; that is the accepted imprecision of every baseline
scheme, and the reason baselines are a migration tool rather than a
suppression mechanism.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Sequence, Set

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    payload = f"{finding.rule}:{finding.path}:{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def render_baseline(findings: Sequence[Finding]) -> str:
    """The baseline file body for ``--write-baseline``."""
    document = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({fingerprint(f) for f in findings}),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def load_baseline(path: str) -> Set[str]:
    """Accepted fingerprints from a baseline file.

    Raises ``ValueError`` on unreadable/malformed files — a silently
    empty baseline would flip every legacy finding to blocking.
    """
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("fingerprints"), list)
    ):
        raise ValueError(f"malformed baseline {path}")
    return {str(fp) for fp in document["fingerprints"]}


def new_findings(
    findings: Sequence[Finding], accepted: Set[str]
) -> List[Finding]:
    """The findings whose fingerprints are not in the baseline."""
    return [f for f in findings if fingerprint(f) not in accepted]
