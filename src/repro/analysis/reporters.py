"""Finding reporters: text, JSON, and SARIF for code scanning."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.findings import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """gcc-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [str(finding) for finding in findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    if findings:
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    interproc: Optional[Dict[str, object]] = None,
) -> str:
    """Stable JSON document (for the CI artifact and tooling).

    ``interproc`` (the call-graph ``stats()`` dict) adds an
    ``interproc`` section when the interprocedural pass ran.
    """
    document: Dict[str, object] = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }
    if interproc is not None:
        document["interproc"] = interproc
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(
    findings: Sequence[Finding],
    registry: Optional[Dict[str, Type]] = None,
) -> str:
    """SARIF 2.1.0 — GitHub code-scanning annotations from lint runs."""
    rule_ids = sorted({f.rule for f in findings})
    rules = []
    for rule_id in rule_ids:
        checker = (registry or {}).get(rule_id)
        descriptor: Dict[str, object] = {"id": rule_id}
        if checker is not None:
            descriptor["shortDescription"] = {"text": checker.summary}
            if checker.rationale:
                descriptor["fullDescription"] = {"text": checker.rationale}
        rules.append(descriptor)
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "bp-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rules(registry: Dict[str, Type]) -> str:
    """``--list-rules`` output: id, summary, and rationale per rule."""
    blocks: List[str] = []
    for rule in sorted(registry):
        checker = registry[rule]
        blocks.append(f"{rule}  {checker.summary}")
        if checker.rationale:
            blocks.append(f"       {checker.rationale}")
    return "\n".join(blocks)
