"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Type

from repro.analysis.findings import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """gcc-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [str(finding) for finding in findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    if findings:
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document (for the CI artifact and tooling)."""
    document = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rules(registry: Dict[str, Type]) -> str:
    """``--list-rules`` output: id, summary, and rationale per rule."""
    blocks: List[str] = []
    for rule in sorted(registry):
        checker = registry[rule]
        blocks.append(f"{rule}  {checker.summary}")
        if checker.rationale:
            blocks.append(f"       {checker.rationale}")
    return "\n".join(blocks)
