"""Statement-level control-flow graphs and dominators for rule authors.

The proof-discipline rules (BP003 and friends) need a *dominance*
notion: "every path from function entry to this payload access passes
through a verification check". Full dataflow is overkill for ~50-line
protocol handlers, so this module builds a conservative statement-level
CFG per function and computes classic iterative dominators over it.

Granularity: every simple statement is a node; an ``if``/``while``/
``for`` contributes a node for its test/iterable (which dominates both
branches), branches rejoin afterwards; ``try`` bodies edge into their
handlers from the try entry (any statement may raise — conservative);
``return``/``raise``/``break``/``continue`` terminate or redirect
paths. The result over-approximates reachability, which for a lint
means missed dominance is reported and spurious dominance is not
invented — checks stay sound for the "flag anything unproven" use.

New checkers get this for ~5 lines::

    cfg = FunctionCFG(func_def)
    if not cfg.dominated_by(use_stmt, lambda s: is_check(s)):
        ...flag...
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Set


def header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The parts of ``stmt`` that execute *before* control passes
    beyond it in the CFG.

    Dominator queries hand whole statements to the caller's predicate;
    for a compound statement only its header (``if``/``while`` test,
    ``for`` iterable, ``with`` context managers) has actually run on
    every path through it — a call nested in one branch's body must not
    vouch for the other branch. Predicates should walk these roots, not
    the raw statement.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []  # entering a try proves nothing about its body
    if isinstance(stmt, ast.Match):
        return [stmt.subject]  # guards/bodies run on some paths only
    return [stmt]


class FunctionCFG:
    """Control-flow graph over one function's statements.

    Nodes are ``ast.stmt`` objects (identity-keyed). A virtual entry
    node precedes the first statement.
    """

    ENTRY = "<entry>"

    def __init__(self, func: ast.AST) -> None:
        body = getattr(func, "body", [])
        self._succ: Dict[object, List[object]] = {self.ENTRY: []}
        self._stmts: List[ast.stmt] = []
        #: statement → the CFG node whose execution it belongs to (a
        #: statement nested in an ``if`` body maps to itself; the
        #: ``if``'s test maps to the ``if`` statement node).
        self._build_block(body, [self.ENTRY], loop_heads=[])
        self._dominators: Optional[Dict[object, Set[object]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_node(self, stmt: ast.stmt) -> None:
        if stmt not in self._succ:
            self._succ[stmt] = []
            self._stmts.append(stmt)

    def _edge(self, src: object, dst: object) -> None:
        if dst not in self._succ[src]:
            self._succ[src].append(dst)

    def _build_block(
        self,
        body: List[ast.stmt],
        preds: List[object],
        loop_heads: List[ast.stmt],
    ) -> List[object]:
        """Wire ``body`` after ``preds``; return the block's exits."""
        current = list(preds)
        for stmt in body:
            self._add_node(stmt)
            for pred in current:
                self._edge(pred, stmt)
            if isinstance(stmt, ast.If):
                then_exits = self._build_block(stmt.body, [stmt], loop_heads)
                if stmt.orelse:
                    else_exits = self._build_block(
                        stmt.orelse, [stmt], loop_heads
                    )
                else:
                    else_exits = [stmt]
                current = then_exits + else_exits
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                body_exits = self._build_block(
                    stmt.body, [stmt], loop_heads + [stmt]
                )
                for exit_node in body_exits:
                    self._edge(exit_node, stmt)
                else_exits = (
                    self._build_block(stmt.orelse, [stmt], loop_heads)
                    if stmt.orelse
                    else [stmt]
                )
                current = else_exits
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                body_exits = self._build_block(stmt.body, [stmt], loop_heads)
                handler_exits: List[object] = []
                for handler in stmt.handlers:
                    # Conservatively, a handler is reachable from the
                    # try entry itself (any body statement may raise).
                    handler_exits.extend(
                        self._build_block(handler.body, [stmt], loop_heads)
                    )
                else_exits = (
                    self._build_block(stmt.orelse, body_exits, loop_heads)
                    if stmt.orelse
                    else body_exits
                )
                merged = else_exits + handler_exits
                if stmt.finalbody:
                    current = self._build_block(
                        stmt.finalbody, merged or [stmt], loop_heads
                    )
                else:
                    current = merged
            elif isinstance(stmt, ast.Match):
                # The subject evaluates once (the Match node), then
                # exactly one case body runs — or none, when no pattern
                # matches and there is no irrefutable wildcard case.
                case_exits: List[object] = []
                irrefutable = False
                for case in stmt.cases:
                    case_exits.extend(
                        self._build_block(case.body, [stmt], loop_heads)
                    )
                    if self._is_wildcard(case):
                        irrefutable = True
                if not irrefutable:
                    case_exits.append(stmt)
                current = case_exits
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current = self._build_block(stmt.body, [stmt], loop_heads)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                current = []
            elif isinstance(stmt, ast.Break):
                current = []
            elif isinstance(stmt, ast.Continue):
                if loop_heads:
                    self._edge(stmt, loop_heads[-1])
                current = []
            else:
                current = [stmt]
            if not current:
                break
        return current

    @staticmethod
    def _is_wildcard(case: "ast.match_case") -> bool:
        """A guardless ``case _:`` / ``case name:`` catches everything."""
        return (
            case.guard is None
            and isinstance(case.pattern, ast.MatchAs)
            and case.pattern.pattern is None
        )

    # ------------------------------------------------------------------
    # Dominators
    # ------------------------------------------------------------------
    def dominators(self) -> Dict[object, Set[object]]:
        """node → set of nodes dominating it (entry dominates all)."""
        if self._dominators is not None:
            return self._dominators
        nodes = [self.ENTRY] + self._stmts
        preds: Dict[object, List[object]] = {node: [] for node in nodes}
        for src, dsts in self._succ.items():
            for dst in dsts:
                preds[dst].append(src)
        dom: Dict[object, Set[object]] = {
            node: set(nodes) for node in nodes
        }
        dom[self.ENTRY] = {self.ENTRY}
        changed = True
        while changed:
            changed = False
            for node in nodes:
                if node is self.ENTRY:
                    continue
                pred_doms = [dom[p] for p in preds[node]]
                new = (
                    set.intersection(*pred_doms) if pred_doms else set()
                )
                new.add(node)
                if new != dom[node]:
                    dom[node] = new
                    changed = True
        self._dominators = dom
        return dom

    def statement_of(self, node: ast.AST) -> Optional[ast.stmt]:
        """The CFG statement whose execution contains ``node``.

        Expressions nested inside a compound statement's *test* (or a
        ``for``'s iterable) belong to the compound node itself; nested
        body statements are their own nodes. Returns None for nodes
        outside this function's body.
        """
        best: Optional[ast.stmt] = None
        target_range = (
            getattr(node, "lineno", None),
            getattr(node, "col_offset", None),
        )
        if target_range[0] is None:
            return None
        for stmt in self._stmts:
            if self._contains(stmt, node):
                best = stmt  # innermost match wins: keep scanning
        return best

    @staticmethod
    def _contains(stmt: ast.stmt, node: ast.AST) -> bool:
        for child in ast.walk(stmt):
            if child is node:
                return True
        return False

    def dominated_by(
        self,
        stmt: ast.stmt,
        predicate: Callable[[ast.stmt], bool],
    ) -> bool:
        """True if some dominator of ``stmt`` (itself included)
        satisfies ``predicate``."""
        dom = self.dominators()
        for node in dom.get(stmt, set()):
            if node is self.ENTRY:
                continue
            if predicate(node):
                return True
        return False


def innermost_statement(
    cfg: FunctionCFG, node: ast.AST
) -> Optional[ast.stmt]:
    """Convenience wrapper mirroring :meth:`FunctionCFG.statement_of`.

    The statement-of lookup scans every CFG node, so for a handful of
    uses per function this stays linear and simple — checkers should
    not need their own parent maps.
    """
    return cfg.statement_of(node)
