"""A conservative, module-qualified call graph over the analyzed tree.

The interprocedural rules (BP009-BP011) need to know *who calls whom*
across module boundaries. Full Python call resolution is undecidable;
this builder resolves the cases that actually occur in protocol code
and keeps an explicit report of everything it could not resolve, so the
unresolved fraction is a tracked number (tests assert a budget) instead
of a silent soundness hole.

Resolution strategy, in order:

* ``f(...)`` — module-level function in the same module, an imported
  symbol (``from repro.x import f``), or a class constructor.
* ``self.m(...)`` — attribute lookup through the enclosing class's
  AST-level MRO (in-tree bases only).
* ``mod.f(...)`` — through an ``import repro.x [as mod]`` alias.
* ``obj.m(...)`` with a *typed* receiver — parameter annotations,
  ``x = ClassName(...)`` locals, and ``self.attr`` instance attributes
  assigned in ``__init__`` give receivers classes; the method resolves
  through that class's MRO.
* ``obj.m(...)`` with an untyped receiver — if exactly one in-tree
  class defines ``m`` *and* ``m`` is not also a builtin container
  method, the call resolves there ("unique-method"); if several
  classes define it the site is recorded as *ambiguous* (no edges —
  spraying edges at every same-named method would drown the taint
  rules in false paths).

Calls to Python builtins, stdlib modules, and builtin-container
methods are classified *external* and excluded from the unresolved
budget: they can neither be analyzed nor fixed here.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import ModuleContext

#: Method names owned by builtin containers/strings; an untyped
#: receiver calling one of these is assumed external even when an
#: in-tree class happens to define the same name (list.append vs
#: LocalLog.append) — a typed receiver is required to claim those.
BUILTIN_METHOD_NAMES = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "index",
    "count", "sort", "reverse", "copy", "get", "keys", "values",
    "items", "setdefault", "update", "popitem", "add", "discard",
    "union", "intersection", "difference", "join", "split", "rsplit",
    "strip", "lstrip", "rstrip", "startswith", "endswith", "format",
    "replace", "encode", "decode", "lower", "upper", "title",
    "splitlines", "find", "rfind", "ljust", "rjust", "zfill",
    "readline", "readlines", "read", "write", "close", "flush",
})

#: Builtin annotations/constructor names treated as container types.
BUILTIN_TYPE_NAMES = frozenset({
    "list", "dict", "set", "tuple", "str", "int", "float", "bool",
    "bytes", "frozenset", "List", "Dict", "Set", "Tuple", "Optional",
    "Sequence", "Iterable", "Mapping", "FrozenSet", "DefaultDict",
    "Deque", "deque", "defaultdict", "Counter", "OrderedDict",
})

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Call-site classification kinds.
RESOLVED_KINDS = ("direct", "self", "module", "typed", "unique",
                  "constructor", "nested", "bound")
EXTERNAL_KIND = "external"
AMBIGUOUS_KIND = "ambiguous"
UNRESOLVED_KIND = "unresolved"
#: A call through a function-valued local/parameter (higher-order
#: flow). Tracked as its own category: it is not a resolution
#: *failure* — the receiver is data, decided at runtime — but it is
#: reported, never silently dropped.
DYNAMIC_KIND = "dynamic"


class FunctionInfo:
    """One function or method definition in the analyzed tree."""

    def __init__(
        self,
        qualname: str,
        module: str,
        path: str,
        node: ast.AST,
        cls: Optional["ClassInfo"] = None,
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.path = path
        self.node = node
        self.cls = cls
        self.name = node.name
        args = node.args
        self.params: List[str] = [
            a.arg
            for a in list(args.posonlyargs) + list(args.args)
        ]
        self.kwonly: List[str] = [a.arg for a in args.kwonlyargs]
        #: Directly nested ``def``s: local name -> FunctionInfo.
        self.nested: Dict[str, "FunctionInfo"] = {}
        #: Return annotation as (simple type name, element type name).
        self.returns_type, self.returns_elem = _annotation_info(
            getattr(node, "returns", None)
        )

    @property
    def line(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fn {self.qualname}>"


class ClassInfo:
    """One class definition: bases, methods, and inferred attr types."""

    def __init__(
        self, qualname: str, module: str, path: str, node: ast.ClassDef
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.path = path
        self.node = node
        self.name = node.name
        #: Raw base expressions as dotted strings ("Node", "pbft.X").
        self.base_names: List[str] = [
            name for name in (_dotted(b) for b in node.bases)
            if name is not None
        ]
        #: Resolved in-tree base classes (filled by the graph builder).
        self.bases: List[ClassInfo] = []
        #: Whether every base resolved in-tree down to a root class.
        self.chain_resolved = True
        self.methods: Dict[str, FunctionInfo] = {}
        #: instance attribute name -> class simple name or "<builtin>".
        self.attr_types: Dict[str, str] = {}
        #: container attribute name -> element class simple name.
        self.attr_elems: Dict[str, str] = {}

    def mro(self) -> List["ClassInfo"]:
        """AST-level linearization: self, then bases depth-first
        (first occurrence wins; good enough for single inheritance
        plus the occasional mixin)."""
        seen: Set[str] = set()
        order: List[ClassInfo] = []
        stack: List[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            order.append(cls)
            stack = cls.bases + stack
        return order

    def lookup(self, method: str) -> Optional[FunctionInfo]:
        """Class-attribute lookup through the AST-level MRO."""
        for cls in self.mro():
            if method in cls.methods:
                return cls.methods[method]
        return None

    def attr_type(self, attr: str) -> Optional[str]:
        for cls in self.mro():
            if attr in cls.attr_types:
                return cls.attr_types[attr]
        return None

    def attr_elem(self, attr: str) -> Optional[str]:
        for cls in self.mro():
            if attr in cls.attr_elems:
                return cls.attr_elems[attr]
        return None

    def derives_from(self, qualname: str) -> bool:
        return any(c.qualname == qualname for c in self.mro())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<class {self.qualname}>"


class CallSite:
    """One call expression, with its resolution verdict."""

    __slots__ = ("caller", "node", "name", "kind", "targets", "path")

    def __init__(
        self,
        caller: str,
        path: str,
        node: ast.Call,
        name: str,
        kind: str,
        targets: Tuple[str, ...],
    ) -> None:
        self.caller = caller
        self.path = path
        self.node = node
        self.name = name
        self.kind = kind
        self.targets = targets

    @property
    def resolved(self) -> bool:
        return self.kind in RESOLVED_KINDS

    def to_dict(self) -> Dict[str, object]:
        return {
            "caller": self.caller,
            "path": self.path,
            "line": self.node.lineno,
            "name": self.name,
            "kind": self.kind,
            "targets": list(self.targets),
        }


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute/name chains as a dotted string."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name out of an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[", 1)[0].rsplit(".", 1)[-1]
    if isinstance(node, ast.Subscript):
        # Optional[X] / List[X]: the container decides builtin-ness.
        return _annotation_name(node.value)
    name = _dotted(node)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


#: Builtins that return a container over their first argument's
#: elements, so the element type survives ``sorted(...)`` and friends.
_ELEMENT_PRESERVING_BUILTINS = frozenset({
    "sorted", "list", "tuple", "set", "frozenset", "reversed", "iter",
})

#: Generic containers whose single subscript parameter types the
#: *elements* (what ``for x in c`` binds).
_ELEMENT_CONTAINERS = frozenset({
    "List", "Set", "FrozenSet", "Sequence", "Iterable", "Iterator",
    "Deque", "Tuple", "list", "set", "frozenset", "tuple", "deque",
})


def _annotation_info(
    node: Optional[ast.AST],
) -> Tuple[Optional[str], Optional[str]]:
    """(type simple name or ``<builtin>``, element type simple name).

    ``Optional[X]`` is transparent (the value *is* an X when used);
    ``List[X]`` types as ``<builtin>`` with element ``X``, so for-loop
    targets and ``[...]`` indexing get a class.
    """
    if node is None:
        return None, None
    if isinstance(node, ast.Subscript):
        container = _annotation_name(node.value)
        if container == "Optional":
            return _annotation_info(node.slice)
        elem: Optional[str] = None
        if container in _ELEMENT_CONTAINERS:
            slice_node = node.slice
            if isinstance(slice_node, ast.Tuple) and slice_node.elts:
                slice_node = slice_node.elts[0]
            elem = _annotation_name(slice_node)
            if elem in BUILTIN_TYPE_NAMES:
                elem = None
        if container is None:
            return None, None
        return (
            "<builtin>" if container in BUILTIN_TYPE_NAMES else container,
            elem,
        )
    name = _annotation_name(node)
    if name is None:
        return None, None
    return ("<builtin>" if name in BUILTIN_TYPE_NAMES else name), None


class ModuleIndex:
    """Per-module symbol tables: imports, functions, classes."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        #: local alias -> imported dotted module name.
        self.module_aliases: Dict[str, str] = {}
        #: local alias -> (source module, symbol name).
        self.symbol_imports: Dict[str, Tuple[str, str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Every nested ``def`` in the module (registered in the graph
        #: so the taint engine can summarize them too).
        self.nested_functions: List[FunctionInfo] = []
        #: module-level variable -> class simple name, for singleton
        #: instances (``DISABLED = Observability(enabled=False)``).
        self.var_types: Dict[str, str] = {}
        self._collect()

    def _collect(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.module_aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are not used in-tree
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.symbol_imports[local] = (node.module, alias.name)
        # Module-level instance vars first: classes above the
        # assignment still see them during attr typing.
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                inferred = _constructed_type(stmt.value)
                if (
                    isinstance(target, ast.Name)
                    and inferred is not None
                    and inferred != "<builtin>"
                ):
                    self.var_types[target.id] = inferred
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name, _elem = _annotation_info(stmt.annotation)
                if name is not None and name != "<builtin>":
                    self.var_types[stmt.target.id] = name
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    f"{self.module}.{stmt.name}",
                    self.module, self.ctx.path, stmt,
                )
                self.functions[stmt.name] = info
                self._collect_nested(info)
            elif isinstance(stmt, ast.ClassDef):
                self._collect_class(stmt)

    def _collect_nested(self, parent: FunctionInfo) -> None:
        """Register ``def``s nested inside ``parent`` (any depth; they
        resolve for calls lexically inside ``parent``)."""
        for node in ast.walk(parent.node):
            if node is parent.node or not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            info = FunctionInfo(
                f"{parent.qualname}.<locals>.{node.name}",
                self.module, self.ctx.path, node, cls=parent.cls,
            )
            parent.nested[node.name] = info
            self.nested_functions.append(info)

    def _collect_class(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            f"{self.module}.{node.name}", self.module, self.ctx.path, node
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    f"{cls.qualname}.{stmt.name}",
                    self.module, self.ctx.path, stmt, cls=cls,
                )
                cls.methods[stmt.name] = info
                self._collect_nested(info)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name, elem = _annotation_info(stmt.annotation)
                if name is not None:
                    cls.attr_types[stmt.target.id] = name
                if elem is not None:
                    cls.attr_elems[stmt.target.id] = elem
        for method in cls.methods.values():
            self._collect_attr_types(cls, method.node)
        self.classes[node.name] = cls

    def _collect_attr_types(self, cls: ClassInfo, func: ast.AST) -> None:
        """``self.x = ClassName(...)`` / ``self.x: T`` / ``self.x = p``
        (annotated parameter) in any method."""
        args = getattr(func, "args", None)
        param_ann: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            ):
                param_ann[arg.arg] = _annotation_info(arg.annotation)
        for node in ast.walk(func):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                name, elem = _annotation_info(node.annotation)
                if (
                    name is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in cls.attr_types
                ):
                    cls.attr_types[target.attr] = name
                    if elem is not None:
                        cls.attr_elems[target.attr] = elem
                    continue
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
                or target.attr in cls.attr_types
            ):
                continue
            for candidate in self._value_candidates(value):
                if (
                    isinstance(candidate, ast.Name)
                    and candidate.id in param_ann
                ):
                    name, elem = param_ann[candidate.id]
                    if name is not None:
                        cls.attr_types[target.attr] = name
                        if elem is not None:
                            cls.attr_elems[target.attr] = elem
                        break
                    continue
                if (
                    isinstance(candidate, ast.Name)
                    and candidate.id in self.var_types
                ):
                    cls.attr_types[target.attr] = (
                        self.var_types[candidate.id]
                    )
                    break
                inferred = _constructed_type(candidate)
                if inferred is not None:
                    cls.attr_types[target.attr] = inferred
                    break

    @staticmethod
    def _value_candidates(value: Optional[ast.AST]) -> List[ast.AST]:
        """The expressions an assigned value may evaluate to —
        ``a if c else b`` and ``a or b`` contribute both branches
        (``obs if obs is not None else DISABLED``)."""
        if isinstance(value, ast.IfExp):
            return [value.body, value.orelse]
        if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
            return list(value.values)
        return [value] if value is not None else []


def _constructed_type(value: Optional[ast.AST]) -> Optional[str]:
    """Type name for ``ClassName(...)`` calls and builtin literals."""
    if value is None:
        return None
    if isinstance(value, (ast.List, ast.ListComp)):
        return "<builtin>"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "<builtin>"
    if isinstance(value, (ast.Set, ast.SetComp, ast.Tuple)):
        return "<builtin>"
    if isinstance(value, ast.Constant):
        return "<builtin>"
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        if name is None:
            return None
        simple = name.rsplit(".", 1)[-1]
        if simple in BUILTIN_TYPE_NAMES:
            return "<builtin>"
        if simple and simple[0].isupper():
            return simple
    return None


class CallGraph:
    """The assembled graph plus the honesty report."""

    def __init__(self) -> None:
        #: qualname -> FunctionInfo, every def in the tree.
        self.functions: Dict[str, FunctionInfo] = {}
        #: qualname -> ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> its call sites (resolved or not).
        self.calls: Dict[str, List[CallSite]] = {}
        #: caller qualname -> callee qualnames.
        self.edges: Dict[str, Set[str]] = {}
        #: class qualnames instantiated anywhere in the tree.
        self.instantiated: Set[str] = set()
        self.modules: Dict[str, ModuleIndex] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sites(self) -> Iterable[CallSite]:
        for sites in self.calls.values():
            yield from sites

    def unresolved_sites(self) -> List[CallSite]:
        return [
            s for s in self.sites()
            if s.kind in (UNRESOLVED_KIND, AMBIGUOUS_KIND)
        ]

    def dynamic_sites(self) -> List[CallSite]:
        return [s for s in self.sites() if s.kind == DYNAMIC_KIND]

    def stats(self) -> Dict[str, object]:
        kinds: Dict[str, int] = {}
        for site in self.sites():
            kinds[site.kind] = kinds.get(site.kind, 0) + 1
        external = kinds.get(EXTERNAL_KIND, 0)
        total = sum(kinds.values())
        internal = total - external
        unresolved = (
            kinds.get(UNRESOLVED_KIND, 0) + kinds.get(AMBIGUOUS_KIND, 0)
        )
        return {
            "functions": len(self.functions),
            "classes": len(self.classes),
            "call_sites": total,
            "internal_sites": internal,
            "external_sites": external,
            "unresolved_sites": unresolved,
            "unresolved_fraction": (
                round(unresolved / internal, 4) if internal else 0.0
            ),
            "by_kind": dict(sorted(kinds.items())),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON document for ``--callgraph-out``."""
        return {
            "stats": self.stats(),
            "edges": {
                caller: sorted(callees)
                for caller, callees in sorted(self.edges.items())
                if callees
            },
            "unresolved": [
                site.to_dict() for site in self.unresolved_sites()
            ],
            "dynamic": [
                site.to_dict() for site in self.dynamic_sites()
            ],
        }

    def node_subclasses(self) -> List[ClassInfo]:
        """Classes deriving (in-tree) from repro.sim.node.Node."""
        return [
            cls for cls in self.classes.values()
            if cls.derives_from("repro.sim.node.Node")
        ]


def build_call_graph(contexts: Sequence[ModuleContext]) -> CallGraph:
    """Index every module, resolve bases, then resolve call sites."""
    graph = CallGraph()
    for ctx in contexts:
        index = ModuleIndex(ctx)
        graph.modules[ctx.module] = index
        for info in index.functions.values():
            graph.functions[info.qualname] = info
        for info in index.nested_functions:
            graph.functions[info.qualname] = info
        for cls in index.classes.values():
            graph.classes[cls.qualname] = cls
            for method in cls.methods.values():
                graph.functions[method.qualname] = method
    _resolve_bases(graph)
    _enrich_attr_types(graph)
    #: method name -> classes defining it (for unique-method lookup).
    definers: Dict[str, List[ClassInfo]] = {}
    for cls in graph.classes.values():
        for name in cls.methods:
            definers.setdefault(name, []).append(cls)
    for index in graph.modules.values():
        _Resolver(graph, index, definers).run()
    return graph


def _resolve_bases(graph: CallGraph) -> None:
    for cls in graph.classes.values():
        index = graph.modules.get(cls.module)
        for base_name in cls.base_names:
            resolved = _resolve_class_name(graph, index, base_name)
            if resolved is not None:
                cls.bases.append(resolved)
            elif base_name.rsplit(".", 1)[-1] not in (
                "object", "Protocol", "ABC", "Enum", "Exception",
                "NamedTuple",
            ):
                cls.chain_resolved = False
    # A class whose base chain is broken anywhere is itself broken.
    changed = True
    while changed:
        changed = False
        for cls in graph.classes.values():
            if cls.chain_resolved and any(
                not base.chain_resolved for base in cls.bases
            ):
                cls.chain_resolved = False
                changed = True


def _enrich_attr_types(graph: CallGraph) -> None:
    """Second attr-typing pass with whole-graph visibility: ``self.x``
    assigned from an *imported* singleton instance (``self.obs = obs
    if obs is not None else DISABLED``) gets the singleton's class."""
    for index in graph.modules.values():
        for cls in index.classes.values():
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                    ):
                        continue
                    target = node.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in cls.attr_types
                    ):
                        continue
                    for cand in ModuleIndex._value_candidates(node.value):
                        if not (
                            isinstance(cand, ast.Name)
                            and cand.id in index.symbol_imports
                        ):
                            continue
                        module, symbol = index.symbol_imports[cand.id]
                        kind, obj = _resolve_symbol(graph, module, symbol)
                        if kind == "var":
                            cls.attr_types[target.attr] = obj
                            break


def _resolve_class_name(
    graph: CallGraph, index: Optional[ModuleIndex], name: str
) -> Optional[ClassInfo]:
    """A (possibly dotted) class reference in ``index``'s namespace."""
    if index is None:
        return None
    head, _, rest = name.partition(".")
    if not rest:
        if head in index.classes:
            return index.classes[head]
        if head in index.symbol_imports:
            src_module, symbol = index.symbol_imports[head]
            kind, obj = _resolve_symbol(graph, src_module, symbol)
            if kind == "cls":
                return obj
        return None
    # "mod.Class" through a module alias.
    if head in index.module_aliases:
        src = graph.modules.get(index.module_aliases[head])
        if src is not None and rest in src.classes:
            return src.classes[rest]
    return None


def _bound_names(func: ast.AST) -> Set[str]:
    """Names the function's scope binds: parameters, assignment
    targets, and nested ``def``/``class`` statements. Over-collection
    (a name bound only in a deeper nested scope) is harmless — it only
    withholds a closure type we were never obliged to provide."""
    bound: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        ):
            bound.add(arg.arg)
        if args.vararg is not None:
            bound.add(args.vararg.arg)
        if args.kwarg is not None:
            bound.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if node is not func:
                bound.add(node.name)
    return bound


class _Resolver:
    """Resolves every call site in one module."""

    def __init__(
        self,
        graph: CallGraph,
        index: ModuleIndex,
        definers: Dict[str, List[ClassInfo]],
    ) -> None:
        self.graph = graph
        self.index = index
        self.definers = definers

    def run(self) -> None:
        module_caller = f"{self.index.module}.<module>"
        consumed: Set[int] = set()
        infos = [
            f for f in self.graph.functions.values()
            if f.module == self.index.module
        ]
        # Environments are built outermost-first so a nested ``def``
        # inherits the types of enclosing locals it closes over — a
        # closure reads exactly the names it does not itself bind
        # (Python scoping: an unqualified assignment makes a name
        # local, so bound names never take the enclosing type).
        envs: Dict[str, _Env] = {}
        for info in sorted(
            infos,
            key=lambda f: (f.qualname.count(".<locals>."), f.line),
        ):
            closure = None
            if ".<locals>." in info.qualname:
                closure = envs.get(
                    info.qualname.rsplit(".<locals>.", 1)[0]
                )
            envs[info.qualname] = self._local_env(info, closure)
        # Nested defs first (deepest first), so each function claims
        # its own call sites before the enclosing function's walk
        # sweeps over them.
        for info in sorted(
            infos,
            key=lambda f: (-f.qualname.count(".<locals>."), f.line),
        ):
            env = envs[info.qualname]
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call) and id(node) not in consumed:
                    consumed.add(id(node))
                    self._resolve_site(info.qualname, node, info, env)
        for node in ast.walk(self.index.ctx.tree):
            if isinstance(node, ast.Call) and id(node) not in consumed:
                consumed.add(id(node))
                self._resolve_site(module_caller, node, None, _Env())

    # -- local type environment ---------------------------------------
    def _local_env(
        self,
        info: FunctionInfo,
        closure: Optional["_Env"] = None,
    ) -> "_Env":
        """Types for locals whose class is evident: annotations,
        constructor assignments, attribute chains off ``self``, local
        aliases, for-loop targets over typed containers, and
        bound-method aliases (``append = out.append``).

        ``closure`` is the enclosing function's environment for a
        nested ``def``: names this scope does not itself bind keep the
        enclosing type (Python scoping — an unqualified assignment
        makes a name local, so bound names never inherit). Seeded
        before the statement passes so chains *through* a closed-over
        receiver also type."""
        env = _Env()
        node = info.node
        for arg in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        ):
            tname, elem = _annotation_info(arg.annotation)
            if tname is not None:
                env.types[arg.arg] = tname
            if elem is not None:
                env.elems[arg.arg] = elem
        if info.cls is not None and info.params and info.params[0] in (
            "self", "cls"
        ):
            env.types[info.params[0]] = info.cls.name
        if closure is not None:
            bound = _bound_names(node)
            for name, tname in closure.types.items():
                if name not in bound:
                    env.types.setdefault(name, tname)
            for name, elem in closure.elems.items():
                if name not in bound:
                    env.elems.setdefault(name, elem)
            env.assigned.update(
                name for name in closure.assigned if name not in bound
            )
        # Two passes so simple aliases settle (a = self.log; a.append).
        for _ in range(2):
            for stmt in ast.walk(node):
                self._type_stmt(stmt, info, env)
        for sub in ast.walk(node):
            # Comprehension targets get the element type of their
            # iterable (`f.to_dict() for f in findings`).
            if isinstance(sub, (ast.ListComp, ast.SetComp,
                                ast.GeneratorExp, ast.DictComp)):
                for generator in sub.generators:
                    if isinstance(generator.target, ast.Name):
                        _, elem = self._type_of(generator.iter, info, env)
                        if elem is not None:
                            env.types.setdefault(generator.target.id, elem)
            # Anything assigned anywhere (params included below) is a
            # candidate for higher-order calls.
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, ast.Store
            ):
                env.assigned.add(sub.id)
            # A class defined inside a function is a callable local:
            # calling it is constructor-through-a-local-name, which we
            # classify as dynamic rather than leave unresolved.
            if isinstance(sub, ast.ClassDef):
                env.assigned.add(sub.name)
        env.assigned.update(info.params)
        env.assigned.update(info.kwonly)
        return env

    def _type_stmt(
        self, stmt: ast.stmt, info: FunctionInfo, env: "_Env"
    ) -> None:
        target: Optional[ast.AST] = None
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            tname, elem = _annotation_info(stmt.annotation)
            if tname is not None and isinstance(target, ast.Name):
                env.types.setdefault(target.id, tname)
                if elem is not None:
                    env.elems.setdefault(target.id, elem)
                return
            value = stmt.value
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if isinstance(stmt.target, ast.Name):
                _, elem = self._type_of(stmt.iter, info, env)
                if elem is not None:
                    env.types.setdefault(stmt.target.id, elem)
            return
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    tname, elem = self._type_of(
                        item.context_expr, info, env
                    )
                    if tname is not None:
                        env.types.setdefault(item.optional_vars.id, tname)
                        if elem is not None:
                            env.elems.setdefault(
                                item.optional_vars.id, elem
                            )
            return
        if not isinstance(target, ast.Name) or value is None:
            return
        # Bound-method alias: `append = out.append` — calling the alias
        # later must resolve like calling `out.append(...)` directly.
        if isinstance(value, ast.Attribute) and not isinstance(
            value.ctx, ast.Store
        ):
            binding = self._bound_binding(value, info, env)
            if binding is not None:
                env.bound.setdefault(target.id, binding)
                return
        if target.id in env.types:
            return
        tname, elem = self._type_of(value, info, env)
        if tname is not None:
            env.types[target.id] = tname
            if elem is not None:
                env.elems[target.id] = elem

    def _bound_binding(
        self, value: ast.Attribute, info: FunctionInfo, env: "_Env"
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        """Resolution for a method object stored in a local."""
        method = value.attr
        rtype, _ = self._type_of(value.value, info, env)
        if rtype == "<builtin>":
            return (EXTERNAL_KIND, ())
        if rtype is not None:
            cls = self._class_by_simple_name(rtype)
            if cls is None:
                return (EXTERNAL_KIND, ())
            found = cls.lookup(method)
            if found is not None:
                return ("bound", (found.qualname,))
        if method in BUILTIN_METHOD_NAMES:
            return (EXTERNAL_KIND, ())
        return None

    # -- expression typing --------------------------------------------
    def _type_of(
        self,
        expr: Optional[ast.AST],
        info: Optional[FunctionInfo],
        env: "_Env",
        depth: int = 0,
    ) -> Tuple[Optional[str], Optional[str]]:
        """(class simple name or ``<builtin>``, element class name)."""
        if expr is None or depth > 6:
            return None, None
        if isinstance(expr, ast.Name):
            tname = env.types.get(expr.id)
            if tname is not None or expr.id in env.assigned:
                return tname, env.elems.get(expr.id)
            # A module-level global (compiled regexes, singletons) —
            # only when no local binding shadows the name.
            return self.index.var_types.get(expr.id), None
        if isinstance(expr, ast.Attribute):
            base, _ = self._type_of(expr.value, info, env, depth + 1)
            if base is None or base == "<builtin>":
                return None, None
            cls = self._class_by_simple_name(base)
            if cls is None:
                if not self._is_known_class_name(base):
                    # Attribute of a foreign object (a regex Match, an
                    # argparse Namespace): whatever it holds, not ours.
                    return "<foreign>", None
                return None, None
            return cls.attr_type(expr.attr), cls.attr_elem(expr.attr)
        if isinstance(expr, ast.Subscript):
            _, elem = self._type_of(expr.value, info, env, depth + 1)
            return (elem, None) if elem is not None else (None, None)
        if isinstance(expr, ast.Call):
            return self._type_of_call(expr, info, env, depth)
        if isinstance(expr, ast.Await):
            return self._type_of(expr.value, info, env, depth + 1)
        if isinstance(expr, (ast.List, ast.ListComp, ast.Dict,
                             ast.DictComp, ast.Set, ast.SetComp,
                             ast.Tuple, ast.GeneratorExp, ast.Constant,
                             ast.JoinedStr, ast.Compare, ast.BoolOp)):
            return "<builtin>", None
        if isinstance(expr, ast.IfExp):
            tname, elem = self._type_of(expr.body, info, env, depth + 1)
            if tname is not None:
                return tname, elem
            return self._type_of(expr.orelse, info, env, depth + 1)
        return None, None

    def _type_of_call(
        self,
        expr: ast.Call,
        info: Optional[FunctionInfo],
        env: "_Env",
        depth: int,
    ) -> Tuple[Optional[str], Optional[str]]:
        """Constructor calls type as the class; resolvable function or
        method calls type as their return annotation. Foreign
        constructors (``argparse.ArgumentParser(...)``) type as their
        (not-in-tree) class name, so method calls on the result are
        classified external rather than unresolved."""
        func = expr.func
        ctype = _constructed_type(expr)
        if ctype == "<builtin>":
            return "<builtin>", None
        if isinstance(func, ast.Name):
            if ctype is not None and self._class_by_simple_name(ctype):
                return ctype, None
            fn = self._function_by_name(func.id, info)
            if fn is not None:
                return fn.returns_type, fn.returns_elem
            if func.id in _ELEMENT_PRESERVING_BUILTINS and expr.args:
                # sorted(xs) / list(xs) / reversed(xs): a new container
                # over the same elements.
                _, elem = self._type_of(expr.args[0], info, env, depth + 1)
                return "<builtin>", elem
            if ctype is not None:
                return ctype, None  # foreign class: typed, not ours
            return None, None
        if isinstance(func, ast.Attribute):
            base, _ = self._type_of(func.value, info, env, depth + 1)
            if base is not None and base != "<builtin>":
                cls = self._class_by_simple_name(base)
                if cls is not None:
                    found = cls.lookup(func.attr)
                    if found is not None:
                        return found.returns_type, found.returns_elem
                elif not self._is_known_class_name(base):
                    # Method result on a foreign object (subparsers.
                    # add_parser(...), pattern.match(...)): foreign too,
                    # so chained calls classify external, not unresolved.
                    return "<foreign>", None
                return None, None
            dotted = _dotted(func.value)
            if dotted is not None:
                src = self._module_by_alias(dotted)
                if src is not None:
                    if func.attr in src.functions:
                        fn = src.functions[func.attr]
                        return fn.returns_type, fn.returns_elem
                    if func.attr in src.classes:
                        return func.attr, None
                elif self._is_foreign_alias(dotted):
                    # hashlib.sha256(...), re.compile(...): whatever
                    # comes back, it is not ours.
                    return "<foreign>", None
            if ctype is not None:
                return ctype, None
        return None, None

    def _is_foreign_alias(self, dotted: str) -> bool:
        """Whether ``dotted`` names an out-of-tree imported module."""
        head = dotted.partition(".")[0]
        alias = self.index.module_aliases.get(head)
        return alias is not None and alias.split(".", 1)[0] != "repro"

    def _function_by_name(
        self, name: str, info: Optional[FunctionInfo]
    ) -> Optional[FunctionInfo]:
        """A plain-name callable in scope: nested def, module-level
        function, or (re-)imported symbol."""
        if info is not None:
            scope = self._nested_scope(info)
            if scope is not None and name in scope.nested:
                return scope.nested[name]
        if name in self.index.functions:
            return self.index.functions[name]
        if name in self.index.symbol_imports:
            module, symbol = self.index.symbol_imports[name]
            kind, obj = _resolve_symbol(self.graph, module, symbol)
            if kind == "fn":
                return obj
        return None

    def _nested_scope(
        self, info: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """The top-level def whose ``nested`` map covers ``info``."""
        owner_qual = info.qualname.split(".<locals>.", 1)[0]
        if owner_qual == info.qualname:
            return info
        return self.graph.functions.get(owner_qual)

    def _module_by_alias(self, dotted: str) -> Optional[ModuleIndex]:
        """An in-tree ModuleIndex for a dotted receiver, if the head
        is an import alias (or module-valued symbol import)."""
        head, _, rest = dotted.partition(".")
        alias = self.index.module_aliases.get(head)
        if alias is None:
            sym = self.index.symbol_imports.get(head)
            if sym is not None:
                alias = f"{sym[0]}.{sym[1]}"
            else:
                return None
        if rest:
            alias = f"{alias}.{rest}"
        return self.graph.modules.get(alias)

    # -- resolution ----------------------------------------------------
    def _record(
        self,
        caller: str,
        node: ast.Call,
        name: str,
        kind: str,
        targets: Tuple[str, ...] = (),
    ) -> None:
        site = CallSite(
            caller, self.index.ctx.path, node, name, kind, targets
        )
        self.graph.calls.setdefault(caller, []).append(site)
        if targets:
            self.graph.edges.setdefault(caller, set()).update(targets)

    def _resolve_site(
        self,
        caller: str,
        node: ast.Call,
        info: Optional[FunctionInfo],
        env: "_Env",
    ) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._resolve_name(caller, node, func.id, info, env)
        elif isinstance(func, ast.Attribute):
            self._resolve_attribute(caller, node, func, info, env)
        else:
            # Calls on call results / subscripts: out of scope.
            self._record(caller, node, "<expr>", UNRESOLVED_KIND)

    def _resolve_name(
        self,
        caller: str,
        node: ast.Call,
        name: str,
        info: Optional[FunctionInfo],
        env: "_Env",
    ) -> None:
        index = self.index
        if info is not None:
            scope = self._nested_scope(info)
            if scope is not None and name in scope.nested:
                self._record(
                    caller, node, name, "nested",
                    (scope.nested[name].qualname,),
                )
                return
            # `cls(...)` inside a classmethod constructs the class.
            if (
                name == "cls"
                and info.cls is not None
                and info.params
                and info.params[0] == "cls"
            ):
                self._constructor(caller, node, info.cls)
                return
        if name in env.bound:
            kind, targets = env.bound[name]
            self._record(caller, node, name, kind, targets)
            return
        if name in index.functions:
            self._record(
                caller, node, name, "direct",
                (index.functions[name].qualname,),
            )
            return
        if name in index.classes:
            self._constructor(caller, node, index.classes[name])
            return
        if name in index.symbol_imports:
            module, symbol = index.symbol_imports[name]
            kind, obj = _resolve_symbol(self.graph, module, symbol)
            if kind == "fn":
                self._record(
                    caller, node, name, "direct", (obj.qualname,)
                )
            elif kind == "cls":
                self._constructor(caller, node, obj)
            elif kind == "external":
                self._record(caller, node, name, EXTERNAL_KIND)
            else:
                self._record(caller, node, name, UNRESOLVED_KIND)
            return
        if name in _BUILTIN_NAMES:
            self._record(caller, node, name, EXTERNAL_KIND)
            return
        if name in env.assigned:
            # A function-valued parameter or local: the callee is
            # runtime data (callbacks, predicates, factories).
            self._record(caller, node, name, DYNAMIC_KIND)
            return
        self._record(caller, node, name, UNRESOLVED_KIND)

    def _constructor(
        self, caller: str, node: ast.Call, cls: ClassInfo
    ) -> None:
        self.graph.instantiated.add(cls.qualname)
        init = cls.lookup("__init__")
        targets = (init.qualname,) if init is not None else ()
        self._record(caller, node, cls.name, "constructor", targets)

    def _resolve_attribute(
        self,
        caller: str,
        node: ast.Call,
        func: ast.Attribute,
        info: Optional[FunctionInfo],
        env: "_Env",
    ) -> None:
        method = func.attr
        receiver = func.value
        # super().m(...) — the enclosing class's MRO minus itself.
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
            and info is not None
            and info.cls is not None
        ):
            for base in info.cls.mro()[1:]:
                if method in base.methods:
                    self._record(
                        caller, node, method, "self",
                        (base.methods[method].qualname,),
                    )
                    return
            if info.cls.chain_resolved:
                self._record(caller, node, method, UNRESOLVED_KIND)
            else:
                self._record(caller, node, method, EXTERNAL_KIND)
            return
        # self.m(...) / cls.m(...). The receiver must actually be the
        # instance/class binding — a ``@staticmethod``'s first
        # parameter is an ordinary (often annotated) argument and
        # falls through to the typed-receiver path below.
        if (
            isinstance(receiver, ast.Name)
            and info is not None
            and info.cls is not None
            and info.params
            and receiver.id == info.params[0]
            and info.params[0] in ("self", "cls")
        ):
            target = info.cls.lookup(method)
            if target is not None:
                self._record(
                    caller, node, method, "self", (target.qualname,)
                )
            elif not info.cls.chain_resolved:
                # An out-of-tree base (http.server handlers, unittest
                # cases) may well define it; not our unresolved debt.
                self._record(caller, node, method, EXTERNAL_KIND)
            else:
                # Either a data attribute holding a callable or a
                # slot assigned dynamically; be honest.
                self._record(caller, node, method, UNRESOLVED_KIND)
            return
        # mod.f(...) through an import alias (including dotted).
        dotted = _dotted(receiver)
        if dotted is not None and self._try_module_attr(
            caller, node, dotted, method
        ):
            return
        # ClassName.m(...) — a classmethod/staticmethod (or explicit
        # unbound-method) call on an in-tree class object. Skipped when
        # a local binding shadows the name; the typed-receiver path
        # below then judges the local instead.
        if (
            dotted is not None
            and not (
                isinstance(receiver, ast.Name)
                and (
                    receiver.id in env.types
                    or receiver.id in env.assigned
                )
            )
        ):
            cls_obj = _resolve_class_name(self.graph, self.index, dotted)
            if cls_obj is not None:
                target = cls_obj.lookup(method)
                if target is not None:
                    self._record(
                        caller, node, method, "typed",
                        (target.qualname,),
                    )
                elif cls_obj.chain_resolved:
                    self._record(caller, node, method, UNRESOLVED_KIND)
                else:
                    self._record(caller, node, method, EXTERNAL_KIND)
                return
        # Typed receiver.
        rtype, _elem = self._type_of(receiver, info, env)
        if rtype == "<builtin>":
            self._record(caller, node, method, EXTERNAL_KIND)
            return
        if rtype is not None:
            cls = self._class_by_simple_name(rtype)
            if cls is None:
                # Known foreign type (argparse.ArgumentParser,
                # random.Random, ...): nothing in-tree to point at.
                self._record(caller, node, method, EXTERNAL_KIND)
                return
            target = cls.lookup(method)
            if target is not None:
                self._record(
                    caller, node, method, "typed", (target.qualname,)
                )
                return
            if method in BUILTIN_METHOD_NAMES or not cls.chain_resolved:
                self._record(caller, node, method, EXTERNAL_KIND)
                return
            self._record(caller, node, method, UNRESOLVED_KIND)
            return
        # Untyped receiver: unique-method lookup.
        classes = self.definers.get(method, [])
        if method in BUILTIN_METHOD_NAMES:
            # Builtin container methods need a typed receiver to claim.
            self._record(caller, node, method, EXTERNAL_KIND)
            return
        if len(classes) == 1:
            target = classes[0].methods[method]
            self._record(caller, node, method, "unique", (target.qualname,))
            return
        if len(classes) > 1:
            self._record(caller, node, method, AMBIGUOUS_KIND)
            return
        self._record(caller, node, method, UNRESOLVED_KIND)

    def _try_module_attr(
        self, caller: str, node: ast.Call, dotted: str, method: str
    ) -> bool:
        head, _, rest = dotted.partition(".")
        alias = self.index.module_aliases.get(head)
        if alias is None:
            # "from repro import pbft" style: symbol import of a module.
            sym = self.index.symbol_imports.get(head)
            if sym is not None:
                candidate = f"{sym[0]}.{sym[1]}"
                if rest:
                    candidate = f"{candidate}.{rest}"
                if candidate in self.graph.modules:
                    alias = candidate
            if alias is None:
                return False
        else:
            if rest:
                alias = f"{alias}.{rest}"
        src = self.graph.modules.get(alias)
        if src is None:
            # A module alias that is not in the analyzed tree: stdlib
            # or third-party — external either way.
            root = alias.split(".", 1)[0]
            if root == "repro":
                return False
            self._record(caller, node, method, EXTERNAL_KIND)
            return True
        if method in src.functions:
            self._record(
                caller, node, method, "module",
                (src.functions[method].qualname,),
            )
            return True
        if method in src.classes:
            self._constructor(caller, node, src.classes[method])
            return True
        kind, obj = _resolve_symbol(self.graph, src.module, method)
        if kind == "fn":
            self._record(caller, node, method, "module", (obj.qualname,))
            return True
        if kind == "cls":
            self._constructor(caller, node, obj)
            return True
        self._record(caller, node, method, UNRESOLVED_KIND)
        return True

    def _is_known_class_name(self, name: str) -> bool:
        """Whether any in-tree class uses this simple name (even
        ambiguously) — the guard between 'foreign' and 'don't guess'."""
        return any(
            cls.name == name for cls in self.graph.classes.values()
        )

    def _class_by_simple_name(self, name: str) -> Optional[ClassInfo]:
        """A class by simple name: same module first, then imports,
        then a unique global match."""
        if name in self.index.classes:
            return self.index.classes[name]
        resolved = _resolve_class_name(self.graph, self.index, name)
        if resolved is not None:
            return resolved
        matches = [
            cls for cls in self.graph.classes.values() if cls.name == name
        ]
        if len(matches) == 1:
            return matches[0]
        return None


class _Env:
    """Per-function local typing environment."""

    __slots__ = ("types", "elems", "bound", "assigned")

    def __init__(self) -> None:
        #: local name -> class simple name or "<builtin>".
        self.types: Dict[str, str] = {}
        #: local name -> element class simple name (containers).
        self.elems: Dict[str, str] = {}
        #: local name -> (site kind, target qualnames) for locals
        #: holding bound methods.
        self.bound: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        #: every name bound in the function (params + assignments);
        #: calling one of these is higher-order flow ("dynamic").
        self.assigned: Set[str] = set()


def _resolve_symbol(
    graph: CallGraph, module: str, symbol: str, depth: int = 0
) -> Tuple[Optional[str], object]:
    """Resolve ``from module import symbol`` through re-export chains.

    Returns ("fn", FunctionInfo), ("cls", ClassInfo), ("external",
    None) for out-of-tree modules, or (None, None) when the in-tree
    module exists but the symbol cannot be found (dynamic export).
    """
    src = graph.modules.get(module)
    if src is None:
        # The whole module is outside the analyzed tree.
        return ("external", None) if not module.startswith("repro") \
            else (None, None)
    if symbol in src.functions:
        return "fn", src.functions[symbol]
    if symbol in src.classes:
        return "cls", src.classes[symbol]
    if symbol in src.var_types:
        return "var", src.var_types[symbol]
    if symbol in src.symbol_imports and depth < 8:
        next_module, next_symbol = src.symbol_imports[symbol]
        return _resolve_symbol(graph, next_module, next_symbol, depth + 1)
    return None, None
