"""CLI: ``python -m repro.analysis [paths] [--format json] [--rules ..]``.

Exit codes: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.framework import registered_checkers, run_analysis
from repro.analysis.reporters import render_json, render_rules, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Protocol-aware static analysis for the Blockplane "
            "reproduction (determinism, quorum, and proof-discipline "
            "lints)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(render_rules(registered_checkers()))
        return 0
    rules = None
    if options.rules:
        rules = [rule.strip().upper() for rule in options.rules.split(",")]
    try:
        findings = run_analysis(options.paths, rules=rules)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if options.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
