"""CLI: ``python -m repro.analysis [paths] [--interproc] [--format ..]``.

Exit codes: 0 clean, 1 findings reported, 2 usage error. With
``--baseline FILE`` only findings absent from the baseline fail the
run (the full set is still reported).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    load_baseline,
    new_findings,
    render_baseline,
)
from repro.analysis.framework import registered_checkers, run_report
from repro.analysis.reporters import (
    render_json,
    render_rules,
    render_sarif,
    render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Protocol-aware static analysis for the Blockplane "
            "reproduction (determinism, quorum, proof-discipline, and "
            "interprocedural taint lints)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--interproc",
        action="store_true",
        help=(
            "run the interprocedural pass (call graph + taint "
            "fixpoint) enabling BP009-BP011"
        ),
    )
    parser.add_argument(
        "--callgraph-out",
        metavar="FILE",
        help=(
            "write the resolved call graph (stats, edges, unresolved "
            "and dynamic sites) as JSON; implies --interproc"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="fail only on findings not fingerprinted in FILE",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as the accepted baseline and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(render_rules(registered_checkers()))
        return 0
    rules = None
    if options.rules:
        rules = [rule.strip().upper() for rule in options.rules.split(",")]
    interproc = options.interproc or bool(options.callgraph_out)
    try:
        report = run_report(options.paths, rules=rules, interproc=interproc)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = report.findings
    if options.callgraph_out and report.graph is not None:
        Path(options.callgraph_out).write_text(
            json.dumps(report.graph.to_dict(), indent=2, sort_keys=True)
            + "\n"
        )
    if options.write_baseline:
        Path(options.write_baseline).write_text(render_baseline(findings))
        print(
            f"baseline: {len(findings)} finding(s) recorded to "
            f"{options.write_baseline}"
        )
        return 0
    blocking = findings
    if options.baseline:
        try:
            accepted = load_baseline(options.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        blocking = new_findings(findings, accepted)
    if options.format == "json":
        stats = report.graph.stats() if report.graph is not None else None
        print(render_json(findings, interproc=stats))
    elif options.format == "sarif":
        print(render_sarif(findings, registered_checkers()))
    else:
        print(render_text(findings))
        if options.baseline and findings:
            print(
                f"baseline: {len(findings) - len(blocking)} accepted, "
                f"{len(blocking)} new"
            )
    return 1 if blocking else 0


if __name__ == "__main__":
    sys.exit(main())
