"""Interprocedural byzantine-taint analysis over the call graph.

The intraprocedural proof rules (BP003/BP005) stop at function
boundaries, which is exactly where trust laundering happens: a handler
passes wire data to a helper, the helper installs it into replicated
state, and neither function alone looks wrong. This engine computes a
*taint summary* per function — which parameters flow to the return
value, and which parameters reach a protected sink without passing a
sanitizer — and iterates the summaries to a fixpoint across the call
graph, so taint introduced in one function is tracked through every
helper it transits.

The trust lattice is two-valued (UNTRUSTED until sanitized) with
labelled taint *tokens*:

* ``source`` — the value came out of a wire decoder
  (:data:`SOURCE_FUNCTIONS`) somewhere in the chain;
* ``param:<name>`` — the value derives from the named parameter (the
  caller substitutes its own tokens at the call site, which is what
  makes the analysis interprocedural).

Sanitization is dominance-based, matching BP003's convention: a
statement is *sanitized* when every path from function entry to it
passes a statement whose header contains a verification call —
:data:`SANITIZER_NAME_RE` names (``verify``/``is_valid``/``check``/…),
a :mod:`repro.pbft.quorums` threshold, or an in-tree function whose
name claims verification. Sinks are the places byzantine input must
never reach unsanitized: Local Log mutation, executed-state and
digest-chain folds, and vote-tally staging.

Precision notes (deliberate, documented):

* Unresolved/external call *results* propagate the union of receiver
  and argument taint (no laundering through unknown helpers), except
  verification-named calls, whose results are verdicts.
* Instance-attribute taint (``self.x = tainted``) is not tracked
  across statements; cross-statement state flows are the chaos
  suite's job.
* Ambiguous method calls (multiple in-tree definers, untyped
  receiver) get no edges — the call-graph report counts them.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.dataflow import FunctionCFG, header_exprs
from repro.analysis.findings import Finding
from repro.analysis.framework import ModuleContext

#: Wire decoders: their results are byzantine until sanitized.
SOURCE_FUNCTIONS = frozenset({
    "repro.core.wire.decode_signature",
    "repro.core.wire.decode_proof",
    "repro.core.wire.decode_transmission_record",
    "repro.core.wire.decode_sealed",
    "repro.core.wire.decode_log_entry",
    "repro.core.wire.decode_mirror_entry",
    "repro.core.wire.from_json",
})

#: A call whose name matches claims (or performs) verification; such
#: statements sanitize everything they dominate. Over-matching here
#: only *misses* findings — BP010 audits whether the names tell the
#: truth.
SANITIZER_NAME_RE = re.compile(
    r"(^|_)(verify|valid|check|is_valid|authenticate|sanitize)|valid$"
)

#: Verdict-returning verification primitives: calling one as a bare
#: statement discards the verdict (BP010). Raising routines
#: (``verify_received``) are detected by summary instead.
VERDICT_CALL_NAMES = frozenset({
    "is_valid", "verify", "check", "valid_signers",
    "verify_log_commit", "verify_send", "verify_received_payload",
})

#: Quorum threshold helpers: a dominating comparison against one is a
#: sanitizer (``len(votes) >= commit_quorum(f)``).
SANITIZER_MODULES = frozenset({"repro.pbft.quorums"})

#: Parameter names that denote wire-derived input at trust boundaries
#: (used by the BP010 laundering audit for verification-named
#: functions).
WIRE_PARAM_NAMES = frozenset({
    "sealed", "msg", "message", "certificate", "snapshot", "proof",
    "vote", "offer", "response", "payload",
})

#: Method sinks: (class simple name, method) -> description.
METHOD_SINKS: Dict[Tuple[str, str], str] = {
    ("LocalLog", "append"): "Local Log append",
    ("LocalLog", "restore"): "Local Log restore",
    ("LocalLog", "truncate_before"): "Local Log truncation",
}

#: Instance attributes whose assignment is a state sink.
ATTR_SINKS: Dict[str, str] = {
    "_exec_chain": "execution digest-chain fold",
    "executed_entries": "executed-state mutation",
    "last_executed": "executed-watermark mutation",
    "stable_certificate": "checkpoint-certificate adoption",
    "_stable_snapshot_payload": "stable-snapshot adoption",
    "mirror_logs": "mirror-state mutation",
}

#: Instance attributes whose *subscript* assignment is a sink
#: (vote-tally staging structures).
SUBSCRIPT_SINKS: Dict[str, str] = {
    "_catch_up_values": "catch-up vote tally",
    "_catch_up_tally": "catch-up vote tally",
}

#: Builtins whose results are verdict/metadata, not data flow.
_NO_TAINT_BUILTINS = frozenset({
    "len", "isinstance", "issubclass", "bool", "type", "hasattr",
    "id", "hash", "print", "repr", "callable", "range", "enumerate",
})

SOURCE_TOKEN = "source"


def entry_wire_param(fn: FunctionInfo) -> Optional[str]:
    """The wire-message parameter of a receive-path entry point, or
    None if ``fn`` is not an entry point.

    Entry points are the dispatch targets byzantine peers reach
    directly: ``handle_*`` methods, the daemon ack path, and the
    simulator's message entry points.
    """
    name = fn.name
    if not (
        name.startswith("handle_")
        or name in ("on_ack", "on_message", "receive_message")
    ):
        return None
    params = fn.params
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    return params[0] if params else None


class SinkFlow:
    """One taint token reaching one sink, with the call chain."""

    __slots__ = ("token", "sink", "path", "line", "chain")

    def __init__(
        self, token: str, sink: str, path: str, line: int,
        chain: Tuple[str, ...],
    ) -> None:
        self.token = token
        self.sink = sink
        self.path = path
        self.line = line
        self.chain = chain

    def key(self) -> Tuple[str, str, str, int]:
        return (self.token, self.sink, self.path, self.line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<flow {self.token} -> {self.sink} @{self.line}>"


class Summary:
    """Per-function taint transfer function."""

    def __init__(self) -> None:
        #: Tokens that may flow to the return value unsanitized.
        self.returns: FrozenSet[str] = frozenset()
        #: Sink flows observed in (or transitively through) this
        #: function, keyed for dedup; values keep the shortest chain.
        self.flows: Dict[Tuple[str, str, str, int], SinkFlow] = {}
        #: Whether any ``return <expr>`` returns a real value.
        self.has_value_return = False

    def state(self) -> Tuple[FrozenSet[str], FrozenSet, bool]:
        return (
            self.returns,
            frozenset(self.flows.keys()),
            self.has_value_return,
        )


class TaintEngine:
    """Computes summaries to fixpoint and derives BP009/BP010."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, Summary] = {}
        self._cfgs: Dict[str, FunctionCFG] = {}
        self._sites: Dict[str, Dict[int, CallSite]] = {}
        for caller, sites in graph.calls.items():
            self._sites[caller] = {id(s.node): s for s in sites}

    # ------------------------------------------------------------------
    # Fixpoint driver
    # ------------------------------------------------------------------
    def run(self) -> None:
        functions = sorted(self.graph.functions)
        for qualname in functions:
            self.summaries[qualname] = Summary()
        reverse: Dict[str, Set[str]] = {}
        for caller, callees in self.graph.edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        worklist: List[str] = list(functions)
        queued = set(worklist)
        rounds = 0
        budget = max(20 * len(functions), 1000)
        while worklist and rounds < budget:
            rounds += 1
            qualname = worklist.pop(0)
            queued.discard(qualname)
            fn = self.graph.functions[qualname]
            before = self.summaries[qualname].state()
            self.summaries[qualname] = self._summarize(fn)
            if self.summaries[qualname].state() != before:
                for caller in sorted(reverse.get(qualname, ())):
                    if caller not in queued and caller in self.summaries:
                        worklist.append(caller)
                        queued.add(caller)

    # ------------------------------------------------------------------
    # Per-function summary
    # ------------------------------------------------------------------
    def _cfg(self, fn: FunctionInfo) -> FunctionCFG:
        cfg = self._cfgs.get(fn.qualname)
        if cfg is None:
            cfg = FunctionCFG(fn.node)
            self._cfgs[fn.qualname] = cfg
        return cfg

    def _summarize(self, fn: FunctionInfo) -> Summary:
        summary = Summary()
        cfg = self._cfg(fn)
        stmts = list(cfg._stmts)
        taint: Dict[str, Set[str]] = {}
        params = list(fn.params) + list(fn.kwonly)
        start = 1 if params and params[0] in ("self", "cls") else 0
        for param in params[start:]:
            taint[param] = {f"param:{param}"}
        sites = self._sites.get(fn.qualname, {})
        sanitized_memo: Dict[int, bool] = {}

        def sanitized(stmt: ast.stmt) -> bool:
            memo = sanitized_memo.get(id(stmt))
            if memo is None:
                memo = cfg.dominated_by(stmt, self._is_sanitizer_stmt)
                sanitized_memo[id(stmt)] = memo
            return memo

        returns: Set[str] = set()
        for _ in range(10):
            changed = False
            for stmt in stmts:
                changed |= self._flow_stmt(
                    fn, stmt, taint, sites, summary, sanitized, returns
                )
            if not changed:
                break
        summary.returns = frozenset(returns)
        return summary

    def _flow_stmt(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        taint: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
        summary: Summary,
        sanitized,
        returns: Set[str],
    ) -> bool:
        changed = False

        def bind(name: str, tokens: Set[str]) -> None:
            nonlocal changed
            if tokens and not tokens <= taint.get(name, set()):
                taint.setdefault(name, set()).update(tokens)
                changed = True

        def bind_target(target: ast.AST, tokens: Set[str]) -> None:
            if isinstance(target, ast.Name):
                bind(target.id, tokens)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    bind_target(elt, tokens)
            elif isinstance(target, ast.Starred):
                bind_target(target.value, tokens)
            elif isinstance(target, ast.Attribute):
                self._attr_sink(
                    fn, stmt, target, tokens, summary, sanitized
                )
            elif isinstance(target, ast.Subscript):
                self._subscript_sink(
                    fn, stmt, target, tokens, summary, sanitized
                )

        evaluate = lambda e: self._expr_tokens(e, taint, sites)  # noqa: E731

        if isinstance(stmt, ast.Assign):
            tokens = evaluate(stmt.value)
            for target in stmt.targets:
                bind_target(target, tokens)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            bind_target(stmt.target, evaluate(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            bind_target(stmt.target, evaluate(stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            bind_target(stmt.target, evaluate(stmt.iter))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    bind_target(
                        item.optional_vars, evaluate(item.context_expr)
                    )
        elif isinstance(stmt, ast.Match):
            tokens = evaluate(stmt.subject)
            for case in stmt.cases:
                for name in _capture_names(case.pattern):
                    bind(name, tokens)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            if not (
                isinstance(stmt.value, ast.Constant)
                and stmt.value.value is None
            ):
                summary.has_value_return = True
            tokens = evaluate(stmt.value)
            if tokens and not sanitized(stmt):
                if not tokens <= returns:
                    returns.update(tokens)
                    changed = True
        # Sink calls & interprocedural flow propagation live in the
        # statement's executable parts (headers for compound stmts).
        for root in header_exprs(stmt):
            for node in ast.walk(root):
                if isinstance(node, ast.Call):
                    changed |= self._call_effects(
                        fn, stmt, node, taint, sites, summary, sanitized
                    )
        return changed

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expr_tokens(
        self,
        node: Optional[ast.AST],
        taint: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
    ) -> Set[str]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(taint.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self._expr_tokens(node.value, taint, sites)
        if isinstance(node, ast.Subscript):
            return self._expr_tokens(node.value, taint, sites)
        if isinstance(node, ast.Call):
            return self._call_tokens(node, taint, sites)
        if isinstance(node, ast.BinOp):
            return self._expr_tokens(node.left, taint, sites) | (
                self._expr_tokens(node.right, taint, sites)
            )
        if isinstance(node, (ast.BoolOp, ast.Compare)):
            return set()  # verdicts, not data
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return set()
            return self._expr_tokens(node.operand, taint, sites)
        if isinstance(node, ast.IfExp):
            return self._expr_tokens(node.body, taint, sites) | (
                self._expr_tokens(node.orelse, taint, sites)
            )
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out: Set[str] = set()
            for elt in node.elts:
                out |= self._expr_tokens(elt, taint, sites)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                out |= self._expr_tokens(value, taint, sites)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comp_tokens(node, node.elt, taint, sites)
        if isinstance(node, ast.DictComp):
            return self._comp_tokens(node, node.value, taint, sites)
        if isinstance(node, ast.Starred):
            return self._expr_tokens(node.value, taint, sites)
        if isinstance(node, ast.Await):
            return self._expr_tokens(node.value, taint, sites)
        if isinstance(node, ast.NamedExpr):
            tokens = self._expr_tokens(node.value, taint, sites)
            if isinstance(node.target, ast.Name) and tokens:
                taint.setdefault(node.target.id, set()).update(tokens)
            return tokens
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._expr_tokens(value.value, taint, sites)
            return out
        return set()

    def _comp_tokens(
        self,
        comp: ast.AST,
        elt: ast.AST,
        taint: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
    ) -> Set[str]:
        overlay = dict(taint)
        for generator in comp.generators:
            tokens = self._expr_tokens(generator.iter, overlay, sites)
            for name in _target_names(generator.target):
                overlay[name] = set(tokens)
        return self._expr_tokens(elt, overlay, sites)

    def _call_tokens(
        self,
        node: ast.Call,
        taint: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
    ) -> Set[str]:
        site = sites.get(id(node))
        arg_tokens = self._arg_union(node, taint, sites)
        receiver_tokens: Set[str] = set()
        if isinstance(node.func, ast.Attribute):
            receiver_tokens = self._expr_tokens(
                node.func.value, taint, sites
            )
        name = _call_name(node)
        if site is not None and site.resolved and site.targets:
            out: Set[str] = set()
            for target in site.targets:
                if target in SOURCE_FUNCTIONS:
                    out.add(SOURCE_TOKEN)
                    continue
                if site.kind == "constructor":
                    out |= arg_tokens
                    continue
                callee_summary = self.summaries.get(target)
                callee = self.graph.functions.get(target)
                if callee_summary is None or callee is None:
                    continue
                out |= self._map_returns(
                    callee, callee_summary, node, taint, sites
                )
            return out
        # Unresolved / external: no laundering through unknown code —
        # except verification-named calls, whose results are verdicts.
        if name is not None and SANITIZER_NAME_RE.search(name):
            return set()
        if name in _NO_TAINT_BUILTINS:
            return set()
        return receiver_tokens | arg_tokens

    def _arg_union(
        self,
        node: ast.Call,
        taint: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
    ) -> Set[str]:
        out: Set[str] = set()
        for arg in node.args:
            out |= self._expr_tokens(arg, taint, sites)
        for keyword in node.keywords:
            out |= self._expr_tokens(keyword.value, taint, sites)
        return out

    def _map_returns(
        self,
        callee: FunctionInfo,
        callee_summary: Summary,
        node: ast.Call,
        taint: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
    ) -> Set[str]:
        out: Set[str] = set()
        binding = self._bind_args(callee, node, taint, sites)
        for token in callee_summary.returns:
            if token == SOURCE_TOKEN:
                out.add(SOURCE_TOKEN)
            elif token.startswith("param:"):
                out |= binding.get(token[len("param:"):], set())
        return out

    def _bind_args(
        self,
        callee: FunctionInfo,
        node: ast.Call,
        taint: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
    ) -> Dict[str, Set[str]]:
        """callee parameter name -> caller taint tokens of the actual."""
        params = list(callee.params)
        if params and params[0] in ("self", "cls"):
            receiver: Set[str] = set()
            if isinstance(node.func, ast.Attribute):
                receiver = self._expr_tokens(node.func.value, taint, sites)
            binding = {params[0]: receiver}
            params = params[1:]
        else:
            binding = {}
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(params):
                binding[params[index]] = self._expr_tokens(
                    arg, taint, sites
                )
        for keyword in node.keywords:
            if keyword.arg is not None:
                binding[keyword.arg] = self._expr_tokens(
                    keyword.value, taint, sites
                )
        return binding

    # ------------------------------------------------------------------
    # Sinks and call-site effects
    # ------------------------------------------------------------------
    def _call_effects(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        node: ast.Call,
        taint: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
        summary: Summary,
        sanitized,
    ) -> bool:
        site = sites.get(id(node))
        if site is None or not site.resolved:
            return False
        changed = False
        for target in site.targets:
            callee = self.graph.functions.get(target)
            if callee is None:
                continue
            # Direct method sinks.
            cls_name = callee.cls.name if callee.cls is not None else None
            sink = METHOD_SINKS.get((cls_name, callee.name))
            if sink is not None:
                tokens = self._arg_union(node, taint, sites)
                if tokens and not sanitized(stmt):
                    for token in tokens:
                        changed |= self._add_flow(
                            summary,
                            SinkFlow(
                                token, sink, fn.path, node.lineno,
                                (fn.qualname,),
                            ),
                        )
                continue
            # Transitive sinks through the callee's summary.
            callee_summary = self.summaries.get(target)
            if callee_summary is None or not callee_summary.flows:
                continue
            binding = None
            for flow in list(callee_summary.flows.values()):
                if not flow.token.startswith("param:"):
                    continue  # source-rooted flows are callee findings
                if binding is None:
                    binding = self._bind_args(callee, node, taint, sites)
                tokens = binding.get(flow.token[len("param:"):], set())
                if tokens and not sanitized(stmt):
                    for token in tokens:
                        changed |= self._add_flow(
                            summary,
                            SinkFlow(
                                token, flow.sink, flow.path, flow.line,
                                (fn.qualname,) + flow.chain,
                            ),
                        )
        return changed

    @staticmethod
    def _add_flow(summary: Summary, flow: SinkFlow) -> bool:
        key = flow.key()
        existing = summary.flows.get(key)
        if existing is None:
            summary.flows[key] = flow
            return True
        if len(flow.chain) < len(existing.chain):
            summary.flows[key] = flow
        return False

    def _attr_sink(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        target: ast.Attribute,
        tokens: Set[str],
        summary: Summary,
        sanitized,
    ) -> None:
        sink = ATTR_SINKS.get(target.attr)
        if sink is None or not tokens or sanitized(stmt):
            return
        for token in tokens:
            self._add_flow(
                summary,
                SinkFlow(token, sink, fn.path, stmt.lineno, (fn.qualname,)),
            )

    def _subscript_sink(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        target: ast.Subscript,
        tokens: Set[str],
        summary: Summary,
        sanitized,
    ) -> None:
        base = target.value
        if not isinstance(base, ast.Attribute):
            return
        sink = SUBSCRIPT_SINKS.get(base.attr)
        if sink is None or not tokens or sanitized(stmt):
            return
        for token in tokens:
            self._add_flow(
                summary,
                SinkFlow(token, sink, fn.path, stmt.lineno, (fn.qualname,)),
            )

    # ------------------------------------------------------------------
    # Sanitizer predicate
    # ------------------------------------------------------------------
    def _is_sanitizer_stmt(self, stmt: ast.stmt) -> bool:
        for root in header_exprs(stmt):
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name is not None and SANITIZER_NAME_RE.search(name):
                    return True
                site = self._site_of(node)
                if site is None or not site.resolved:
                    continue
                for target in site.targets:
                    module = target.rsplit(".", 2)[0]
                    if any(
                        target.startswith(m + ".")
                        for m in SANITIZER_MODULES
                    ) or module in SANITIZER_MODULES:
                        return True
        return False

    def _site_of(self, node: ast.Call) -> Optional[CallSite]:
        for sites in self._sites.values():
            if id(node) in sites:
                return sites[id(node)]
        return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _capture_names(pattern: ast.AST) -> List[str]:
    """Names bound by a ``match`` case pattern."""
    names: List[str] = []
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name is not None:
            names.append(node.name)
        elif isinstance(node, ast.MatchStar) and node.name is not None:
            names.append(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest is not None:
            names.append(node.rest)
    return names


def _target_names(target: ast.AST) -> List[str]:
    names: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    return names


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
def _chain_text(chain: Sequence[str]) -> str:
    return " -> ".join(part.rsplit(".", 1)[-1] for part in chain)


def bp009_findings(engine: TaintEngine) -> List[Finding]:
    """Untrusted wire data reaching a state sink, interprocedurally."""
    best: Dict[Tuple[str, int, str], Tuple[int, Finding]] = {}

    def add(flow: SinkFlow, origin: str, chain: Tuple[str, ...]) -> None:
        key = (flow.path, flow.line, flow.sink)
        finding = Finding(
            "BP009", flow.path, flow.line, 0,
            f"{origin} reaches {flow.sink} without a dominating "
            f"sanitizer (taint path: {_chain_text(chain)}); verify "
            "signatures/quorum proofs before state is mutated",
        )
        current = best.get(key)
        if current is None or len(chain) < current[0]:
            best[key] = (len(chain), finding)

    for qualname, summary in engine.summaries.items():
        fn = engine.graph.functions[qualname]
        wire_param = entry_wire_param(fn)
        for flow in summary.flows.values():
            if flow.token == SOURCE_TOKEN:
                add(flow, "wire-decoded data", flow.chain)
            elif (
                wire_param is not None
                and flow.token == f"param:{wire_param}"
            ):
                add(
                    flow,
                    f"wire message `{wire_param}` received by "
                    f"`{fn.name}`",
                    flow.chain,
                )
    return [finding for _, finding in best.values()]


def bp010_findings(engine: TaintEngine) -> List[Finding]:
    """Trust laundering: verification names that do not verify, and
    discarded sanitizer verdicts."""
    findings: List[Finding] = []
    for qualname in sorted(engine.summaries):
        summary = engine.summaries[qualname]
        fn = engine.graph.functions[qualname]
        if SANITIZER_NAME_RE.search(fn.name):
            laundered = sorted(
                token for token in summary.returns
                if token == SOURCE_TOKEN
                or token[len("param:"):] in WIRE_PARAM_NAMES
            )
            if laundered:
                what = ", ".join(
                    "wire-decoded data" if t == SOURCE_TOKEN
                    else f"`{t[len('param:'):]}`"
                    for t in laundered
                )
                findings.append(
                    Finding(
                        "BP010", fn.path, fn.line, 0,
                        f"`{fn.name}` claims verification but returns "
                        f"{what} without a dominating sanitizer — "
                        "callers will treat its result as trusted",
                    )
                )
    # Discarded verdicts: a bare-statement call to a verdict-returning
    # verification primitive.
    for caller, sites in engine._sites.items():
        fn = engine.graph.functions.get(caller)
        if fn is None:
            continue
        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, ast.Expr) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            call = stmt.value
            name = _call_name(call)
            if name not in VERDICT_CALL_NAMES:
                continue
            # Only a *resolved* callee known to return a verdict can
            # have that verdict discarded; raise-on-failure checkers
            # (and unresolved externals) are legitimately bare.
            site = sites.get(id(call))
            if site is None or not site.resolved:
                continue
            returns_value = any(
                engine.summaries[t].has_value_return
                for t in site.targets
                if t in engine.summaries
            )
            if returns_value:
                findings.append(
                    Finding(
                        "BP010", fn.path, call.lineno, call.col_offset,
                        f"verdict of `{name}` is discarded — the "
                        "sanitizer ran but nothing is gated on its "
                        "result",
                    )
                )
    return findings


def run_taint_engine(
    contexts: Sequence[ModuleContext],
) -> Tuple[CallGraph, TaintEngine]:
    """Build the call graph and run summaries to fixpoint."""
    graph = build_call_graph(contexts)
    engine = TaintEngine(graph)
    engine.run()
    return graph, engine
