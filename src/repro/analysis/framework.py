"""The checker framework: registry, module contexts, suppressions.

A checker is a class with a ``rule`` id; the framework instantiates the
registered checkers once per run, feeds every analyzed module to
:meth:`Checker.visit_module`, and finally calls
:meth:`Checker.finalize` so cross-module rules (e.g. handler
exhaustiveness) can emit findings after seeing the whole tree.

Suppressions use ``# bp-lint: disable=RULE[,RULE...] -- rationale``
comments:

* trailing after code, the listed rules are suppressed on that line;
* on a line of its own, the listed rules are suppressed for the whole
  file (conventionally placed at the top);
* ``disable=all`` suppresses every rule;
* everything after ``--`` is the rationale — required by the BP012
  audit, which also fails suppressions that no longer match any
  finding of a rule that actually ran.

Suppression is applied *after* checkers run, so a checker never needs
to know about it. BP012's own findings are exempt from suppression:
the audit of the suppression mechanism cannot be silenced by it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding, PARSE_ERROR_RULE

#: Sub-packages whose code must be deterministic / protocol-clean.
PROTOCOL_PACKAGES = (
    "repro.sim",
    "repro.pbft",
    "repro.core",
    "repro.paxos",
    "repro.baselines",
)

_SUPPRESS_RE = re.compile(
    r"#\s*bp-lint:\s*disable=([A-Za-z0-9_,\s]+)(?:--\s*(.+?)\s*$)?"
)

#: Rule id of the stale-suppression audit (emitted by :func:`run_report`
#: itself rather than a per-module checker — it needs the post-filter
#: "which suppressions matched something" state).
SUPPRESSION_AUDIT_RULE = "BP012"


class ModuleContext:
    """Everything a checker may want to know about one source file.

    Attributes:
        path: The file path as given to the analyzer.
        module: Best-effort dotted module name (``repro.pbft.replica``),
            derived from the path; overridable for fixture tests.
        tree: The parsed :mod:`ast` tree.
        source: Raw source text.
    """

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.AST,
        module: Optional[str] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module if module is not None else _module_of(path)

    @property
    def is_protocol(self) -> bool:
        """Whether this module belongs to a protocol package (the scope
        of the determinism rules)."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in PROTOCOL_PACKAGES
        )

    @property
    def is_messages_module(self) -> bool:
        """Whether this is a ``*/messages.py`` wire-format module."""
        return self.module.rsplit(".", 1)[-1] == "messages"


def _module_of(path: str) -> str:
    """Dotted module name from a file path (anchored at ``repro``)."""
    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["__init__"]
    return ".".join(parts)


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`rule`, :attr:`summary`, and :attr:`rationale`
    (the protocol property the rule protects — surfaced by
    ``--list-rules`` and the docs), override :meth:`visit_module`, and
    optionally :meth:`finalize` for whole-project rules. Checkers are
    instantiated fresh for every run, so instance state is per-run
    state.
    """

    rule: str = "BP???"
    summary: str = ""
    rationale: str = ""
    #: Interprocedural rules need the call graph / taint engine; they
    #: only run when :func:`run_report` is invoked with
    #: ``interproc=True`` (or the rule is selected explicitly).
    requires_interproc: bool = False

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        """Analyze one module; return its findings."""
        return []

    def analyze_project(self, project: "Project") -> List[Finding]:
        """Whole-program analysis over the call graph / taint engine.

        Only called when the interprocedural pass ran; ``project``
        carries the parsed contexts, the :class:`~repro.analysis.
        callgraph.CallGraph`, and the converged ``TaintEngine``.
        """
        return []

    def finalize(self) -> List[Finding]:
        """Emit findings that need the whole project (default: none)."""
        return []


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate checker for rule {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_checkers() -> Dict[str, Type[Checker]]:
    """rule id → checker class, for every registered rule."""
    _ensure_rules_loaded()
    return dict(_REGISTRY)


def _ensure_rules_loaded() -> None:
    # Importing the rules package registers every built-in checker;
    # deferred so framework import never cycles with rule modules.
    from repro.analysis import rules  # noqa: F401


class SuppressionEntry:
    """One ``# bp-lint: disable=...`` comment, with audit state."""

    __slots__ = ("line", "rules", "rationale", "file_level", "used")

    def __init__(
        self,
        line: int,
        rules: Set[str],
        rationale: Optional[str],
        file_level: bool,
    ) -> None:
        self.line = line
        self.rules = rules
        self.rationale = rationale
        self.file_level = file_level
        #: Set by :meth:`Suppressions.allows` when the entry actually
        #: silences a finding — the BP012 staleness signal.
        self.used = False


class Suppressions:
    """Parsed ``# bp-lint: disable=...`` comments for one file."""

    def __init__(self, source: str) -> None:
        self.entries: List[SuppressionEntry] = []
        self._parse(source)

    @property
    def file_rules(self) -> Set[str]:
        rules: Set[str] = set()
        for entry in self.entries:
            if entry.file_level:
                rules |= entry.rules
        return rules

    @property
    def line_rules(self) -> Dict[int, Set[str]]:
        by_line: Dict[int, Set[str]] = {}
        for entry in self.entries:
            if not entry.file_level:
                by_line.setdefault(entry.line, set()).update(entry.rules)
        return by_line

    def _parse(self, source: str) -> None:
        code_lines: Set[int] = set()
        comments: List[Tuple[int, str]] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
            elif token.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
        for line, comment in comments:
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            rules = {
                rule.strip().upper()
                for rule in match.group(1).split(",")
                if rule.strip()
            }
            if not rules:
                continue
            self.entries.append(
                SuppressionEntry(
                    line, rules, match.group(2), line not in code_lines
                )
            )

    def allows(self, finding: Finding) -> bool:
        """Whether ``finding`` survives this file's suppressions.

        Matching entries are marked *used*, which is what the BP012
        staleness audit keys on. BP012 findings themselves are never
        suppressible — the audit of the mechanism must not be silenced
        by the mechanism.
        """
        if finding.rule == SUPPRESSION_AUDIT_RULE:
            return True
        allowed = True
        for entry in self.entries:
            if not entry.file_level and entry.line != finding.line:
                continue
            if "ALL" in entry.rules or finding.rule in entry.rules:
                entry.used = True
                allowed = False
        return allowed

    def audit(
        self,
        path: str,
        active_rules: Set[str],
        all_rules: Set[str],
    ) -> List[Finding]:
        """BP012: stale or rationale-less suppressions in this file.

        A suppression is *stale* when every rule it names actually ran
        this pass and none of them produced a finding it silenced; an
        entry naming rules outside ``active_rules`` is not judgeable
        (the evidence wasn't gathered) and is left alone. ``disable=
        all`` entries are judgeable only on a full-rule run.
        """
        findings: List[Finding] = []
        for entry in self.entries:
            listed = ", ".join(sorted(entry.rules))
            if entry.rationale is None:
                findings.append(
                    Finding(
                        SUPPRESSION_AUDIT_RULE, path, entry.line, 0,
                        f"suppression of {listed} carries no rationale; "
                        "append ` -- <why this is safe>` to the "
                        "bp-lint comment",
                    )
                )
            if "ALL" in entry.rules:
                judgeable = active_rules >= all_rules
            else:
                judgeable = entry.rules <= active_rules
            if judgeable and not entry.used:
                findings.append(
                    Finding(
                        SUPPRESSION_AUDIT_RULE, path, entry.line, 0,
                        f"stale suppression: {listed} produced no "
                        "finding here this run — delete the bp-lint "
                        "comment or narrow it",
                    )
                )
        return findings


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(str(p) for p in sorted(path.rglob("*.py")))
        else:
            found.append(str(path))
    return found


def analyze_source(
    source: str,
    path: str,
    checkers: Sequence[Checker],
    module: Optional[str] = None,
) -> List[Finding]:
    """Run per-module checkers over one source text.

    Parse failures come back as a single :data:`PARSE_ERROR_RULE`
    finding; suppressions are already applied to the result.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path, source, tree, module=module)
    suppressions = Suppressions(source)
    findings: List[Finding] = []
    for checker in checkers:
        findings.extend(checker.visit_module(ctx))
    return [f for f in findings if suppressions.allows(f)]


class Project:
    """What the interprocedural pass hands to ``analyze_project``."""

    def __init__(self, contexts, graph, engine) -> None:
        #: Every parsed :class:`ModuleContext` in the run.
        self.contexts = contexts
        #: The resolved :class:`~repro.analysis.callgraph.CallGraph`.
        self.graph = graph
        #: The converged :class:`~repro.analysis.interproc.TaintEngine`.
        self.engine = engine


class Report:
    """Result of one analysis run: findings plus interproc artifacts."""

    def __init__(
        self,
        findings: List[Finding],
        graph=None,
        interproc: bool = False,
    ) -> None:
        self.findings = findings
        self.graph = graph
        self.interproc = interproc


def run_report(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    interproc: bool = False,
) -> Report:
    """Analyze every Python file under ``paths``; return a
    :class:`Report` with findings sorted by location.

    With ``rules=None`` the run covers every registered rule except
    the interprocedural ones, which join when ``interproc=True``.
    Explicitly selecting an interprocedural rule enables the pass.

    Note: file-level suppressions silence a rule's *per-module*
    findings in that file, and cross-module findings (``finalize`` /
    ``analyze_project``) whose location falls in that file.
    """
    registry = registered_checkers()
    if rules is not None:
        selected = set(rules)
        unknown = selected - set(registry)
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(sorted(unknown))}"
            )
        if any(registry[rule].requires_interproc for rule in selected):
            interproc = True
    else:
        selected = {
            rule
            for rule, cls in registry.items()
            if interproc or not cls.requires_interproc
        }
    checkers = [registry[rule]() for rule in sorted(selected)]
    findings: List[Finding] = []
    contexts: List[ModuleContext] = []
    suppressions_by_path: Dict[str, Suppressions] = {}
    for path in iter_python_files(paths):
        try:
            source = Path(path).read_text()
        except OSError as exc:
            findings.append(
                Finding(PARSE_ERROR_RULE, path, 1, 0, f"unreadable: {exc}")
            )
            continue
        suppressions_by_path[path] = Suppressions(source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        ctx = ModuleContext(path, source, tree)
        contexts.append(ctx)
        for checker in checkers:
            findings.extend(checker.visit_module(ctx))
    graph = None
    if interproc:
        from repro.analysis.interproc import run_taint_engine

        graph, engine = run_taint_engine(contexts)
        project = Project(contexts, graph, engine)
        for checker in checkers:
            findings.extend(checker.analyze_project(project))
    for checker in checkers:
        findings.extend(checker.finalize())
    kept: List[Finding] = []
    for finding in findings:
        suppressions = suppressions_by_path.get(finding.path)
        if suppressions is None or suppressions.allows(finding):
            kept.append(finding)
    if SUPPRESSION_AUDIT_RULE in selected:
        all_rules = set(registry)
        for path in sorted(suppressions_by_path):
            kept.extend(
                suppressions_by_path[path].audit(path, selected, all_rules)
            )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return Report(kept, graph=graph, interproc=interproc)


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    interproc: bool = False,
) -> List[Finding]:
    """Back-compat wrapper over :func:`run_report`: findings only."""
    return run_report(paths, rules=rules, interproc=interproc).findings
