"""The checker framework: registry, module contexts, suppressions.

A checker is a class with a ``rule`` id; the framework instantiates the
registered checkers once per run, feeds every analyzed module to
:meth:`Checker.visit_module`, and finally calls
:meth:`Checker.finalize` so cross-module rules (e.g. handler
exhaustiveness) can emit findings after seeing the whole tree.

Suppressions use ``# bp-lint: disable=RULE[,RULE...]`` comments:

* trailing after code, the listed rules are suppressed on that line;
* on a line of its own, the listed rules are suppressed for the whole
  file (conventionally placed at the top);
* ``disable=all`` suppresses every rule.

Suppression is applied *after* checkers run, so a checker never needs
to know about it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding, PARSE_ERROR_RULE

#: Sub-packages whose code must be deterministic / protocol-clean.
PROTOCOL_PACKAGES = (
    "repro.sim",
    "repro.pbft",
    "repro.core",
    "repro.paxos",
    "repro.baselines",
)

_SUPPRESS_RE = re.compile(
    r"#\s*bp-lint:\s*disable=([A-Za-z0-9_,\s]+)"
)


class ModuleContext:
    """Everything a checker may want to know about one source file.

    Attributes:
        path: The file path as given to the analyzer.
        module: Best-effort dotted module name (``repro.pbft.replica``),
            derived from the path; overridable for fixture tests.
        tree: The parsed :mod:`ast` tree.
        source: Raw source text.
    """

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.AST,
        module: Optional[str] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module if module is not None else _module_of(path)

    @property
    def is_protocol(self) -> bool:
        """Whether this module belongs to a protocol package (the scope
        of the determinism rules)."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in PROTOCOL_PACKAGES
        )

    @property
    def is_messages_module(self) -> bool:
        """Whether this is a ``*/messages.py`` wire-format module."""
        return self.module.rsplit(".", 1)[-1] == "messages"


def _module_of(path: str) -> str:
    """Dotted module name from a file path (anchored at ``repro``)."""
    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["__init__"]
    return ".".join(parts)


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`rule`, :attr:`summary`, and :attr:`rationale`
    (the protocol property the rule protects — surfaced by
    ``--list-rules`` and the docs), override :meth:`visit_module`, and
    optionally :meth:`finalize` for whole-project rules. Checkers are
    instantiated fresh for every run, so instance state is per-run
    state.
    """

    rule: str = "BP???"
    summary: str = ""
    rationale: str = ""

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        """Analyze one module; return its findings."""
        return []

    def finalize(self) -> List[Finding]:
        """Emit findings that need the whole project (default: none)."""
        return []


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate checker for rule {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_checkers() -> Dict[str, Type[Checker]]:
    """rule id → checker class, for every registered rule."""
    _ensure_rules_loaded()
    return dict(_REGISTRY)


def _ensure_rules_loaded() -> None:
    # Importing the rules package registers every built-in checker;
    # deferred so framework import never cycles with rule modules.
    from repro.analysis import rules  # noqa: F401


class Suppressions:
    """Parsed ``# bp-lint: disable=...`` comments for one file."""

    def __init__(self, source: str) -> None:
        self.file_rules: Set[str] = set()
        self.line_rules: Dict[int, Set[str]] = {}
        self._parse(source)

    def _parse(self, source: str) -> None:
        code_lines: Set[int] = set()
        comments: List[Tuple[int, str]] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
            elif token.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
        for line, comment in comments:
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            rules = {
                rule.strip().upper()
                for rule in match.group(1).split(",")
                if rule.strip()
            }
            if line in code_lines:
                self.line_rules.setdefault(line, set()).update(rules)
            else:
                self.file_rules.update(rules)

    def allows(self, finding: Finding) -> bool:
        """Whether ``finding`` survives this file's suppressions."""
        for rules in (
            self.file_rules,
            self.line_rules.get(finding.line, set()),
        ):
            if "ALL" in rules or finding.rule in rules:
                return False
        return True


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(str(p) for p in sorted(path.rglob("*.py")))
        else:
            found.append(str(path))
    return found


def analyze_source(
    source: str,
    path: str,
    checkers: Sequence[Checker],
    module: Optional[str] = None,
) -> List[Finding]:
    """Run per-module checkers over one source text.

    Parse failures come back as a single :data:`PARSE_ERROR_RULE`
    finding; suppressions are already applied to the result.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path, source, tree, module=module)
    suppressions = Suppressions(source)
    findings: List[Finding] = []
    for checker in checkers:
        findings.extend(checker.visit_module(ctx))
    return [f for f in findings if suppressions.allows(f)]


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Analyze every Python file under ``paths`` with the registered
    checkers (optionally narrowed to ``rules``); returns all surviving
    findings sorted by location.

    Note: file-level suppressions silence a rule's *per-module*
    findings in that file, and cross-module findings (``finalize``)
    whose location falls in that file.
    """
    registry = registered_checkers()
    selected = set(rules) if rules is not None else set(registry)
    unknown = selected - set(registry)
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    checkers = [registry[rule]() for rule in sorted(selected)]
    findings: List[Finding] = []
    suppressions_by_path: Dict[str, Suppressions] = {}
    for path in iter_python_files(paths):
        try:
            source = Path(path).read_text()
        except OSError as exc:
            findings.append(
                Finding(PARSE_ERROR_RULE, path, 1, 0, f"unreadable: {exc}")
            )
            continue
        suppressions_by_path[path] = Suppressions(source)
        findings.extend(analyze_source(source, path, checkers))
    for checker in checkers:
        for finding in checker.finalize():
            suppressions = suppressions_by_path.get(finding.path)
            if suppressions is None or suppressions.allows(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
