"""repro.analysis — protocol-aware static analysis for Blockplane.

An AST-based lint framework whose rules encode the *protocol* "
invariants generic linters cannot see: determinism of the seeded
simulation (BP001/BP007), quorum thresholds derived from the
configured fault model (BP002), signature/proof discipline on the
receive path (BP003/BP005), handler exhaustiveness and purity
(BP004), exception discipline (BP006), hot-message ``__slots__``
(BP008), interprocedural wire-taint and trust laundering
(BP009/BP010), per-layer dispatch exhaustiveness (BP011), and the
stale-suppression audit (BP012).

Run it as ``python -m repro.analysis [paths]`` (or
``python -m repro lint``); see ``docs/STATIC_ANALYSIS.md`` for the
rule catalogue and how to add a checker.
"""

from repro.analysis.findings import Finding, PARSE_ERROR_RULE
from repro.analysis.framework import (
    Checker,
    ModuleContext,
    Project,
    Report,
    Suppressions,
    analyze_source,
    register,
    registered_checkers,
    run_analysis,
    run_report,
)

__all__ = [
    "Checker",
    "Finding",
    "ModuleContext",
    "PARSE_ERROR_RULE",
    "Project",
    "Report",
    "Suppressions",
    "analyze_source",
    "register",
    "registered_checkers",
    "run_analysis",
    "run_report",
]
