"""BP002 — quorum thresholds must come from :mod:`repro.pbft.quorums`.

Hand-written ``2f + 1`` arithmetic is how hierarchical deployments end
up with one layer sized from the configured ``f`` and another from a
stale copy (the pre-migration ``hierarchical_pbft`` unit sizing was
exactly this). With every threshold derived from one helper module, a
change to the fault model is a one-line change, and a mismatch between
layers is impossible to write.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, register

#: Terminal identifier names that denote a fault-tolerance level.
_F_NAMES = {"f", "fi", "fg", "f_independent", "f_geo"}


def _terminal_name(node: ast.AST) -> Optional[str]:
    """``self.f`` → ``f``; ``budget.f_independent`` → ``f_independent``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_f(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and name in _F_NAMES


def _is_const(node: ast.AST, value: int) -> bool:
    return isinstance(node, ast.Constant) and node.value == value


def _is_scaled_f(node: ast.AST) -> bool:
    """``2 * f`` / ``3 * f`` (either operand order)."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)):
        return False
    left, right = node.left, node.right
    return (_is_f(left) and _is_const(right, 2)) or (
        _is_f(right) and _is_const(left, 2)
    ) or (_is_f(left) and _is_const(right, 3)) or (
        _is_f(right) and _is_const(left, 3)
    )


@register
class QuorumLiteralChecker(Checker):
    """BP002 — no hand-rolled ``3f+1`` / ``2f+1`` / ``f+1`` arithmetic."""

    rule = "BP002"
    summary = "quorum arithmetic must use repro.pbft.quorums helpers"
    rationale = (
        "Quorum sizes written out by hand drift: one layer derives its "
        "unit size from the configured f while a copy elsewhere stays "
        "at f=1. repro.pbft.quorums is the single home of the "
        "formulas; everything else calls unit_size/commit_quorum/"
        "reply_quorum/proof_quorum/majority."
    )

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            message = self._match(node)
            if message is not None:
                findings.append(
                    Finding(
                        self.rule, ctx.path, node.lineno, node.col_offset,
                        message,
                    )
                )
        return findings

    @staticmethod
    def _match(node: ast.BinOp) -> Optional[str]:
        # ``f + 1`` / ``2*f + 1`` / ``3*f + 1`` (either operand order).
        if isinstance(node.op, ast.Add):
            for a, b in ((node.left, node.right), (node.right, node.left)):
                if not _is_const(b, 1):
                    continue
                if _is_f(a):
                    return (
                        "hand-rolled `f + 1` threshold; use "
                        "quorums.reply_quorum/proof_quorum"
                    )
                if _is_scaled_f(a):
                    return (
                        "hand-rolled `2f+1`/`3f+1` arithmetic; use "
                        "quorums.commit_quorum/unit_size"
                    )
                # ``x // 2 + 1`` — a hand-rolled benign majority.
                if (
                    isinstance(a, ast.BinOp)
                    and isinstance(a.op, ast.FloorDiv)
                    and _is_const(a.right, 2)
                ):
                    return (
                        "hand-rolled `n // 2 + 1` majority; use "
                        "quorums.majority"
                    )
            return None
        # ``(n - 1) // 3`` — the tolerated-failure inverse.
        if (
            isinstance(node.op, ast.FloorDiv)
            and _is_const(node.right, 3)
            and isinstance(node.left, ast.BinOp)
            and isinstance(node.left.op, ast.Sub)
            and _is_const(node.left.right, 1)
        ):
            return "hand-rolled `(n - 1) // 3`; use quorums.max_faulty"
        return None
