"""BP011 — handler state-machine exhaustiveness per consuming layer.

BP004 proves every wire message class has a ``handle_<kind>`` method
*somewhere* in the tree. That is too weak for a layered codebase: the
PBFT replica, the Blockplane daemon node, and the Paxos baseline each
run their own state machine over a distinct slice of the message
inventory, and a handler defined on one layer does not help another
(``HierarchicalPBFTNode`` handling ``global_accept`` says nothing
about ``MultiPaxosNode`` receiving ``promise``).

This rule extracts the dispatch table from the AST — methods that do
``getattr(self, f"handle_{...}")``, i.e. :meth:`Node.on_message` and
any future sibling — then checks, for every *root consuming layer* of
a wire-format module, that **all** of that module's message kinds
resolve to a registered handler through the layer's MRO, and that the
layer actually inherits the dispatcher (the handler is reachable, not
just defined).

A class is a *consuming layer* of a messages module when it defines
its own handler for at least one of the module's kinds; it is a *root*
consumer when no base class already consumes the module (subclasses —
byzantine variants overriding a handler or two — inherit the root's
coverage and are not re-audited). The inverse direction is covered
too: a ``handle_<x>`` method on a dispatch-connected class whose
``<x>`` matches no known message kind is an orphan — dispatch can
never reach it, usually a renamed kind.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, Project, register
from repro.analysis.rules.handlers import _is_message_subclass, _message_kind

HANDLER_PREFIX = "handle_"


def _dispatcher_methods(graph) -> Set[Tuple[str, str]]:
    """(class qualname, method name) pairs that dispatch by kind.

    A dispatcher is any method containing ``getattr(self,
    f"handle_{...}")`` (or the ``"handle_" + ...`` spelling).
    """
    dispatchers: Set[Tuple[str, str]] = set()
    for cls in graph.classes.values():
        for name, method in cls.methods.items():
            for node in ast.walk(method.node):
                if _is_handler_getattr(node):
                    dispatchers.add((cls.qualname, name))
                    break
    return dispatchers


def _is_handler_getattr(node: ast.AST) -> bool:
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "getattr"
        and len(node.args) >= 2
    ):
        return False
    key = node.args[1]
    if isinstance(key, ast.JoinedStr):
        parts = key.values
        return bool(parts) and (
            isinstance(parts[0], ast.Constant)
            and isinstance(parts[0].value, str)
            and parts[0].value.startswith(HANDLER_PREFIX)
        )
    if isinstance(key, ast.BinOp) and isinstance(key.op, ast.Add):
        left = key.left
        return (
            isinstance(left, ast.Constant)
            and isinstance(left.value, str)
            and left.value.startswith(HANDLER_PREFIX)
        )
    return False


@register
class DispatchExhaustivenessChecker(Checker):
    """BP011 — every consuming layer handles its whole message slice."""

    rule = "BP011"
    summary = (
        "each root consumer of a */messages.py module resolves a "
        "reachable handle_<kind> for every kind it consumes; no "
        "orphan handlers"
    )
    rationale = (
        "Layers run disjoint state machines over the shared wire "
        "inventory: a handler that exists on the Paxos baseline does "
        "not save the PBFT replica from ProtocolError when the kind "
        "arrives there. Exhaustiveness must hold per consuming layer, "
        "through the MRO, and only counts if the layer inherits the "
        "getattr dispatcher that would ever invoke the handler."
    )
    requires_interproc = True

    def analyze_project(self, project: Project) -> List[Finding]:
        graph = project.graph
        #: messages module name -> [(ClassInfo, kind)].
        inventories: Dict[str, List[Tuple[object, str]]] = {}
        #: every kind any Message subclass anywhere declares.
        all_kinds: Set[str] = set()
        for ctx in project.contexts:
            module_classes = [
                cls for cls in graph.classes.values()
                if cls.module == ctx.module
                and isinstance(cls.node, ast.ClassDef)
                and _is_message_subclass(cls.node)
            ]
            for cls in module_classes:
                all_kinds.add(_message_kind(cls.node))
            if ctx.is_messages_module and ctx.is_protocol:
                inventories[ctx.module] = [
                    (cls, _message_kind(cls.node)) for cls in module_classes
                ]
        if not inventories:
            return []

        dispatchers = _dispatcher_methods(graph)
        dispatcher_classes = {qual for qual, _ in dispatchers}
        layers = [
            cls for cls in graph.node_subclasses() if cls.chain_resolved
        ]

        def own_kinds(cls) -> Set[str]:
            return {
                name[len(HANDLER_PREFIX):]
                for name in cls.methods
                if name.startswith(HANDLER_PREFIX)
            }

        def dispatch_connected(cls) -> bool:
            return any(
                c.qualname in dispatcher_classes for c in cls.mro()
            )

        def consumes(cls, module: str) -> bool:
            kinds = {kind for _, kind in inventories[module]}
            return bool(own_kinds(cls) & kinds)

        findings: List[Finding] = []
        for module, inventory in sorted(inventories.items()):
            roots = [
                cls for cls in layers
                if dispatch_connected(cls)
                and consumes(cls, module)
                and not any(
                    consumes(base, module) for base in cls.mro()[1:]
                )
            ]
            for msg_cls, kind in inventory:
                missing = sorted(
                    cls.name for cls in roots
                    if cls.lookup(HANDLER_PREFIX + kind) is None
                )
                if missing:
                    findings.append(
                        Finding(
                            self.rule, msg_cls.path, msg_cls.node.lineno,
                            msg_cls.node.col_offset,
                            f"message `{msg_cls.name}` (kind `{kind}`) "
                            f"has no reachable handler in consuming "
                            f"layer(s) {', '.join(missing)}; dispatch "
                            "raises ProtocolError there at runtime",
                        )
                    )

        # Orphan handlers: reachable dispatch can never name them.
        for cls in layers:
            if not dispatch_connected(cls):
                continue
            for name, method in sorted(cls.methods.items()):
                if not name.startswith(HANDLER_PREFIX):
                    continue
                kind = name[len(HANDLER_PREFIX):]
                if kind not in all_kinds:
                    findings.append(
                        Finding(
                            self.rule, method.path, method.line, 0,
                            f"orphan handler `{name}` on `{cls.name}`: "
                            f"no message class declares kind `{kind}` "
                            "— dead code or a renamed kind",
                        )
                    )
        return findings
