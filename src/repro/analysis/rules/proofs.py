"""BP003 (payload reads must be dominated by proof checks) and
BP005 (handlers that read proofs/signatures must verify them).

SBFT and RCanopus both report that geo-scale BFT systems go wrong in
the signature-checking discipline, not the happy path: a receive path
that *usually* verifies, plus one refactored branch that doesn't, is a
forgery hole. These rules machine-check the discipline.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.dataflow import FunctionCFG, header_exprs
from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, register

#: Calls that establish trust in a sealed transmission on the path
#: they dominate: quorum-proof validation, the built-in receive
#: verification, or the node-level ingress/vote gates built on them.
TRUST_CALLS = {
    "is_valid",
    "check",
    "valid_signers",
    "verify",
    "verify_received",
    "_ingress_valid",
    "_verify_reception",
    "_verify_mirror",
}


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _contains_trust_call(stmt: ast.stmt) -> bool:
    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and _call_name(node) in TRUST_CALLS:
                return True
    return False


def _sealed_names(func: ast.AST) -> Set[str]:
    """Names bound to an (untrusted) sealed transmission in ``func``:
    parameters named/annotated as sealed, and ``x = <expr>.sealed``."""
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            annotation = arg.annotation
            annotated = (
                isinstance(annotation, ast.Name)
                and annotation.id == "SealedTransmission"
                or isinstance(annotation, ast.Attribute)
                and annotation.attr == "SealedTransmission"
            )
            if arg.arg == "sealed" or annotated:
                names.add(arg.arg)
    for node in ast.walk(func):
        value: Optional[ast.AST] = None
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is None:
            continue
        from_sealed = (
            isinstance(value, ast.Attribute) and value.attr == "sealed"
        ) or (isinstance(value, ast.Name) and value.id in names)
        if from_sealed:
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _record_names(func: ast.AST, sealed: Set[str]) -> Set[str]:
    """Names bound to ``<sealed>.record``."""
    records: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "record"
            and isinstance(value.value, ast.Name)
            and value.value.id in sealed
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    records.add(target.id)
    return records


def _payload_reads(
    func: ast.AST, sealed: Set[str], records: Set[str]
) -> List[ast.Attribute]:
    """``<record>.message`` / ``<sealed>.record.message`` reads."""
    reads: List[ast.Attribute] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Attribute) or node.attr != "message":
            continue
        base = node.value
        if isinstance(base, ast.Name) and base.id in records:
            reads.append(node)
        elif (
            isinstance(base, ast.Attribute)
            and base.attr == "record"
            and isinstance(base.value, ast.Name)
            and base.value.id in sealed
        ):
            reads.append(node)
    return reads


@register
class UncheckedProofChecker(Checker):
    """BP003 — payload access must be dominated by proof verification."""

    rule = "BP003"
    summary = (
        "sealed-transmission payload reads must be dominated by a "
        "proof/verification check"
    )
    rationale = (
        "A transmission record is only trustworthy behind its fi+1 "
        "source-unit signatures (Lemma 2). Any code path that reaches "
        "the payload without passing a verification call first acts on "
        "a potentially forged record — the exact class of bug "
        "chaos-shrinking finds weeks later. Checked with a per-function "
        "CFG dominator analysis."
    )

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            sealed = _sealed_names(func)
            if not sealed:
                continue
            records = _record_names(func, sealed)
            reads = _payload_reads(func, sealed, records)
            if not reads:
                continue
            cfg = FunctionCFG(func)
            for read in reads:
                stmt = cfg.statement_of(read)
                if stmt is None:
                    continue  # unreachable code; nothing executes it
                if cfg.dominated_by(stmt, _contains_trust_call):
                    continue
                findings.append(
                    Finding(
                        self.rule, ctx.path, read.lineno, read.col_offset,
                        "transmission payload read without a dominating "
                        "proof check (is_valid/verify_received/...); "
                        "verify the fi+1 signatures before acting on "
                        "the record",
                    )
                )
        return findings


@register
class SignatureBeforeTrustChecker(Checker):
    """BP005 — message handlers reading proofs must verify them."""

    rule = "BP005"
    summary = (
        "handlers that read `.proof`/`.signature` must call a "
        "verification primitive"
    )
    rationale = (
        "A handler that stores or forwards an attached proof without "
        "calling verify/is_valid/check accepts byzantine input as "
        "evidence. Even when a downstream consumer re-validates, the "
        "handler is the trust boundary the paper's receive routine "
        "defines — validation belongs there."
    )

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not func.name.startswith("handle_"):
                continue
            args = [a.arg for a in func.args.args]
            if len(args) < 2:
                continue
            msg_name = args[1] if args[0] == "self" else args[0]
            proof_read = None
            has_trust = False
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in ("proof", "signature", "geo_proofs")
                    and isinstance(node.value, ast.Name)
                    and node.value.id == msg_name
                    and isinstance(node.ctx, ast.Load)
                ):
                    proof_read = proof_read or node
                if isinstance(node, ast.Call) and (
                    _call_name(node) in TRUST_CALLS
                ):
                    has_trust = True
            if proof_read is not None and not has_trust:
                findings.append(
                    Finding(
                        self.rule, ctx.path, proof_read.lineno,
                        proof_read.col_offset,
                        f"handler `{func.name}` reads "
                        f"`{msg_name}.{proof_read.attr}` but never calls "
                        "a verification primitive "
                        "(verify/is_valid/check)",
                    )
                )
        return findings
