"""BP012 — stale-suppression audit (registry shell).

The emission logic lives in :meth:`repro.analysis.framework.
Suppressions.audit`, driven by :func:`~repro.analysis.framework.
run_report` after suppression filtering — the audit needs to know
which ``# bp-lint: disable=`` entries actually silenced a finding
*this run*, which no per-module checker can see. This class exists so
the rule appears in the registry (``--list-rules``, ``--rules``
selection, the docs) with the same metadata contract as every other
rule.

Two findings: a suppression whose rules all ran yet silenced nothing
is *stale* and fails the build (delete it or narrow it); a suppression
without an inline `` -- rationale`` fails too (a silenced protocol
lint with no recorded justification is a trust decision nobody can
review). BP012 findings are themselves exempt from suppression.
"""

from __future__ import annotations

from repro.analysis.framework import SUPPRESSION_AUDIT_RULE, Checker, register


@register
class SuppressionAuditChecker(Checker):
    """BP012 — suppressions must be live and carry a rationale."""

    rule = SUPPRESSION_AUDIT_RULE
    summary = (
        "every bp-lint suppression still silences a finding of a rule "
        "that ran, and carries an inline ` -- rationale`"
    )
    rationale = (
        "Suppressions are accepted risk. One that no longer matches "
        "anything is a stale exemption waiting to hide the next real "
        "finding on that line; one without a rationale is an "
        "unreviewable trust decision. Both rot the whole lint's "
        "credibility, so both fail the build."
    )
