"""BP013 — wire classes and the generated codec stay in lockstep.

The data plane serializes every cross-site transmission through the
precompiled codecs in :mod:`repro.core.codec`. A wire message class
that is missing from the codec MANIFEST falls back to nothing at all —
``encode_wire`` raises on first use, under exactly the fault schedule
that first emits the message. A MANIFEST whose field list has drifted
from the dataclass it describes is worse: positional arrays would
silently bind payloads to the wrong fields.

The codec module hard-fails at import on field drift; this rule turns
both failure modes into lint findings at the class definition site, so
``make lint`` catches them before any deployment runs.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, register
from repro.analysis.rules.handlers import _is_message_subclass


@register
class CodecSyncChecker(Checker):
    """BP013 — every */messages.py Message class has a generated codec
    whose field list matches the dataclass."""

    rule = "BP013"
    summary = (
        "*/messages.py Message dataclasses are in the codec MANIFEST "
        "with an undrifted field list"
    )
    rationale = (
        "Cross-site transmissions are serialized by precompiled "
        "positional codecs. A message class absent from the MANIFEST "
        "makes encode_wire raise at runtime — under exactly the fault "
        "schedule that first emits it. A drifted field list would bind "
        "positional payloads to the wrong fields; the codec refuses to "
        "import in that state, so the deployment tooling goes down "
        "with it. Both must surface at lint time, at the class "
        "definition, not at first transmission."
    )

    def __init__(self) -> None:
        #: class name -> (path, line, col) for every wire message class
        #: seen in a protocol */messages.py module this run.
        self._wire_classes: Dict[str, Tuple[str, int, int]] = {}

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        if not (ctx.is_protocol and ctx.is_messages_module):
            return []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_message_subclass(node):
                self._wire_classes.setdefault(
                    node.name, (ctx.path, node.lineno, node.col_offset)
                )
        return []

    def finalize(self) -> List[Finding]:
        if not self._wire_classes:
            return []
        try:
            from repro.core import codec
        except RuntimeError as exc:
            # The codec generator refused to compile (MANIFEST drift).
            # Anchor the finding at every collected class: the drifted
            # one is among them and the report must not be empty.
            return [
                Finding(
                    self.rule, path, line, col,
                    f"wire codec failed to generate: {exc}",
                )
                for path, line, col in sorted(self._wire_classes.values())
            ]
        manifest_names = {cls.__name__: cls for cls in codec.MANIFEST}
        findings: List[Finding] = []
        for name, (path, line, col) in sorted(self._wire_classes.items()):
            cls = manifest_names.get(name)
            if cls is None:
                findings.append(
                    Finding(
                        self.rule, path, line, col,
                        f"wire message class `{name}` has no generated "
                        "codec; add it to the MANIFEST in "
                        "repro/core/codec.py",
                    )
                )
                continue
            _tag, manifest_fields = codec.MANIFEST[cls]
            live_fields = tuple(
                field.name for field in dataclasses.fields(cls)
            )
            if tuple(manifest_fields) != live_fields:
                findings.append(
                    Finding(
                        self.rule, path, line, col,
                        f"codec MANIFEST for `{name}` lists fields "
                        f"{tuple(manifest_fields)} but the dataclass "
                        f"declares {live_fields}; update the MANIFEST "
                        "entry to match",
                    )
                )
        return findings
