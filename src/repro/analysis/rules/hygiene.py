"""BP006 (exception discipline) and BP008 (hot-message ``__slots__``).

Protocol code that swallows exceptions silently converts byzantine
evidence into silence; vote/ack message classes allocated millions of
times per run pay real memory and attribute-lookup cost without
``__slots__``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, register
from repro.analysis.rules.handlers import _is_message_subclass


@register
class BareExceptChecker(Checker):
    """BP006 — no bare/blanket-silent exception handlers in protocol
    code."""

    rule = "BP006"
    summary = (
        "no bare `except:`; no `except Exception: pass` in protocol code"
    )
    rationale = (
        "A bare except catches KeyboardInterrupt/SystemExit and hides "
        "simulator bugs as protocol behavior. A blanket handler whose "
        "body is only `pass` converts a byzantine-triggered crash into "
        "silence — the paper's model requires misbehavior to surface "
        "as rejection, never as silent acceptance. Handlers that "
        "convert the exception into an explicit verdict (e.g. "
        "`return False`) are fine."
    )

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        if not ctx.is_protocol:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        self.rule, ctx.path, node.lineno, node.col_offset,
                        "bare `except:` in protocol code; catch a "
                        "specific exception (or `Exception`) and turn "
                        "it into an explicit verdict",
                    )
                )
                continue
            blanket = (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
            )
            silent = all(isinstance(stmt, ast.Pass) for stmt in node.body)
            if blanket and silent:
                findings.append(
                    Finding(
                        self.rule, ctx.path, node.lineno, node.col_offset,
                        "`except Exception: pass` silently swallows "
                        "byzantine evidence; reject, log, or re-raise",
                    )
                )
        return findings


def _has_slots(node: ast.ClassDef) -> bool:
    # Either `@dataclass(slots=True)` or an explicit `__slots__`.
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    for stmt in node.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


@register
class SlotsChecker(Checker):
    """BP008 — wire-format message classes must be slotted."""

    rule = "BP008"
    summary = "*/messages.py Message dataclasses need slots=True"
    rationale = (
        "Vote and ack messages (Prepare/Commit/Reply/...) are the "
        "hottest allocations in a run — every commit creates O(n²) of "
        "them. Without __slots__ each instance carries a dict; with "
        "@dataclass(slots=True) attribute access is faster and "
        "per-message memory drops severalfold. Scoped to */messages.py "
        "so ad-hoc test doubles stay unconstrained."
    )

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        if not ctx.is_messages_module:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_message_subclass(node):
                continue
            if not _has_slots(node):
                findings.append(
                    Finding(
                        self.rule, ctx.path, node.lineno, node.col_offset,
                        f"hot message class `{node.name}` lacks "
                        "`__slots__`; declare it with "
                        "`@dataclasses.dataclass(slots=True)`",
                    )
                )
        return findings
