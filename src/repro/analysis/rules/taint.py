"""BP009/BP010 — interprocedural byzantine-taint rules.

Both rules read the converged taint summaries produced by
:mod:`repro.analysis.interproc`; the heavy lifting (call graph, local
transfer functions, fixpoint) lives there so the checkers stay thin.

BP009 is the interprocedural completion of BP003/BP005: a wire-decoded
value (or a handler's wire parameter) must not reach a replicated-state
sink — Local Log append/restore, executed-state mutation, digest
folding, vote tallies — without a dominating sanitizer *somewhere on
the path*, even when the receive point and the sink live in different
functions or modules.

BP010 catches trust laundering: a function whose name claims
verification but whose return value is still tainted (callers will
treat the result as clean), and sanitizer calls whose verdict is
discarded (the check ran, nothing consumed its answer).
"""

from __future__ import annotations

from typing import List

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, Project, register
from repro.analysis.interproc import bp009_findings, bp010_findings


@register
class WireTaintChecker(Checker):
    """BP009 — untrusted wire data reaches a state sink."""

    rule = "BP009"
    summary = (
        "wire-decoded data never reaches Local Log / executed-state / "
        "tally sinks without a dominating sanitizer, across calls"
    )
    rationale = (
        "Blockplane's safety argument assumes nothing received over "
        "the network influences replicated state before its "
        "signatures and quorum proofs check out. BP003/BP005 enforce "
        "that inside one function; once helpers decode, stage, and "
        "apply in separate functions the laundering gap is "
        "interprocedural — this rule walks the call graph so a "
        "helper's return value cannot silently become 'verified'."
    )
    requires_interproc = True

    def analyze_project(self, project: Project) -> List[Finding]:
        return bp009_findings(project.engine)


@register
class TrustLaunderingChecker(Checker):
    """BP010 — verification claimed but taint returned, or verdict
    discarded."""

    rule = "BP010"
    summary = (
        "verification-named functions must not return tainted data; "
        "sanitizer verdicts must not be discarded"
    )
    rationale = (
        "A function called verify_*/check_* is an API promise: "
        "callers stop checking after it. If it hands back the same "
        "untrusted bytes it was given, every caller inherits a false "
        "sense of safety; a sanitizer whose boolean verdict is thrown "
        "away is the same bug in the other direction — the check ran "
        "and protected nothing."
    )
    requires_interproc = True

    def analyze_project(self, project: Project) -> List[Finding]:
        return bp010_findings(project.engine)
