"""Built-in protocol-aware lint rules.

Importing this package registers every rule with the framework
registry; add a new module here (and import it below) to ship a new
rule.
"""

from repro.analysis.rules import (  # noqa: F401
    codec_sync,
    determinism,
    dispatch,
    handlers,
    hygiene,
    proofs,
    quorum,
    suppressions,
    taint,
)
