"""BP001 (wall clocks, ambient randomness, unordered fan-out) and
BP007 (float virtual-time equality).

The whole repository is a seeded discrete-event simulation: the chaos
engine's schedule shrinking and every regression repro script assume a
run is a pure function of its seed. One ``time.time()`` or module-level
``random.random()`` inside protocol code breaks that silently — the
simulation still passes, but failures stop being replayable.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, register

#: Fully-qualified callables that read ambient time/entropy.
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "ambient entropy",
    "uuid.uuid1": "ambient entropy",
    "uuid.uuid4": "ambient entropy",
}

#: The one acceptable use of :mod:`random`: constructing a seeded
#: generator that the simulator owns.
_ALLOWED_RANDOM = {"random.Random"}

#: Emission methods: a set-ordered loop driving any of these is
#: nondeterministic message ordering on the wire.
_EMIT_METHODS = {"send", "broadcast", "submit", "local_commit"}


def _import_map(tree: ast.AST) -> Dict[str, str]:
    """Local name → dotted origin, for module-level imports."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                mapping[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return mapping


def _dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a call target to a dotted path through the import map."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    return ".".join([root] + list(reversed(parts)))


@register
class DeterminismChecker(Checker):
    """BP001 — protocol code must be a function of the simulation seed."""

    rule = "BP001"
    summary = (
        "no wall clocks, ambient entropy, or set-ordered message "
        "emission in protocol code"
    )
    rationale = (
        "The simulator, chaos shrinker, and every repro script assume a "
        "run is replayable from its seed; only the injected "
        "Simulator.rng and virtual clock are deterministic. Set "
        "iteration order depends on PYTHONHASHSEED for strings, so a "
        "set-driven send loop reorders wire traffic across runs."
    )

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        if not ctx.is_protocol:
            return []
        imports = _import_map(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node, imports))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                findings.extend(self._check_loop(ctx, node))
        return findings

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, imports: Dict[str, str]
    ) -> List[Finding]:
        dotted = _dotted(node.func, imports)
        if dotted is None:
            return []
        if dotted in _BANNED_CALLS:
            return [
                Finding(
                    self.rule, ctx.path, node.lineno, node.col_offset,
                    f"{_BANNED_CALLS[dotted]} `{dotted}()` in protocol "
                    "code; use the simulator's virtual clock (`sim.now`)"
                    " / seeded rng (`sim.rng`)",
                )
            ]
        if (
            dotted.startswith("random.")
            and dotted not in _ALLOWED_RANDOM
            and dotted.count(".") == 1
        ):
            return [
                Finding(
                    self.rule, ctx.path, node.lineno, node.col_offset,
                    f"module-level `{dotted}()` draws from the shared "
                    "global generator; use the injected seeded rng "
                    "(`sim.rng`) instead",
                )
            ]
        return []

    def _check_loop(
        self, ctx: ModuleContext, node: ast.stmt
    ) -> List[Finding]:
        iterable = node.iter
        if not self._is_set_expr(iterable):
            return []
        for child in ast.walk(node):
            if child is node:
                continue
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _EMIT_METHODS
            ):
                return [
                    Finding(
                        self.rule, ctx.path, node.lineno, node.col_offset,
                        "iteration over an unordered set drives "
                        f"`{child.func.attr}(...)`; iterate a sorted or "
                        "insertion-ordered sequence so message order is "
                        "deterministic",
                    )
                ]
        return []

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        return False


#: Attribute names that denote virtual-time readings.
_TIME_ATTRS = {"now"}
_TIME_SUFFIXES = ("_ms", "_time", "_deadline")


def _is_time_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _TIME_ATTRS or node.attr.endswith(_TIME_SUFFIXES)
    if isinstance(node, ast.Name):
        return node.id == "now" or node.id.endswith(_TIME_SUFFIXES)
    return False


@register
class FloatTimeChecker(Checker):
    """BP007 — no equality comparison on float virtual times."""

    rule = "BP007"
    summary = "no `==`/`!=` on virtual-time floats"
    rationale = (
        "Virtual times are floats accumulated from RTT/bandwidth "
        "arithmetic; exact equality silently turns timer coincidences "
        "into protocol behavior that a 1e-9 rounding difference flips. "
        "Compare with `<`/`>=` against windows instead."
    )

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        if not ctx.is_protocol:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_time_expr(left) or _is_time_expr(right):
                    # Comparing against a sentinel integer (e.g. -1 or
                    # 0 for "never set") is exact and fine.
                    other = right if _is_time_expr(left) else left
                    if isinstance(other, ast.Constant) and isinstance(
                        other.value, int
                    ):
                        continue
                    if isinstance(other, ast.UnaryOp) and isinstance(
                        getattr(other.operand, "value", None), int
                    ):
                        continue
                    findings.append(
                        Finding(
                            self.rule, ctx.path, node.lineno,
                            node.col_offset,
                            "float virtual-time equality comparison; "
                            "use ordered comparison against a window",
                        )
                    )
        return findings
