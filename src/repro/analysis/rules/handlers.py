"""BP004 — handler exhaustiveness and handler purity.

Half one is cross-module: every :class:`~repro.sim.node.Message`
subclass defined in a ``*/messages.py`` wire-format module must have a
``handle_<kind>`` method *somewhere* in the analyzed tree, because the
dispatch in :meth:`Node.on_message` raises ``ProtocolError`` at
runtime for missing handlers — this rule moves that discovery to lint
time. Half two is local: no handler may mutate its incoming message.
The network delivers messages by reference in-simulation, so a handler
writing ``msg.x = ...`` corrupts the sender's (and every other
recipient's) copy — the classic heisenbug of actor simulations.
"""

from __future__ import annotations

import ast
import re
from typing import List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, register


def _snake_case(name: str) -> str:
    # Mirrors repro.sim.node._snake_case (kind derivation).
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def _message_kind(node: ast.ClassDef) -> str:
    """The dispatch kind: an explicit ``kind = "..."`` class attribute
    or the snake_cased class name."""
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "kind"
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            return stmt.value.value
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "kind"
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            return stmt.value.value
    return _snake_case(node.name)


def _is_message_subclass(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(
            base, "id", None
        )
        if name == "Message":
            return True
    return False


@register
class HandlerChecker(Checker):
    """BP004 — every wire message handled; no handler mutates input."""

    rule = "BP004"
    summary = (
        "every */messages.py Message class has a handle_<kind> "
        "somewhere; handlers never mutate the incoming message"
    )
    rationale = (
        "Node.on_message raises ProtocolError for unknown kinds at "
        "runtime — under exactly the fault schedule that first emits "
        "the message. Messages are delivered by reference in the "
        "simulator, so handler-side mutation corrupts every other "
        "recipient's copy and the sender's retransmission buffer."
    )

    def __init__(self) -> None:
        #: (path, line, col, class name, kind) per message class.
        self._messages: List[Tuple[str, int, int, str, str]] = []
        self._handlers: Set[str] = set()

    def visit_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                if ctx.is_messages_module and _is_message_subclass(node):
                    self._messages.append(
                        (
                            ctx.path,
                            node.lineno,
                            node.col_offset,
                            node.name,
                            _message_kind(node),
                        )
                    )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if node.name.startswith("handle_"):
                    self._handlers.add(node.name)
                    findings.extend(self._check_mutation(ctx, node))
        return findings

    def _check_mutation(
        self, ctx: ModuleContext, func: ast.FunctionDef
    ) -> List[Finding]:
        args = [a.arg for a in func.args.args]
        if len(args) < 2:
            return []
        msg_name = args[1] if args[0] == "self" else args[0]
        findings: List[Finding] = []
        for node in ast.walk(func):
            target = None
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if self._is_msg_attr(t, msg_name):
                        target = t
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if self._is_msg_attr(node.target, msg_name):
                    target = node.target
            elif isinstance(node, ast.Delete):
                for t in node.targets:
                    if self._is_msg_attr(t, msg_name):
                        target = t
            if target is not None:
                findings.append(
                    Finding(
                        self.rule, ctx.path, node.lineno, node.col_offset,
                        f"handler `{func.name}` mutates the incoming "
                        f"message (`{msg_name}.{target.attr}`); messages "
                        "are shared by reference — copy instead",
                    )
                )
        return findings

    @staticmethod
    def _is_msg_attr(node: ast.AST, msg_name: str) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == msg_name
        )

    def finalize(self) -> List[Finding]:
        findings: List[Finding] = []
        for path, line, col, name, kind in self._messages:
            if f"handle_{kind}" not in self._handlers:
                findings.append(
                    Finding(
                        self.rule, path, line, col,
                        f"message class `{name}` (kind `{kind}`) has no "
                        f"`handle_{kind}` handler anywhere in the "
                        "analyzed tree; dispatch will raise "
                        "ProtocolError at runtime",
                    )
                )
        return findings
