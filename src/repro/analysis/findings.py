"""Finding and rule metadata types shared across the analysis suite."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Stable rule identifier (``BP001`` … ``BP008``, or
            ``BP000`` for files the parser itself rejects).
        path: Path of the offending file as given to the analyzer.
        line: 1-based source line.
        col: 0-based column offset.
        message: Human-readable description of the violation.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key order via reporters)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


#: Rule id used for files that fail to parse.
PARSE_ERROR_RULE = "BP000"
