"""Table II — local commitment while varying the number of nodes.

One datacenter, 100 KB batches (the paper's best balance point), unit
size swept over 4/7/10/13 nodes (fi = 1..4). The paper reports
throughput dropping 83 → 51 → 28 → 25 MB/s and latency rising
1.2 → 1.9 → 3.5 → 4 ms: pre-prepare has to push the batch to ``3·fi``
replicas through one NIC, so resilience costs bandwidth.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.experiments.report import fmt_mb_s, fmt_ms, format_table
from repro.pbft.quorums import max_faulty, unit_size
from repro.sim.simulator import Simulator
from repro.sim.topology import single_dc_topology
from repro.workloads.generator import BatchWorkload
from repro.workloads.runner import sequential_commit_latency

#: fi values corresponding to the paper's 4/7/10/13-node columns.
DEFAULT_F_VALUES = (1, 2, 3, 4)

#: Paper's Table II: nodes → (throughput MB/s, latency ms).
PAPER_TABLE2 = {4: (83.0, 1.2), 7: (51.0, 1.9), 10: (28.0, 3.5), 13: (25.0, 4.0)}

BATCH_BYTES = 100_000


def run_one(
    f_independent: int,
    measured: int = 1000,
    warmup: int = 100,
    seed: int = 0,
    obs=None,
) -> Dict[str, float]:
    """Measure local commitment for one fault-tolerance level."""
    sim = Simulator(seed=seed)
    deployment = BlockplaneDeployment(
        sim,
        single_dc_topology("V"),
        BlockplaneConfig(f_independent=f_independent),
        obs=obs,
    )
    api = deployment.api("V")
    workload = BatchWorkload(
        measured=measured, warmup=warmup, batch_bytes=BATCH_BYTES, seed=seed
    )
    result = sequential_commit_latency(
        sim,
        lambda batch, size: api.log_commit(batch, payload_bytes=size),
        workload,
    )
    return {
        "nodes": unit_size(f_independent),
        "latency_ms": result["latency_ms"],
        "throughput_mb_s": result["throughput_mb_s"],
    }


def run(
    f_values: Sequence[int] = DEFAULT_F_VALUES,
    measured: int = 1000,
    warmup: int = 100,
    seed: int = 0,
    obs=None,
) -> Dict[int, Dict[str, float]]:
    """Sweep fi; returns node count → metrics."""
    results = {}
    for f_independent in f_values:
        metrics = run_one(
            f_independent, measured=measured, warmup=warmup, seed=seed,
            obs=obs,
        )
        results[int(metrics["nodes"])] = metrics
    return results


def main(
    measured: int = 200, warmup: int = 20, obs=None
) -> Dict[int, Dict[str, float]]:
    """Print Table II (smaller run by default)."""
    results = run(measured=measured, warmup=warmup, obs=obs)
    rows = []
    for nodes, metrics in results.items():
        paper_throughput, paper_latency = PAPER_TABLE2.get(nodes, (None, None))
        rows.append(
            [
                f"{nodes} (fi={max_faulty(nodes)})",
                fmt_mb_s(metrics["throughput_mb_s"]),
                f"{paper_throughput:.0f}" if paper_throughput else "-",
                fmt_ms(metrics["latency_ms"]),
                f"{paper_latency:.1f}" if paper_latency else "-",
            ]
        )
    print("Table II — local commitment vs number of nodes (100 KB batches)")
    print(
        format_table(
            ["nodes", "MB/s", "paper MB/s", "latency ms", "paper ms"], rows
        )
    )
    return results


if __name__ == "__main__":
    main()
