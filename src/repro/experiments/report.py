"""Small text-table helpers for experiment output."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(headers: Sequence[str], rows: List[Sequence[Any]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def fmt_ms(value: float) -> str:
    """Milliseconds with sensible precision."""
    if value < 10:
        return f"{value:.2f}"
    return f"{value:.1f}"


def fmt_mb_s(value: float) -> str:
    """Megabytes/second with sensible precision."""
    if value < 10:
        return f"{value:.2f}"
    return f"{value:.1f}"
