"""Figure 5 — committing with geo-correlated fault tolerance.

Four datacenters, fi = 1, fg swept over 1..3. Each commit at the
labelled datacenter must gather mirror proofs from its ``fg`` closest
peers (in parallel), so the latency tracks the RTT to the fg-th closest
datacenter — the paper's headline observations:

* raising fg always raises latency, but by topology-dependent amounts
  (California: +176 % from fg 1→2; Virginia: only +13 %);
* at fg = 2 everybody lands in the 64–80 ms band except Ireland
  (~135 ms); at fg = 3 everybody is ≥135 ms except Virginia (~80 ms).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.experiments.report import fmt_ms, format_table
from repro.sim.simulator import Simulator
from repro.sim.topology import AWS_SITES, aws_four_dc_topology
from repro.workloads.generator import BatchWorkload
from repro.workloads.runner import sequential_commit_latency

DEFAULT_FG_LEVELS = (1, 2, 3)

#: Approximate values read off the paper's Figure 5 (ms).
PAPER_FIG5 = {
    "C": {1: 23, 2: 64, 3: 134},
    "O": {1: 23, 2: 80, 3: 135},
    "V": {1: 64, 2: 73, 3: 80},
    "I": {1: 73, 2: 135, 3: 137},
}


def run_one(
    site: str,
    f_geo: int,
    measured: int = 100,
    warmup: int = 10,
    seed: int = 0,
    obs=None,
) -> float:
    """Mean commit latency (ms) at ``site`` with the given fg."""
    sim = Simulator(seed=seed)
    deployment = BlockplaneDeployment(
        sim,
        aws_four_dc_topology(),
        BlockplaneConfig(f_independent=1, f_geo=f_geo),
        obs=obs,
    )
    api = deployment.api(site)
    workload = BatchWorkload(
        measured=measured, warmup=warmup, batch_bytes=1000, seed=seed
    )
    result = sequential_commit_latency(
        sim,
        lambda batch, size: api.log_commit(batch, payload_bytes=size),
        workload,
    )
    return result["latency_ms"]


def run(
    sites: Sequence[str] = AWS_SITES,
    fg_levels: Sequence[int] = DEFAULT_FG_LEVELS,
    measured: int = 100,
    warmup: int = 10,
    seed: int = 0,
    obs=None,
) -> Dict[str, Dict[int, float]]:
    """Full sweep; returns site → fg → latency ms."""
    return {
        site: {
            fg: run_one(
                site, fg, measured=measured, warmup=warmup, seed=seed,
                obs=obs,
            )
            for fg in fg_levels
        }
        for site in sites
    }


def main(
    measured: int = 50, warmup: int = 5, obs=None
) -> Dict[str, Dict[int, float]]:
    """Print Figure 5 (smaller run by default)."""
    results = run(measured=measured, warmup=warmup, obs=obs)
    rows = []
    for site, by_fg in results.items():
        for fg, latency in by_fg.items():
            rows.append(
                [
                    f"{site}({fg})",
                    fmt_ms(latency),
                    str(PAPER_FIG5.get(site, {}).get(fg, "-")),
                ]
            )
    print("Figure 5 — geo-correlated fault tolerance (fi=1)")
    print(format_table(["scenario", "latency ms", "paper ms"], rows))
    return results


if __name__ == "__main__":
    main()
