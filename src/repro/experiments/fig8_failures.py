"""Figure 8 — reacting to failures (fi = fg = 1).

Two timelines over a primary participant committing batches with
geo-correlated tolerance:

* **(a) backup failure** — primary California, its active proof-granting
  backup is Oregon (closest). After batch 45 Oregon's datacenter is
  shut down: one batch pays the detection timeout, then commits settle
  at Virginia's distance (60–80 ms instead of 20–40 ms).
* **(b) primary failure** — California itself dies after batch 70;
  Virginia (next in the replication set) suspects the silence, takes
  over as primary, and serves batches 71–160 at its own replication
  distance, with transition spikes of a few hundred ms around the
  takeover.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.experiments.report import format_table
from repro.sim.process import any_of
from repro.sim.simulator import Simulator
from repro.sim.topology import aws_four_dc_topology

#: Replication sets for the Figure 8 scenarios: California primary,
#: Virginia the designated successor (as in the paper's narrative),
#: Oregon the closest proof-granting backup.
FIG8_REPLICATION_SETS = {
    "C": ["C", "V", "O"],
    "V": ["C", "V", "O"],
    "O": ["C", "V", "O"],
    "I": ["I", "V", "C"],
}

BATCH_BYTES = 1000


def _build(
    seed: int, geo_suspicion_ttl_ms: float = 5_000.0
) -> BlockplaneDeployment:
    sim = Simulator(seed=seed)
    deployment = BlockplaneDeployment(
        sim,
        aws_four_dc_topology(),
        BlockplaneConfig(
            f_independent=1,
            f_geo=1,
            heartbeat_interval_ms=50.0,
            heartbeat_suspect_ms=200.0,
            geo_suspicion_ttl_ms=geo_suspicion_ttl_ms,
        ),
        replication_sets=FIG8_REPLICATION_SETS,
    )
    return deployment


def run_backup_failure(
    batches: int = 100, fail_at: int = 45, seed: int = 9
) -> Dict[str, object]:
    """Scenario (a): kill the Oregon backup mid-run.

    Returns:
        Dict with ``latencies`` (per-batch ms, 1-indexed by position in
        the list), ``fail_at``, and steady-state means before/after.
    """
    deployment = _build(seed)
    sim = deployment.sim
    api = deployment.api("C")
    latencies: List[float] = []

    def driver():
        for index in range(batches):
            if index == fail_at:
                deployment.unit("O").crash()
            start = sim.now
            yield api.log_commit(f"batch-{index}", payload_bytes=BATCH_BYTES)
            latencies.append(sim.now - start)

    sim.run_until_resolved(sim.spawn(driver()), max_events=200_000_000)
    before = latencies[5:fail_at]
    after = latencies[fail_at + 2 :]
    return {
        "latencies": latencies,
        "fail_at": fail_at,
        "steady_before_ms": sum(before) / len(before),
        "steady_after_ms": sum(after) / len(after),
    }


def run_primary_failure(
    batches: int = 160,
    fail_at: int = 70,
    seed: int = 9,
    retry_timeout_ms: float = 250.0,
) -> Dict[str, object]:
    """Scenario (b): kill the California primary mid-run.

    The driver plays the role of the application clients: it issues
    each batch to whoever it currently believes is the primary, retries
    on silence, and follows take-over announcements.
    """
    deployment = _build(seed)
    sim = deployment.sim
    latencies: List[float] = []
    state = {"primary": "C"}
    for site in ("C", "V", "O"):
        geo = deployment.unit(site).geo
        geo.on_primary_change.append(
            lambda primary, _epoch: state.__setitem__("primary", primary)
        )

    def driver():
        for index in range(batches):
            if index == fail_at:
                deployment.unit("C").crash()
            start = sim.now
            while True:
                primary = state["primary"]
                try:
                    commit = deployment.api(primary).log_commit(
                        f"batch-{index}", payload_bytes=BATCH_BYTES
                    )
                    which, _ = yield any_of(
                        sim, [commit, sim.sleep(retry_timeout_ms)]
                    )
                except Exception:
                    # The believed primary is entirely dead; wait for a
                    # take-over announcement and retry.
                    yield sim.sleep(50.0)
                    continue
                if which == 0:
                    break
            latencies.append(sim.now - start)

    sim.run_until_resolved(sim.spawn(driver()), max_events=400_000_000)
    before = latencies[5:fail_at]
    tail = latencies[fail_at + 5 :]
    return {
        "latencies": latencies,
        "fail_at": fail_at,
        "steady_before_ms": sum(before) / len(before),
        "steady_after_ms": sum(tail) / len(tail),
        "final_primary": state["primary"],
        "transition_peak_ms": max(latencies[fail_at : fail_at + 5]),
    }


def run_backup_recovery(
    batches: int = 120,
    fail_at: int = 40,
    recover_at: int = 80,
    seed: int = 9,
) -> Dict[str, object]:
    """Extension beyond the paper's Figure 8: the failed backup comes
    back. Commits should return to the close-backup latency once the
    suspicion TTL lapses and Oregon answers mirror requests again."""
    deployment = _build(seed, geo_suspicion_ttl_ms=500.0)
    sim = deployment.sim
    api = deployment.api("C")
    latencies: List[float] = []

    def driver():
        for index in range(batches):
            if index == fail_at:
                deployment.unit("O").crash()
            if index == recover_at:
                deployment.unit("O").recover()
            start = sim.now
            yield api.log_commit(f"batch-{index}", payload_bytes=BATCH_BYTES)
            latencies.append(sim.now - start)

    sim.run_until_resolved(sim.spawn(driver()), max_events=400_000_000)
    tail = latencies[-15:]
    return {
        "latencies": latencies,
        "fail_at": fail_at,
        "recover_at": recover_at,
        "steady_before_ms": sum(latencies[5:fail_at])
        / len(latencies[5:fail_at]),
        "steady_during_ms": sum(latencies[fail_at + 2 : recover_at])
        / len(latencies[fail_at + 2 : recover_at]),
        "steady_recovered_ms": sum(tail) / len(tail),
    }


def run(seed: int = 9) -> Dict[str, Dict[str, object]]:
    """Both Figure 8 scenarios (plus the recovery extension)."""
    return {
        "backup_failure": run_backup_failure(seed=seed),
        "primary_failure": run_primary_failure(seed=seed),
        "backup_recovery": run_backup_recovery(seed=seed),
    }


def main(
    backup_batches: int = 100, primary_batches: int = 160
) -> Dict[str, Dict[str, object]]:
    """Print Figure 8's two timelines (summarized)."""
    a = run_backup_failure(batches=backup_batches)
    b = run_primary_failure(batches=primary_batches)
    print("Figure 8(a) — backup failure (kill Oregon at batch "
          f"{a['fail_at']})")
    print(
        format_table(
            ["phase", "latency ms", "paper ms"],
            [
                ["before failure", f"{a['steady_before_ms']:.1f}", "20-40"],
                ["after failure", f"{a['steady_after_ms']:.1f}", "60-80"],
            ],
        )
    )
    print()
    print("Figure 8(b) — primary failure (kill California at batch "
          f"{b['fail_at']}; {b['final_primary']} takes over)")
    print(
        format_table(
            ["phase", "latency ms", "paper ms"],
            [
                ["before failure", f"{b['steady_before_ms']:.1f}", "20-40"],
                ["transition peak", f"{b['transition_peak_ms']:.1f}", "~250"],
                ["after take-over", f"{b['steady_after_ms']:.1f}", "60-80"],
            ],
        )
    )
    return {"backup_failure": a, "primary_failure": b}


if __name__ == "__main__":
    main()
