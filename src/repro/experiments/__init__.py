"""One driver per table/figure of the paper's Section VIII.

Every module exposes ``run(...) -> dict`` returning the figure's series
and a ``main()`` that prints rows next to the paper's reported values.
The benchmark suite under ``benchmarks/`` calls these same drivers, so
``pytest benchmarks/ --benchmark-only`` regenerates the entire
evaluation.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    costs,
    fig4_local_commit,
    fig5_geo,
    fig6_communication,
    fig7_consensus,
    fig8_failures,
    table1_topology,
    table2_scalability,
)

__all__ = [
    "ablations",
    "costs",
    "fig4_local_commit",
    "fig5_geo",
    "fig6_communication",
    "fig7_consensus",
    "fig8_failures",
    "table1_topology",
    "table2_scalability",
]
