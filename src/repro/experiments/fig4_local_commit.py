"""Figure 4 — local commitment performance vs batch size.

A single datacenter, one Blockplane unit of 4 nodes (fi = 1), no
wide-area communication. The driver sweeps the batch size from 1 KB to
2000 KB and reports the latency of ``log-commit`` and the resulting
group-commit throughput.

Paper's observations to reproduce:

* latency stays around a millisecond up to 100 KB, then grows with the
  batch size (4.5 ms at 1000 KB, 8.2 ms at 2000 KB — NIC pressure);
* throughput rises steeply at small sizes (~60x from 1 KB to 100 KB),
  then plateaus (only ~10 % more from 1000 KB to 2000 KB).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.experiments.report import fmt_mb_s, fmt_ms, format_table
from repro.sim.simulator import Simulator
from repro.sim.topology import single_dc_topology
from repro.workloads.generator import BatchWorkload
from repro.workloads.runner import sequential_commit_latency

#: Batch sizes the paper sweeps (bytes).
DEFAULT_BATCH_SIZES = (
    1_000,
    10_000,
    100_000,
    500_000,
    1_000_000,
    2_000_000,
)

#: The paper's reported values for reference printing: size → (ms, note)
PAPER_LATENCY_MS = {100_000: 1.2, 1_000_000: 4.5, 2_000_000: 8.2}


def run_one(
    batch_bytes: int,
    measured: int = 1000,
    warmup: int = 100,
    f_independent: int = 1,
    seed: int = 0,
    obs=None,
) -> Dict[str, float]:
    """Measure local commitment for one batch size.

    Returns:
        Dict with ``latency_ms`` and ``throughput_mb_s``.
    """
    sim = Simulator(seed=seed)
    deployment = BlockplaneDeployment(
        sim,
        single_dc_topology("V"),
        BlockplaneConfig(f_independent=f_independent),
        obs=obs,
    )
    api = deployment.api("V")
    workload = BatchWorkload(
        measured=measured, warmup=warmup, batch_bytes=batch_bytes, seed=seed
    )
    result = sequential_commit_latency(
        sim,
        lambda batch, size: api.log_commit(batch, payload_bytes=size),
        workload,
    )
    return {
        "latency_ms": result["latency_ms"],
        "throughput_mb_s": result["throughput_mb_s"],
    }


def run(
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    measured: int = 1000,
    warmup: int = 100,
    seed: int = 0,
    obs=None,
) -> Dict[int, Dict[str, float]]:
    """Sweep batch sizes; returns size → metrics."""
    return {
        size: run_one(
            size, measured=measured, warmup=warmup, seed=seed, obs=obs
        )
        for size in batch_sizes
    }


def main(
    measured: int = 200, warmup: int = 20, obs=None
) -> Dict[int, Dict[str, float]]:
    """Print Figure 4's two panels (smaller run by default)."""
    results = run(measured=measured, warmup=warmup, obs=obs)
    rows = []
    for size, metrics in results.items():
        paper = PAPER_LATENCY_MS.get(size)
        rows.append(
            [
                f"{size // 1000} KB",
                fmt_ms(metrics["latency_ms"]),
                f"{paper:.1f}" if paper else "-",
                fmt_mb_s(metrics["throughput_mb_s"]),
            ]
        )
    print("Figure 4 — local commitment vs batch size (fi=1, 4 nodes)")
    print(
        format_table(
            ["batch", "latency ms", "paper ms", "throughput MB/s"], rows
        )
    )
    return results


if __name__ == "__main__":
    main()
