"""Section VI-D quantified: performance and monetary costs.

The paper discusses byzantization costs qualitatively — extra nodes,
extra communication, wide-area traffic. This driver measures them: for
the same logical workload (N replicated values, leader in California),
it counts nodes, messages, and bytes for each system, separating local
from wide-area traffic (the quantity that dominates a cloud bill).
"""

from __future__ import annotations

from typing import Dict

from repro.apps.bp_paxos import BlockplanePaxosParticipant, PaxosVerification
from repro.baselines import FlatPaxosDeployment, FlatPBFTDeployment
from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.experiments.report import format_table
from repro.sim.simulator import Simulator
from repro.sim.topology import aws_four_dc_topology

BATCH_BYTES = 1000


class _TrafficMeter:
    """Counts messages/bytes by locality via a tamper hook."""

    def __init__(self, network):
        self.network = network
        self.local_messages = 0
        self.wan_messages = 0
        self.local_bytes = 0
        self.wan_bytes = 0
        network.add_tamper_hook(self._observe)

    def _observe(self, src, dst, message):
        size = message.size_bytes() + self.network.options.per_message_overhead_bytes
        if self.network.node(src).site == self.network.node(dst).site:
            self.local_messages += 1
            self.local_bytes += size
        else:
            self.wan_messages += 1
            self.wan_bytes += size
        return message

    def per_op(self, operations: int) -> Dict[str, float]:
        return {
            "local_msgs_per_op": self.local_messages / operations,
            "wan_msgs_per_op": self.wan_messages / operations,
            "local_kb_per_op": self.local_bytes / operations / 1000.0,
            "wan_kb_per_op": self.wan_bytes / operations / 1000.0,
        }


def run(operations: int = 10, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Measure per-operation costs for the three consensus systems.

    Returns:
        system → {nodes, local/wan messages and KB per op}.
    """
    results: Dict[str, Dict[str, float]] = {}

    # --- flat Paxos (the benign floor: 4 nodes total) -----------------
    sim = Simulator(seed=seed)
    paxos = FlatPaxosDeployment(sim, aws_four_dc_topology(), "C")
    sim.run_until_resolved(paxos.elect_leader())
    meter = _TrafficMeter(paxos.network)

    def paxos_work():
        for index in range(operations):
            yield paxos.replicate(f"v{index}", payload_bytes=BATCH_BYTES)

    sim.run_until_resolved(sim.spawn(paxos_work()), max_events=100_000_000)
    results["paxos"] = {"nodes": 4.0, **meter.per_op(operations)}

    # --- flat PBFT (4 wide-area nodes) ---------------------------------
    sim = Simulator(seed=seed)
    pbft = FlatPBFTDeployment(sim, aws_four_dc_topology(), "C")
    meter = _TrafficMeter(pbft.network)

    def pbft_work():
        for index in range(operations):
            yield pbft.commit(f"v{index}", payload_bytes=BATCH_BYTES)

    sim.run_until_resolved(sim.spawn(pbft_work()), max_events=100_000_000)
    results["pbft"] = {"nodes": 4.0, **meter.per_op(operations)}

    # --- Blockplane-Paxos (16 nodes; extra local, minimal wide-area) ---
    sim = Simulator(seed=seed)
    topology = aws_four_dc_topology()
    deployment = BlockplaneDeployment(
        sim,
        topology,
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda _name: PaxosVerification(),
    )
    participants = {
        site: BlockplanePaxosParticipant(
            deployment.api(site), topology.site_names
        )
        for site in topology.site_names
    }
    for participant in participants.values():
        participant.start()
    leader = participants["C"]
    sim.run_until_resolved(
        sim.spawn(leader.leader_election()), max_events=200_000_000
    )
    meter = _TrafficMeter(deployment.network)

    def blockplane_work():
        for index in range(operations):
            yield leader.replicate(f"v{index}", payload_bytes=BATCH_BYTES)

    sim.run_until_resolved(
        sim.spawn(blockplane_work()), max_events=400_000_000
    )
    results["blockplane-paxos"] = {
        "nodes": float(len(deployment.all_nodes())),
        **meter.per_op(operations),
    }
    return results


def main(operations: int = 10) -> Dict[str, Dict[str, float]]:
    """Print the Section VI-D cost table."""
    results = run(operations=operations)
    rows = []
    for system, metrics in results.items():
        rows.append(
            [
                system,
                f"{metrics['nodes']:.0f}",
                f"{metrics['local_msgs_per_op']:.0f}",
                f"{metrics['wan_msgs_per_op']:.1f}",
                f"{metrics['local_kb_per_op']:.1f}",
                f"{metrics['wan_kb_per_op']:.1f}",
            ]
        )
    print("Section VI-D — per-operation resource costs (leader C)")
    print(
        format_table(
            [
                "system",
                "nodes",
                "local msgs/op",
                "WAN msgs/op",
                "local KB/op",
                "WAN KB/op",
            ],
            rows,
        )
    )
    return results


if __name__ == "__main__":
    main()
