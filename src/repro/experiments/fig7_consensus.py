"""Figure 7 — global consensus: Blockplane-Paxos vs the baselines.

The paper's headline experiment. For a leader placed in each of the
four datacenters, measure the latency of the Replication phase under
four systems:

* **Paxos** — the benign floor: one RTT to the closest majority.
* **Blockplane-Paxos** — Paxos byzantized through the middleware;
  pays extra *local* commits (0–33 % in the paper) but keeps Paxos's
  single wide-area round.
* **Hierarchical PBFT** — the ablation without API separation; lands
  between Paxos and Blockplane-Paxos.
* **PBFT** — one replica per datacenter; three wide-area phases make
  it 16–78 % slower than Blockplane-Paxos.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.apps.bp_paxos import BlockplanePaxosParticipant, PaxosVerification
from repro.baselines import (
    FlatPaxosDeployment,
    FlatPBFTDeployment,
    HierarchicalPBFTDeployment,
)
from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.experiments.report import fmt_ms, format_table
from repro.sim.simulator import Simulator
from repro.sim.topology import AWS_SITES, aws_four_dc_topology

SYSTEMS = ("paxos", "blockplane-paxos", "hierarchical-pbft", "pbft")

#: Values read off the paper's Figure 7 (ms), per leader datacenter.
PAPER_FIG7 = {
    "V": {"paxos": 70, "blockplane-paxos": 79, "hierarchical-pbft": 74, "pbft": 146},
    "O": {"paxos": 79, "blockplane-paxos": 88, "hierarchical-pbft": 83, "pbft": 120},
    "C": {"paxos": 61, "blockplane-paxos": 81, "hierarchical-pbft": 68, "pbft": 102},
    "I": {"paxos": 130, "blockplane-paxos": 131, "hierarchical-pbft": 130, "pbft": 157},
}

BATCH_BYTES = 1000


def _measure(sim: Simulator, replicate: Callable, rounds: int) -> float:
    start = sim.now

    def work():
        for index in range(rounds):
            yield replicate(f"value-{index}", BATCH_BYTES)

    sim.run_until_resolved(sim.spawn(work()), max_events=100_000_000)
    return (sim.now - start) / rounds


def run_paxos(leader_site: str, rounds: int = 20, seed: int = 0) -> float:
    """Flat Paxos replication latency with the leader at one site."""
    sim = Simulator(seed=seed)
    deployment = FlatPaxosDeployment(sim, aws_four_dc_topology(), leader_site)
    sim.run_until_resolved(deployment.elect_leader())
    return _measure(sim, deployment.replicate, rounds)


def run_blockplane_paxos(
    leader_site: str, rounds: int = 20, seed: int = 0
) -> float:
    """Blockplane-Paxos replication latency (Algorithm 3 over the API)."""
    sim = Simulator(seed=seed)
    topology = aws_four_dc_topology()
    deployment = BlockplaneDeployment(
        sim,
        topology,
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda _name: PaxosVerification(),
    )
    participants = {
        site: BlockplanePaxosParticipant(deployment.api(site), topology.site_names)
        for site in topology.site_names
    }
    for participant in participants.values():
        participant.start()
    leader = participants[leader_site]
    sim.run_until_resolved(
        sim.spawn(leader.leader_election()), max_events=100_000_000
    )
    if not leader.l:
        raise RuntimeError(f"leader election failed at {leader_site}")

    def replicate(value, payload_bytes):
        return sim.spawn(leader.replicate(value, payload_bytes))

    return _measure(sim, replicate, rounds)


def run_pbft(leader_site: str, rounds: int = 20, seed: int = 0) -> float:
    """Flat wide-area PBFT commit latency."""
    sim = Simulator(seed=seed)
    deployment = FlatPBFTDeployment(sim, aws_four_dc_topology(), leader_site)

    def commit(value, payload_bytes):
        return deployment.commit(value, payload_bytes)

    return _measure(sim, commit, rounds)


def run_hierarchical_pbft(
    leader_site: str, rounds: int = 20, seed: int = 0
) -> float:
    """Hierarchical PBFT (no API separation) replication latency."""
    sim = Simulator(seed=seed)
    deployment = HierarchicalPBFTDeployment(
        sim, aws_four_dc_topology(), leader_site
    )
    return _measure(sim, deployment.replicate, rounds)


_RUNNERS = {
    "paxos": run_paxos,
    "blockplane-paxos": run_blockplane_paxos,
    "hierarchical-pbft": run_hierarchical_pbft,
    "pbft": run_pbft,
}


def run(
    sites: Sequence[str] = AWS_SITES,
    systems: Sequence[str] = SYSTEMS,
    rounds: int = 20,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Full Figure 7 sweep; returns site → system → latency ms."""
    return {
        site: {
            system: _RUNNERS[system](site, rounds=rounds, seed=seed)
            for system in systems
        }
        for site in sites
    }


def main(rounds: int = 10) -> Dict[str, Dict[str, float]]:
    """Print Figure 7."""
    results = run(rounds=rounds)
    rows = []
    for site, by_system in results.items():
        for system, latency in by_system.items():
            rows.append(
                [
                    site,
                    system,
                    fmt_ms(latency),
                    str(PAPER_FIG7.get(site, {}).get(system, "-")),
                ]
            )
    print("Figure 7 — Replication-phase latency per leader datacenter")
    print(format_table(["leader", "system", "latency ms", "paper ms"], rows))
    return results


if __name__ == "__main__":
    main()
