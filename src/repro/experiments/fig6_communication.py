"""Figure 6 — communication performance between participants.

For each of the six datacenter pairs, one participant ``send``s a
message, the other ``receive``s it and acknowledges back through its
own ``send``; the reported latency is the full send → receive → ack
round trip at the source.

Paper's observations: the latency tracks the pair's RTT, with the local
commits at both ends adding 1–7 % overhead — except California–Oregon,
whose 19 ms RTT is small enough that the fixed intra-datacenter cost
shows up as ~23 %.
"""

from __future__ import annotations

import itertools
from typing import Dict, Sequence, Tuple

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.experiments.report import fmt_ms, format_table
from repro.sim.simulator import Simulator
from repro.sim.topology import AWS_SITES, aws_four_dc_topology

#: Values read off the paper's Figure 6 (ms).
PAPER_FIG6 = {
    ("C", "O"): 23.4,
    ("C", "V"): 65.0,
    ("C", "I"): 137.0,
    ("O", "V"): 82.0,
    ("O", "I"): 139.0,
    ("V", "I"): 74.0,
}


def run_pair(
    source: str,
    destination: str,
    rounds: int = 20,
    warmup: int = 2,
    seed: int = 0,
    obs=None,
) -> float:
    """Mean send→receive→ack latency (ms) for one ordered pair."""
    sim = Simulator(seed=seed)
    deployment = BlockplaneDeployment(
        sim, aws_four_dc_topology(), BlockplaneConfig(f_independent=1),
        obs=obs,
    )
    api_src = deployment.api(source)
    api_dst = deployment.api(destination)
    latencies = []

    def echo_server():
        while True:
            message = yield api_dst.receive(source)
            yield api_dst.send(("ack", message), to=source, payload_bytes=1000)

    def measure():
        for index in range(rounds + warmup):
            start = sim.now
            yield api_src.send(f"ping-{index}", to=destination, payload_bytes=1000)
            yield api_src.receive(destination)
            if index >= warmup:
                latencies.append(sim.now - start)

    sim.spawn(echo_server())
    process = sim.spawn(measure())
    sim.run_until_resolved(process, max_events=100_000_000)
    return sum(latencies) / len(latencies)


def run(
    pairs: Sequence[Tuple[str, str]] = tuple(
        itertools.combinations(AWS_SITES, 2)
    ),
    rounds: int = 20,
    warmup: int = 2,
    seed: int = 0,
    obs=None,
) -> Dict[Tuple[str, str], float]:
    """All six pairs; returns (a, b) → round-trip latency ms."""
    return {
        pair: run_pair(*pair, rounds=rounds, warmup=warmup, seed=seed, obs=obs)
        for pair in pairs
    }


def main(rounds: int = 10, obs=None) -> Dict[Tuple[str, str], float]:
    """Print Figure 6."""
    topology = aws_four_dc_topology()
    results = run(rounds=rounds, obs=obs)
    rows = []
    for (a, b), latency in results.items():
        rtt = topology.rtt_ms(a, b)
        overhead = (latency - rtt) / rtt * 100.0
        rows.append(
            [
                f"{a}{b}",
                fmt_ms(latency),
                str(PAPER_FIG6.get((a, b), "-")),
                f"{rtt:.0f}",
                f"{overhead:.0f}%",
            ]
        )
    print("Figure 6 — send→receive→ack latency per datacenter pair")
    print(
        format_table(
            ["pair", "latency ms", "paper ms", "RTT ms", "overhead"], rows
        )
    )
    return results


if __name__ == "__main__":
    main()
