"""Ablation studies for Blockplane's design choices.

Not figures from the paper — these quantify the design decisions its
text argues for (Sections IV, VI-A, VI-C and the DESIGN.md inventory):

* **read strategies** — the latency price of byzantine-safe reads
  (read-1 vs 2f+1 vs linearizable, Section VI-A);
* **batching** — group commit amortizing PBFT rounds over many small
  commands (Section VI-C);
* **transmission fanout** — shipping each transmission record to more
  destination nodes buys failure masking with negligible latency cost
  because the receiver deduplicates;
* **intra-datacenter latency sensitivity** — how the local-commit
  calibration parameter propagates into wide-area overhead.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.core.batching import Batcher
from repro.core.reads import ReadStrategy
from repro.experiments.report import fmt_ms, format_table
from repro.pbft.quorums import unit_size
from repro.sim.metrics import LatencySeries
from repro.sim.simulator import Simulator
from repro.sim.topology import (
    aws_four_dc_topology,
    single_dc_topology,
    symmetric_topology,
)


def run_read_strategies(
    rounds: int = 50, seed: int = 0
) -> Dict[str, float]:
    """Mean read latency (ms) per strategy on a warm single-DC unit."""
    results: Dict[str, float] = {}
    for strategy in ReadStrategy:
        sim = Simulator(seed=seed)
        deployment = BlockplaneDeployment(
            sim, single_dc_topology("V"), BlockplaneConfig(f_independent=1)
        )
        api = deployment.api("V")
        series = LatencySeries()

        def workload():
            position = yield api.log_commit("warm", payload_bytes=1000)
            yield sim.sleep(5.0)  # let every replica apply
            for _round in range(rounds):
                start = sim.now
                yield api.read(position, strategy)
                series.add(sim.now - start)

        sim.run_until_resolved(sim.spawn(workload()), max_events=50_000_000)
        results[strategy.value] = series.mean
    return results


def run_batching(
    commands: int = 400,
    command_bytes: int = 250,
    max_batch_commands: int = 64,
    seed: int = 0,
) -> Dict[str, float]:
    """Commands/second with and without group commit."""
    def _run(batched: bool) -> float:
        sim = Simulator(seed=seed)
        deployment = BlockplaneDeployment(
            sim, single_dc_topology("V"), BlockplaneConfig(f_independent=1)
        )
        api = deployment.api("V")
        if batched:
            batcher = Batcher(api, max_batch_commands=max_batch_commands)
            futures = [
                batcher.submit(f"cmd{i}", payload_bytes=command_bytes)
                for i in range(commands)
            ]

            def wait():
                yield futures
        else:
            def wait():
                for index in range(commands):
                    yield api.log_commit(
                        f"cmd{index}", payload_bytes=command_bytes
                    )

        sim.run_until_resolved(sim.spawn(wait()), max_events=100_000_000)
        return commands / (sim.now / 1000.0)

    return {
        "unbatched_cmd_per_s": _run(batched=False),
        "batched_cmd_per_s": _run(batched=True),
    }


def run_transmission_fanout(
    fanouts: Sequence[int] = (1, 2, 4),
    rounds: int = 10,
    seed: int = 0,
) -> Dict[int, Dict[str, float]]:
    """Delivery latency and duplicate commits per fanout level."""
    results: Dict[int, Dict[str, float]] = {}
    for fanout in fanouts:
        sim = Simulator(seed=seed)
        deployment = BlockplaneDeployment(
            sim,
            aws_four_dc_topology(),
            BlockplaneConfig(f_independent=1, transmission_fanout=fanout),
        )
        api_c = deployment.api("C")
        api_o = deployment.api("O")
        series = LatencySeries()

        def sender():
            for index in range(rounds):
                start = sim.now
                yield api_c.send(f"m{index}", to="O", payload_bytes=1000)
                yield api_o_received[index]
                series.add(sim.now - start)

        # Simple rendezvous: resolve one future per received message.
        from repro.sim.process import Future

        api_o_received = [Future(sim) for _ in range(rounds)]

        def receive_pump():
            for index in range(rounds):
                yield api_o.receive("C")
                api_o_received[index].resolve(None)

        sim.spawn(receive_pump())
        sim.run_until_resolved(sim.spawn(sender()), max_events=100_000_000)
        log_o = deployment.unit("O").gateway_node().local_log
        received = sum(
            1 for entry in log_o if entry.record_type == "received"
        )
        results[fanout] = {
            "delivery_ms": series.mean,
            "committed_receptions": float(received),
            "duplicates_suppressed": float(
                sim.trace.count("bp.duplicate_reception")
            ),
        }
    return results


def run_intra_dc_sensitivity(
    one_way_values_ms: Sequence[float] = (0.05, 0.18, 0.5, 1.0),
    rounds: int = 20,
    seed: int = 0,
) -> Dict[float, float]:
    """Local-commit latency as a function of intra-DC one-way latency."""
    results: Dict[float, float] = {}
    for one_way in one_way_values_ms:
        sim = Simulator(seed=seed)
        deployment = BlockplaneDeployment(
            sim,
            single_dc_topology("V", intra_dc_one_way_ms=one_way),
            BlockplaneConfig(f_independent=1),
        )
        api = deployment.api("V")
        series = LatencySeries()

        def workload():
            for index in range(rounds):
                start = sim.now
                yield api.log_commit(f"v{index}", payload_bytes=1000)
                series.add(sim.now - start)

        sim.run_until_resolved(sim.spawn(workload()), max_events=50_000_000)
        results[one_way] = series.mean
    return results


def run_fi_scaling(
    fi_values: Sequence[int] = (1, 2, 3),
    rounds: int = 10,
    seed: int = 0,
) -> Dict[int, Dict[str, float]]:
    """Beyond the paper's Figure 7: byzantine resilience vs wide-area
    latency.

    Compares Blockplane-Paxos (leader at C) with flat wide-area PBFT as
    ``fi`` grows. Blockplane absorbs the extra replicas *inside* each
    datacenter (latency nearly flat); flat PBFT must add wide-area
    replicas (3·fi+1 sites would be needed — we approximate by keeping
    4 sites and noting PBFT cannot even be configured beyond fi=1
    there). This quantifies the paper's argument that the hierarchy
    makes resilience a local, not global, cost.
    """
    from repro.apps.bp_paxos import BlockplanePaxosParticipant, PaxosVerification

    results: Dict[int, Dict[str, float]] = {}
    for fi in fi_values:
        sim = Simulator(seed=seed)
        topology = aws_four_dc_topology()
        deployment = BlockplaneDeployment(
            sim,
            topology,
            BlockplaneConfig(f_independent=fi),
            routines_factory=lambda _name: PaxosVerification(),
        )
        participants = {
            site: BlockplanePaxosParticipant(
                deployment.api(site), topology.site_names
            )
            for site in topology.site_names
        }
        for participant in participants.values():
            participant.start()
        leader = participants["C"]
        sim.run_until_resolved(
            sim.spawn(leader.leader_election()), max_events=200_000_000
        )
        series = LatencySeries()

        def workload():
            for index in range(rounds):
                start = sim.now
                yield leader.replicate(f"v{index}", payload_bytes=1000)
                series.add(sim.now - start)

        sim.run_until_resolved(sim.spawn(workload()), max_events=400_000_000)
        results[fi] = {
            "nodes_per_datacenter": float(unit_size(fi)),
            "blockplane_paxos_ms": series.mean,
        }
    return results


def run_participant_scaling(
    counts: Sequence[int] = (2, 4, 6, 8),
    rtt_ms: float = 60.0,
    rounds: int = 10,
    seed: int = 0,
) -> Dict[int, float]:
    """Beyond the paper: geo-commit latency vs participant count.

    Symmetric topology (every pair ``rtt_ms`` apart), fg = 1. The
    expected flat curve demonstrates the locality argument: commits
    need proofs from fg closest peers regardless of how many
    participants exist, so Blockplane's wide-area cost does not grow
    with the federation size.
    """
    results: Dict[int, float] = {}
    for count in counts:
        sites = [f"P{index}" for index in range(count)]
        sim = Simulator(seed=seed)
        topology = symmetric_topology(sites, rtt_ms)
        deployment = BlockplaneDeployment(
            sim, topology, BlockplaneConfig(f_independent=1, f_geo=1)
        )
        api = deployment.api(sites[0])
        series = LatencySeries()

        def workload():
            for index in range(rounds):
                start = sim.now
                yield api.log_commit(f"v{index}", payload_bytes=1000)
                series.add(sim.now - start)

        sim.run_until_resolved(sim.spawn(workload()), max_events=100_000_000)
        results[count] = series.mean
    return results


def main() -> None:
    """Print all ablations."""
    print("Ablation: read strategies (Section VI-A)")
    reads = run_read_strategies()
    print(
        format_table(
            ["strategy", "latency ms"],
            [[name, fmt_ms(latency)] for name, latency in reads.items()],
        )
    )
    print()
    print("Ablation: batching / group commit (Section VI-C)")
    batching = run_batching()
    print(
        format_table(
            ["mode", "commands/s"],
            [[k, f"{v:.0f}"] for k, v in batching.items()],
        )
    )
    print()
    print("Ablation: transmission fanout")
    fanout = run_transmission_fanout()
    print(
        format_table(
            ["fanout", "delivery ms", "committed", "dups suppressed"],
            [
                [
                    str(level),
                    fmt_ms(metrics["delivery_ms"]),
                    f"{metrics['committed_receptions']:.0f}",
                    f"{metrics['duplicates_suppressed']:.0f}",
                ]
                for level, metrics in fanout.items()
            ],
        )
    )
    print()
    print("Ablation: intra-datacenter latency sensitivity")
    sensitivity = run_intra_dc_sensitivity()
    print(
        format_table(
            ["one-way ms", "local commit ms"],
            [[f"{k:.2f}", fmt_ms(v)] for k, v in sensitivity.items()],
        )
    )
    print()
    print("Ablation: participant scaling (fg=1, symmetric 60 ms RTTs)")
    scaling = run_participant_scaling()
    print(
        format_table(
            ["participants", "geo-commit ms"],
            [[str(k), fmt_ms(v)] for k, v in scaling.items()],
        )
    )
    print()
    print("Ablation: byzantine resilience is a local cost (leader C)")
    fi_scaling = run_fi_scaling()
    print(
        format_table(
            ["fi", "nodes/DC", "blockplane-paxos ms"],
            [
                [
                    str(fi),
                    f"{metrics['nodes_per_datacenter']:.0f}",
                    fmt_ms(metrics["blockplane_paxos_ms"]),
                ]
                for fi, metrics in fi_scaling.items()
            ],
        )
    )


if __name__ == "__main__":
    main()
