"""Table I — the RTT matrix between the four AWS datacenters.

This is an *input* of the evaluation, not a measurement; the driver
prints the matrix the simulation uses so every other experiment can be
interpreted against it.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.report import format_table
from repro.sim.topology import AWS_SITES, aws_four_dc_topology


def run() -> Dict[Tuple[str, str], float]:
    """Return the pairwise RTT matrix in milliseconds."""
    topology = aws_four_dc_topology()
    matrix = {}
    for a in AWS_SITES:
        for b in AWS_SITES:
            matrix[(a, b)] = 0.0 if a == b else topology.rtt_ms(a, b)
    return matrix


def main() -> None:
    """Print Table I."""
    matrix = run()
    rows = [
        [a] + [f"{matrix[(a, b)]:.0f}" for b in AWS_SITES] for a in AWS_SITES
    ]
    print("Table I — average RTTs (ms) between the 4 datacenters")
    print(format_table([""] + list(AWS_SITES), rows))


if __name__ == "__main__":
    main()
