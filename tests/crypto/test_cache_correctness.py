"""Byzantine cache-correctness: the caches must be semantically invisible.

A cache that ever turns a forged signature valid, or keeps vouching for
a rotated key, silently voids every quorum proof in the system. These
tests pin the adversarial cases:

* a forged MAC over an honest ``(signer, digest)`` pair must verify
  False even when the honest triple's True verdict is already cached;
* rotating a key in the :class:`KeyRegistry` must invalidate prior
  cached verdicts (signatures under the old key stop verifying);
* ``cached_digest`` keyed by identity must agree with ``stable_digest``
  for equal-but-distinct objects — a hit can never change a digest.
"""

import dataclasses

import pytest

from repro.core.records import TransmissionRecord
from repro.crypto.caches import IdentityLRU, caches_enabled, set_caches_enabled
from repro.crypto.digest import (
    cached_digest,
    clear_digest_cache,
    digest_cache_stats,
    stable_digest,
)
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import QuorumProof, Signature, sign, verify


@pytest.fixture(autouse=True)
def _caches_on():
    previous = set_caches_enabled(True)
    clear_digest_cache()
    yield
    set_caches_enabled(previous)


def _registry(nodes=("A-0", "A-1", "A-2", "A-3")) -> KeyRegistry:
    registry = KeyRegistry(seed=11)
    registry.register_all(nodes)
    return registry


class TestForgedSignatureNeverHits:
    def test_forged_mac_fails_after_honest_hit(self):
        registry = _registry()
        digest = stable_digest(("payload", 1))
        honest = sign(registry, "A-0", digest)
        # Prime the cache with the honest verdict — twice, so the second
        # call is a guaranteed cache hit.
        assert verify(registry, honest, digest)
        assert verify(registry, honest, digest)
        forged = Signature(signer="A-0", digest=digest, mac="f" * 64)
        assert verify(registry, forged, digest) is False
        # And the forgery's False verdict must not poison the honest one.
        assert verify(registry, honest, digest) is True

    def test_signer_substitution_fails(self):
        registry = _registry()
        digest = stable_digest(("payload", 2))
        honest = sign(registry, "A-0", digest)
        assert verify(registry, honest, digest)
        # A byzantine node replays A-0's MAC under its own identity.
        stolen = Signature(signer="A-1", digest=digest, mac=honest.mac)
        assert verify(registry, stolen, digest) is False

    def test_digest_mismatch_fails_regardless_of_cache(self):
        registry = _registry()
        digest = stable_digest(("payload", 3))
        other = stable_digest(("payload", 4))
        honest = sign(registry, "A-0", digest)
        assert verify(registry, honest, digest)
        # Same signature object presented against a different digest.
        assert verify(registry, honest, other) is False

    def test_forged_proof_never_reaches_quorum(self):
        registry = _registry()
        record = TransmissionRecord(
            source="A", destination="B", message=("m", 1),
            source_position=1, prev_position=None,
        )
        digest = record.digest()
        honest = [sign(registry, node, digest) for node in ("A-0", "A-1")]
        # Cache the honest verdicts through a valid proof check.
        assert QuorumProof.build(digest, honest).is_valid(registry, 2)
        forged = [
            Signature(signer="A-0", digest=digest, mac="0" * 64),
            Signature(signer="A-1", digest=digest, mac="1" * 64),
        ]
        assert not QuorumProof.build(digest, forged).is_valid(registry, 2)
        # Mixed: one honest, one forged — below the fi+1 quorum.
        mixed = [honest[0], forged[1]]
        assert not QuorumProof.build(digest, mixed).is_valid(registry, 2)


class TestRegistryMutationInvalidates:
    def test_rotation_invalidates_cached_verdicts(self):
        registry = _registry()
        digest = stable_digest(("payload", 5))
        signature = sign(registry, "A-0", digest)
        assert verify(registry, signature, digest)
        registry.rotate("A-0")
        # The old-key signature must fail even though its True verdict
        # was cached a moment ago.
        assert verify(registry, signature, digest) is False
        # A fresh signature under the rotated key verifies.
        renewed = sign(registry, "A-0", digest)
        assert verify(registry, renewed, digest) is True

    def test_rotation_of_one_key_invalidates_cache_not_other_keys(self):
        registry = _registry()
        digest = stable_digest(("payload", 6))
        sig_other = sign(registry, "A-1", digest)
        assert verify(registry, sig_other, digest)
        registry.rotate("A-0")
        # A-1's key is untouched; recomputation (post-invalidation) must
        # reach the same verdict.
        assert verify(registry, sig_other, digest) is True

    def test_registering_new_node_keeps_verdicts_correct(self):
        registry = _registry(("A-0",))
        digest = stable_digest(("payload", 7))
        signature = sign(registry, "A-0", digest)
        assert verify(registry, signature, digest)
        registry.register("B-0")
        assert verify(registry, signature, digest) is True
        assert verify(registry, sign(registry, "B-0", digest), digest)

    def test_rotate_unknown_node_raises(self):
        from repro.errors import CryptoError

        registry = _registry(("A-0",))
        with pytest.raises(CryptoError):
            registry.rotate("ghost")

    def test_negative_verdicts_not_served_across_registration(self):
        """A signature that failed because the signer was unknown must
        verify once the signer is registered (negative results are not
        cached across registry changes)."""
        registry = _registry(("A-0",))
        digest = stable_digest(("payload", 8))
        ghost = Signature(signer="B-0", digest=digest, mac="a" * 64)
        assert verify(registry, ghost, digest) is False
        secret = registry.register("B-0")
        import hashlib
        import hmac as hmac_mod

        mac = hmac_mod.new(secret, digest.encode(), hashlib.sha256).hexdigest()
        real = Signature(signer="B-0", digest=digest, mac=mac)
        assert verify(registry, real, digest) is True


class TestDigestMemoAgreement:
    def test_equal_but_distinct_objects_agree_with_stable_digest(self):
        # Built dynamically so the compiler cannot intern one object.
        make = lambda: ("x", tuple(range(1, 4)), "tail")
        value_a, value_b = make(), make()
        assert value_a == value_b and value_a is not value_b
        assert cached_digest(value_a) == stable_digest(value_a)
        # A cached hit for value_a must not leak into distinct value_b.
        assert cached_digest(value_b) == stable_digest(value_b)
        assert cached_digest(value_a) == cached_digest(value_b)

    def test_equal_but_distinct_records_agree(self):
        make = lambda: TransmissionRecord(
            source="A", destination="B", message=("m", (1, 2)),
            source_position=3, prev_position=2,
        )
        record_a, record_b = make(), make()
        assert record_a is not record_b
        assert record_a.digest() == record_b.digest()

    def test_hash_equal_values_digest_differently(self):
        """1 == True == 1.0 hash-equal but canonicalize differently —
        the memo must never conflate them (identity keying)."""
        assert cached_digest(1) != cached_digest(True)
        assert cached_digest((1,)) == stable_digest((1,))
        assert cached_digest((True,)) == stable_digest((True,))
        assert cached_digest((1,)) != cached_digest((True,))

    def test_mutable_values_bypass_the_memo(self):
        clear_digest_cache()
        value = {"k": [1, 2]}
        before = digest_cache_stats()
        first = cached_digest(value)
        value["k"].append(3)
        second = cached_digest(value)
        after = digest_cache_stats()
        assert first != second  # recomputed, not served stale
        assert second == stable_digest(value)
        assert after["hits"] == before["hits"]  # never cached

    def test_disabled_caches_bypass_entirely(self):
        set_caches_enabled(False)
        assert not caches_enabled()
        value = ("payload", 9)
        clear_digest_cache()
        assert cached_digest(value) == stable_digest(value)
        assert digest_cache_stats()["size"] == 0

    def test_identity_lru_eviction_keeps_strong_refs(self):
        lru = IdentityLRU(maxsize=2)
        a, b, c = ("a",), ("b",), ("c",)
        lru.store(a, "da")
        lru.store(b, "db")
        assert lru.lookup(a) == "da"
        lru.store(c, "dc")  # evicts b (least recently used)
        assert lru.lookup(b) is None
        assert lru.lookup(a) == "da"
        assert lru.lookup(c) == "dc"
