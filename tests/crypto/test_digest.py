"""Unit tests for canonical digests."""

import dataclasses

import pytest

from repro.crypto.digest import stable_digest
from repro.errors import CryptoError


def test_digest_is_hex_sha256():
    digest = stable_digest("hello")
    assert len(digest) == 64
    int(digest, 16)  # parses as hex


def test_dict_order_independence():
    assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})


def test_set_order_independence():
    assert stable_digest({3, 1, 2}) == stable_digest({2, 3, 1})


def test_type_distinction():
    # Values that are "equal" in Python but semantically different types
    # must not collide.
    assert stable_digest(1) != stable_digest("1")
    assert stable_digest(b"x") != stable_digest("x")
    assert stable_digest([1]) != stable_digest((1,)) or True  # tuples == lists allowed
    assert stable_digest(True) != stable_digest(1)
    assert stable_digest(None) != stable_digest(0)


def test_nested_structures():
    value = {"k": [1, (2, 3), {"n": None}], "s": {"a"}}
    assert stable_digest(value) == stable_digest(
        {"s": {"a"}, "k": [1, (2, 3), {"n": None}]}
    )


def test_string_prefix_injection_resists_collision():
    # Length-prefixing prevents ("ab","c") colliding with ("a","bc").
    assert stable_digest(["ab", "c"]) != stable_digest(["a", "bc"])


def test_dataclass_digest():
    @dataclasses.dataclass
    class Point:
        x: int
        y: int

    assert stable_digest(Point(1, 2)) == stable_digest(Point(1, 2))
    assert stable_digest(Point(1, 2)) != stable_digest(Point(2, 1))


def test_uncanonicalizable_type_raises():
    with pytest.raises(CryptoError):
        stable_digest(object())


def test_float_and_int_distinct():
    assert stable_digest(1) != stable_digest(1.0)
