"""Unit tests for signatures, the key registry, and quorum proofs."""

import pytest

from repro.crypto.digest import stable_digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import (
    QuorumProof,
    Signature,
    collect_signatures,
    sign,
    verify,
)
from repro.errors import CryptoError, InsufficientProofError


@pytest.fixture
def registry():
    reg = KeyRegistry(seed=1)
    reg.register_all(["n0", "n1", "n2", "n3"])
    return reg


def test_sign_verify_roundtrip(registry):
    digest = stable_digest("payload")
    signature = sign(registry, "n0", digest)
    assert verify(registry, signature, digest)


def test_wrong_digest_fails(registry):
    signature = sign(registry, "n0", stable_digest("a"))
    assert not verify(registry, signature, stable_digest("b"))


def test_forged_mac_fails(registry):
    digest = stable_digest("a")
    forged = Signature(signer="n0", digest=digest, mac="00" * 32)
    assert not verify(registry, forged, digest)


def test_unknown_signer_fails_softly(registry):
    digest = stable_digest("a")
    claim = Signature(signer="ghost", digest=digest, mac="00" * 32)
    assert not verify(registry, claim, digest)


def test_impersonation_fails(registry):
    # n1 signing but claiming to be n0: the MAC is keyed by n1's secret,
    # so verification under n0's key fails.
    digest = stable_digest("a")
    real = sign(registry, "n1", digest)
    impersonated = Signature(signer="n0", digest=digest, mac=real.mac)
    assert not verify(registry, impersonated, digest)


def test_registry_is_deterministic():
    a = KeyRegistry(seed=9)
    b = KeyRegistry(seed=9)
    assert a.register("x") == b.register("x")
    assert KeyRegistry(seed=10).register("x") != a.register("x")


def test_registry_unknown_key_raises():
    with pytest.raises(CryptoError):
        KeyRegistry().secret_for("nope")


def test_registry_contains_and_listing(registry):
    assert "n0" in registry
    assert "ghost" not in registry
    assert registry.known_nodes() == ["n0", "n1", "n2", "n3"]


def test_quorum_proof_accepts_enough_signatures(registry):
    digest = stable_digest("value")
    proof = QuorumProof.build(
        digest, collect_signatures(registry, ["n0", "n1"], digest)
    )
    proof.check(registry, required=2)
    assert proof.is_valid(registry, 2)
    assert not proof.is_valid(registry, 3)


def test_quorum_proof_counts_distinct_signers_only(registry):
    digest = stable_digest("value")
    sig = sign(registry, "n0", digest)
    proof = QuorumProof.build(digest, [sig, sig, sig])
    assert not proof.is_valid(registry, 2)


def test_quorum_proof_respects_allowed_signers(registry):
    digest = stable_digest("value")
    proof = QuorumProof.build(
        digest, collect_signatures(registry, ["n0", "n1"], digest)
    )
    # n1 is outside the allowed set (e.g. not a member of the claimed
    # source unit), so only one signature counts.
    assert not proof.is_valid(registry, 2, allowed_signers=["n0", "n2"])


def test_quorum_proof_ignores_invalid_signatures(registry):
    digest = stable_digest("value")
    good = sign(registry, "n0", digest)
    bad = Signature(signer="n1", digest=digest, mac="11" * 32)
    proof = QuorumProof.build(digest, [good, bad])
    with pytest.raises(InsufficientProofError):
        proof.check(registry, required=2)


def test_proof_over_wrong_digest_invalid(registry):
    digest = stable_digest("value")
    other = stable_digest("other")
    proof = QuorumProof.build(
        other, collect_signatures(registry, ["n0", "n1"], digest)
    )
    # signatures cover `digest` but the proof claims `other`
    assert not proof.is_valid(registry, 1)


def test_sizes_are_positive(registry):
    digest = stable_digest("v")
    signature = sign(registry, "n0", digest)
    proof = QuorumProof.build(digest, [signature])
    assert signature.size_bytes() > 0
    assert proof.size_bytes() == signature.size_bytes()
