"""Unit tests for metrics aggregation and tracing."""

import pytest

from repro.sim.metrics import LatencySeries, summarize, throughput_mb_per_s
from repro.sim.trace import Tracer


def test_latency_series_stats():
    series = LatencySeries("test")
    series.extend([1.0, 2.0, 3.0, 4.0])
    assert series.mean == 2.5
    assert series.minimum == 1.0
    assert series.maximum == 4.0
    assert len(series) == 4


def test_percentiles_interpolate():
    series = LatencySeries()
    series.extend([0.0, 10.0])
    assert series.percentile(50) == 5.0
    assert series.percentile(0) == 0.0
    assert series.percentile(100) == 10.0


def test_percentile_out_of_range():
    series = LatencySeries()
    series.add(1.0)
    with pytest.raises(ValueError):
        series.percentile(101)


def test_empty_series_is_zeroes():
    series = LatencySeries()
    assert series.mean == 0.0
    assert series.percentile(99) == 0.0
    assert series.summary()["count"] == 0.0


def test_drop_warmup():
    series = LatencySeries()
    series.extend([100.0, 100.0, 1.0, 1.0])
    trimmed = series.drop_warmup(2)
    assert trimmed.mean == 1.0
    assert len(series) == 4  # original untouched


def test_summary_keys():
    summary = summarize([1.0, 2.0, 3.0])
    assert set(summary) == {
        "count", "mean", "stddev", "p50", "p95", "p99", "min", "max",
    }


def test_stddev_sample_formula():
    series = LatencySeries()
    series.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    # Known fixture: population stddev 2.0, sample (n-1) ~2.138.
    assert series.stddev == pytest.approx(2.138, abs=0.001)
    assert series.summary()["stddev"] == series.stddev


def test_stddev_degenerate_cases():
    series = LatencySeries()
    assert series.stddev == 0.0
    series.add(42.0)
    assert series.stddev == 0.0  # fewer than two samples
    series.add(42.0)
    assert series.stddev == 0.0  # identical samples


def test_histogram_buckets():
    series = LatencySeries()
    series.extend([0.5, 1.0, 1.5, 2.0, 10.0])
    # Bounds are inclusive upper edges; the extra bucket is overflow.
    assert series.histogram([1.0, 2.0, 5.0]) == [2, 2, 0, 1]
    assert series.histogram([0.1]) == [0, 5]


def test_histogram_rejects_unsorted_bounds():
    series = LatencySeries()
    series.add(1.0)
    with pytest.raises(ValueError):
        series.histogram([2.0, 1.0])
    with pytest.raises(ValueError):
        series.histogram([1.0, 1.0])


def test_throughput_identity():
    # 100 KB in 1.2 ms -> ~83 MB/s (the paper's Table II fixture).
    assert throughput_mb_per_s(100_000, 1.2) == pytest.approx(83.3, abs=0.1)


def test_throughput_zero_time():
    assert throughput_mb_per_s(1000, 0.0) == 0.0


def test_tracer_records_and_counts():
    tracer = Tracer()
    tracer.record("commit", 1.0, seq=1)
    tracer.record("commit", 2.0, seq=2)
    tracer.record("other", 3.0)
    assert tracer.count("commit") == 2
    assert [r["seq"] for r in tracer.of_kind("commit")] == [1, 2]
    assert tracer.last("commit")["seq"] == 2
    assert tracer.last("missing") is None


def test_tracer_disabled_still_counts():
    tracer = Tracer(enabled=False)
    tracer.record("x", 1.0)
    assert tracer.count("x") == 1
    assert tracer.records == []


def test_tracer_clear():
    tracer = Tracer()
    tracer.record("x", 1.0)
    tracer.clear()
    assert tracer.count("x") == 0
    assert tracer.records == []


def test_tracer_uncapped_by_default():
    tracer = Tracer()
    for index in range(1000):
        tracer.record("x", float(index), seq=index)
    assert len(tracer.records) == 1000
    assert isinstance(tracer.records, list)


def test_tracer_ring_buffer_cap():
    tracer = Tracer(max_records=3)
    for index in range(10):
        tracer.record("x", float(index), seq=index)
    assert len(tracer.records) == 3
    assert [r["seq"] for r in tracer.records] == [7, 8, 9]  # newest kept
    assert tracer.count("x") == 10  # counters see everything
    assert tracer.last("x")["seq"] == 9
    tracer.clear()
    assert len(tracer.records) == 0
