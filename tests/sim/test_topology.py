"""Unit tests for topologies and the Table I matrix."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.topology import (
    AWS_RTT_MS,
    AWS_SITES,
    Topology,
    aws_four_dc_topology,
    single_dc_topology,
    symmetric_topology,
)


def test_aws_topology_matches_table1():
    topology = aws_four_dc_topology()
    assert topology.rtt_ms("C", "O") == 19.0
    assert topology.rtt_ms("C", "V") == 61.0
    assert topology.rtt_ms("C", "I") == 130.0
    assert topology.rtt_ms("O", "V") == 79.0
    assert topology.rtt_ms("O", "I") == 132.0
    assert topology.rtt_ms("V", "I") == 70.0


def test_rtt_is_symmetric():
    topology = aws_four_dc_topology()
    for a in AWS_SITES:
        for b in AWS_SITES:
            assert topology.rtt_ms(a, b) == topology.rtt_ms(b, a)


def test_one_way_is_half_rtt():
    topology = aws_four_dc_topology()
    assert topology.one_way_ms("C", "I") == 65.0


def test_intra_dc_latency():
    topology = aws_four_dc_topology(intra_dc_one_way_ms=0.25)
    assert topology.one_way_ms("C", "C") == 0.25
    assert topology.rtt_ms("C", "C") == 0.5


def test_neighbors_by_distance():
    topology = aws_four_dc_topology()
    assert [name for name, _ in topology.neighbors_by_distance("C")] == [
        "O",
        "V",
        "I",
    ]
    assert [name for name, _ in topology.neighbors_by_distance("V")] == [
        "C",
        "I",
        "O",
    ]


def test_closest_majority_rtt_matches_paper_fig7_expectations():
    topology = aws_four_dc_topology()
    # 4 sites -> majority 3 -> RTT to 2nd-closest peer.
    assert topology.closest_majority_rtt("C") == 61.0
    assert topology.closest_majority_rtt("V") == 70.0
    assert topology.closest_majority_rtt("O") == 79.0
    assert topology.closest_majority_rtt("I") == 130.0


def test_missing_pair_rejected():
    with pytest.raises(ConfigurationError):
        Topology(["A", "B", "C"], {("A", "B"): 10.0})


def test_duplicate_site_rejected():
    with pytest.raises(ConfigurationError):
        Topology(["A", "A"], {})


def test_non_positive_rtt_rejected():
    with pytest.raises(ConfigurationError):
        Topology(["A", "B"], {("A", "B"): 0.0})


def test_unknown_site_lookup_rejected():
    topology = single_dc_topology()
    with pytest.raises(ConfigurationError):
        topology.site("nope")


def test_symmetric_topology_all_pairs_equal():
    topology = symmetric_topology(["A", "B", "C"], 42.0)
    assert topology.rtt_ms("A", "C") == 42.0
    assert topology.rtt_ms("B", "C") == 42.0


def test_single_dc_topology_majority_is_free():
    topology = single_dc_topology()
    assert topology.closest_majority_rtt("DC") == 0.0
