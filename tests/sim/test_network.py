"""Unit tests for the network model: latency, NIC serialization,
drops, tampering, and crash interactions."""

import dataclasses

import pytest

from repro.errors import UnknownNodeError
from repro.sim.network import Network, NetworkOptions
from repro.sim.node import Message, Node
from repro.sim.simulator import Simulator
from repro.sim.topology import aws_four_dc_topology, symmetric_topology


@dataclasses.dataclass
class Probe(Message):
    tag: str = ""


class Recorder(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def handle_probe(self, msg, src):
        self.received.append((self.sim.now, msg.tag, src))


def make_pair(rtt=20.0, options=None):
    sim = Simulator(seed=1)
    network = Network(sim, symmetric_topology(["A", "B"], rtt), options)
    a = Recorder(sim, network, "a1", "A")
    b = Recorder(sim, network, "b1", "B")
    return sim, network, a, b


def test_wide_area_delivery_takes_half_rtt():
    sim, _network, a, b = make_pair(rtt=20.0)
    a.send("b1", Probe(tag="x"))
    sim.run()
    assert len(b.received) == 1
    # one-way 10ms + serialization + receiver processing
    assert 10.0 <= b.received[0][0] <= 10.2


def test_intra_site_delivery_is_fast():
    sim = Simulator(seed=1)
    network = Network(sim, symmetric_topology(["A", "B"], 20.0))
    a1 = Recorder(sim, network, "a1", "A")
    a2 = Recorder(sim, network, "a2", "A")
    a1.send("a2", Probe(tag="x"))
    sim.run()
    assert a2.received[0][0] < 1.0


def test_large_payload_pays_serialization():
    sim, _network, a, b = make_pair(rtt=20.0)
    a.send("b1", Probe(payload_bytes=6_400_000, tag="big"))  # 10ms at 640MB/s
    sim.run()
    assert b.received[0][0] >= 20.0  # 10 propagation + 2x10 NIC


def test_egress_serialization_queues_back_to_back_sends():
    sim, _network, a, b = make_pair(rtt=20.0)
    for index in range(3):
        a.send("b1", Probe(payload_bytes=640_000, tag=str(index)))  # 1ms each
    sim.run()
    times = [t for t, _tag, _src in b.received]
    assert times[1] - times[0] >= 0.9
    assert times[2] - times[1] >= 0.9


def test_ingress_does_not_block_earlier_arrivals_behind_later_sends():
    # A message sent early over a slow link must not reserve the
    # receiver NIC ahead of a later-sent but earlier-arriving message.
    sim = Simulator(seed=1)
    network = Network(sim, aws_four_dc_topology())
    recorder = Recorder(sim, network, "c1", "C")
    far = Recorder(sim, network, "i1", "I")
    near = Recorder(sim, network, "o1", "O")
    far.send("c1", Probe(tag="far"))  # arrives ~65ms
    sim.schedule(30.0, near.send, "c1", Probe(tag="near"))  # arrives ~39.5
    sim.run()
    tags = [tag for _t, tag, _src in recorder.received]
    assert tags == ["near", "far"]
    assert recorder.received[0][0] < 45.0


def test_loopback_send_is_immediate_processing_only():
    sim, _network, a, _b = make_pair()
    a.send("a1", Probe(tag="self"))
    sim.run()
    assert a.received[0][0] <= 0.1


def test_crashed_destination_drops_message():
    sim, _network, a, b = make_pair()
    b.crash()
    a.send("b1", Probe(tag="x"))
    sim.run()
    assert b.received == []


def test_crashed_source_cannot_send():
    sim, network, a, b = make_pair()
    a.crash()
    network.send("a1", "b1", Probe(tag="x"))
    sim.run()
    assert b.received == []


def test_unknown_destination_raises():
    sim, network, a, _b = make_pair()
    with pytest.raises(UnknownNodeError):
        a.send("nope", Probe())


def test_duplicate_registration_rejected():
    sim = Simulator()
    network = Network(sim, symmetric_topology(["A", "B"], 10.0))
    Recorder(sim, network, "a1", "A")
    with pytest.raises(UnknownNodeError):
        Recorder(sim, network, "a1", "A")


def test_drop_filter_blocks_matching_traffic():
    sim, network, a, b = make_pair()
    network.add_drop_filter(lambda src, dst, msg: msg.tag == "bad")
    a.send("b1", Probe(tag="bad"))
    a.send("b1", Probe(tag="good"))
    sim.run()
    assert [tag for _t, tag, _src in b.received] == ["good"]


def test_drop_filter_removal():
    sim, network, a, b = make_pair()
    drop = network.add_drop_filter(lambda *_: True)
    network.remove_drop_filter(drop)
    a.send("b1", Probe(tag="x"))
    sim.run()
    assert len(b.received) == 1


def test_tamper_hook_mutates_messages():
    sim, network, a, b = make_pair()
    network.add_tamper_hook(
        lambda src, dst, msg: Probe(tag="tampered") if msg.tag == "x" else msg
    )
    a.send("b1", Probe(tag="x"))
    sim.run()
    assert b.received[0][1] == "tampered"


def test_tamper_hook_returning_none_swallows():
    sim, network, a, b = make_pair()
    network.add_tamper_hook(lambda *_: None)
    a.send("b1", Probe(tag="x"))
    sim.run()
    assert b.received == []


def test_message_counters():
    sim, network, a, b = make_pair()
    a.send("b1", Probe())
    a.send("b1", Probe())
    sim.run()
    assert network.messages_sent == 2
    assert network.messages_delivered == 2
    assert network.bytes_sent > 0


def test_jitter_adds_bounded_delay():
    options = NetworkOptions(jitter_ms=5.0)
    sim, _network, a, b = make_pair(rtt=20.0, options=options)
    a.send("b1", Probe())
    sim.run()
    assert 10.0 <= b.received[0][0] <= 15.3


def test_nodes_at_site():
    sim = Simulator()
    network = Network(sim, symmetric_topology(["A", "B"], 10.0))
    a1 = Recorder(sim, network, "a1", "A")
    a2 = Recorder(sim, network, "a2", "A")
    Recorder(sim, network, "b1", "B")
    assert set(n.node_id for n in network.nodes_at_site("A")) == {"a1", "a2"}
