"""Fast-path vs legacy scheduler equivalence, and timer-cancellation
hygiene under a macro-shaped load.

The fast-path scheduler (tuple heap + zero-delay ready queue) must fire
events in exactly the same (time, seq) order as the legacy Event heap;
the transport fast path must schedule exactly the same events as the
straight-line implementation. A seeded deployment is therefore
byte-identical across every mode combination — which is what lets
``repro.bench --disable-codec`` hold work constant while timing the
data-plane difference.
"""

import random

import pytest

import repro.bench.macro as macro
from repro.sim.network import set_transport_fast_path
from repro.sim.simulator import Simulator, set_fast_path_enabled


@pytest.fixture
def restore_modes():
    yield
    set_fast_path_enabled(True)
    set_transport_fast_path(True)


def _random_workload(sim: Simulator, trace: list, seed: int) -> None:
    """Schedule a deterministic tangle: mixed delays, zero-delay
    cascades, absolute-time ties, and cancellations."""
    rng = random.Random(seed)

    def fire(tag):
        trace.append((sim.now, tag))
        if rng.random() < 0.4:
            sim.schedule(0.0, fire, tag * 1000 + 1)  # ready-queue cascade
        if rng.random() < 0.3:
            sim.schedule(rng.choice([0.0, 1.0, 2.5]), fire, tag * 1000 + 2)

    cancellable = []
    for i in range(200):
        event = sim.schedule(rng.uniform(0.0, 50.0), fire, i)
        if rng.random() < 0.5:
            cancellable.append(event)
        if rng.random() < 0.2:
            sim.schedule_at(round(rng.uniform(0.0, 50.0)), fire, -i)
    for event in cancellable[::2]:
        event.cancel()


class TestSchedulerModeEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_fire_order_identical_across_modes(self, seed):
        traces = []
        for fast in (True, False):
            sim = Simulator(seed=seed, fast_path=fast)
            trace: list = []
            _random_workload(sim, trace, seed)
            sim.run()
            traces.append(trace)
        assert traces[0] == traces[1]

    def test_run_until_identical_across_modes(self):
        for fast in (True, False):
            sim = Simulator(seed=3, fast_path=fast)
            trace: list = []
            _random_workload(sim, trace, 3)
            sim.run(until=20.0)
            assert sim.now == 20.0

    def test_zero_delay_interleaves_with_same_time_heap_event(self):
        """A schedule_at for the current instant with a smaller seq must
        fire before a later-scheduled zero-delay event, in both modes."""
        for fast in (True, False):
            sim = Simulator(seed=0, fast_path=fast)
            fired = []
            sim.schedule_at(0.0, fired.append, "heap-first")
            sim.schedule(0.0, fired.append, "ready-second")
            sim.run()
            assert fired == ["heap-first", "ready-second"]

    def test_cancelled_ready_event_never_fires(self):
        for fast in (True, False):
            sim = Simulator(seed=0, fast_path=fast)
            fired = []
            event = sim.schedule(0.0, fired.append, "doomed")
            sim.schedule(0.0, fired.append, "kept")
            event.cancel()
            sim.run()
            assert fired == ["kept"]


class TestMacroShapedCancellation:
    """Regression: protocol timers (PBFT watchdogs, daemon retransmits,
    signature-collection deadlines) must be *cancelled* when their work
    completes, and the cancelled population must actually reach the
    compaction sweep — before this, macros fired thousands of dead
    timers and compaction never ran outside synthetic tests."""

    #: Work counters that must agree across scheduler/transport modes.
    _KEYS = (
        "completed_ops",
        "events_processed",
        "messages_sent",
        "virtual_ms",
        "timers_cancelled",
        "heap_compactions",
        "retained_high_water",
    )

    def _sustained(self, monkeypatch, fast: bool) -> dict:
        monkeypatch.setattr(macro, "SUSTAINED_OPS", 300)
        set_fast_path_enabled(fast)
        set_transport_fast_path(fast)
        operation, _ops = macro._make_sustained(seed=11)
        return operation()

    def test_sustained_macro_cancels_and_compacts(
        self, monkeypatch, restore_modes
    ):
        stats = self._sustained(monkeypatch, fast=True)
        # Healthy-path timers (request retries, slot watchdogs, ship
        # retransmits) complete long before they fire; each completion
        # must cancel its timer instead of leaving a guaranteed no-op
        # firing in the heap.
        assert stats["timers_cancelled"] > 100
        # Enough tombstones accumulate between firings that the
        # compaction sweep must trigger under real load, not only in
        # synthetic mass-cancellation tests.
        assert stats["heap_compactions"] > 0

    def test_sustained_macro_identical_across_modes(
        self, monkeypatch, restore_modes
    ):
        fast = self._sustained(monkeypatch, fast=True)
        legacy = self._sustained(monkeypatch, fast=False)
        for key in self._KEYS:
            assert fast[key] == legacy[key], key
