"""Unit tests for the actor base class: dispatch, timers, crash."""

import dataclasses

import pytest

from repro.errors import ProtocolError
from repro.sim.network import Network
from repro.sim.node import Message, Node
from repro.sim.simulator import Simulator
from repro.sim.topology import symmetric_topology


@dataclasses.dataclass
class Ping(Message):
    n: int = 0


@dataclasses.dataclass
class WeirdCamelCase(Message):
    pass


class Server(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pings = []
        self.weird = 0

    def handle_ping(self, msg, src):
        self.pings.append((msg.n, src))

    def handle_weird_camel_case(self, msg, src):
        self.weird += 1


def make_env():
    sim = Simulator()
    network = Network(sim, symmetric_topology(["A", "B"], 10.0))
    a = Server(sim, network, "a", "A")
    b = Server(sim, network, "b", "B")
    return sim, network, a, b


def test_kind_defaults_to_snake_case_class_name():
    assert Ping.kind == "ping"
    assert WeirdCamelCase.kind == "weird_camel_case"


def test_dispatch_to_handler():
    sim, _network, a, b = make_env()
    a.send("b", Ping(n=3))
    sim.run()
    assert b.pings == [(3, "a")]


def test_camel_case_dispatch():
    sim, _network, a, b = make_env()
    a.send("b", WeirdCamelCase())
    sim.run()
    assert b.weird == 1


def test_unknown_message_kind_raises():
    @dataclasses.dataclass
    class Unhandled(Message):
        pass

    sim, _network, a, b = make_env()
    a.send("b", Unhandled())
    with pytest.raises(ProtocolError):
        sim.run()


def test_broadcast_skips_self():
    sim, _network, a, b = make_env()
    a.send = a.send  # no-op; use broadcast
    a.broadcast(["a", "b"], Ping(n=1))
    sim.run()
    assert a.pings == []
    assert b.pings == [(1, "a")]


def test_timer_fires():
    sim, _network, a, _b = make_env()
    fired = []
    a.set_timer(5.0, fired.append, "tick")
    sim.run()
    assert fired == ["tick"]
    assert sim.now == 5.0


def test_timer_suppressed_while_crashed():
    sim, _network, a, _b = make_env()
    fired = []
    a.set_timer(5.0, fired.append, "tick")
    a.crash()
    sim.run()
    assert fired == []


def test_crash_blocks_receive_and_send():
    sim, _network, a, b = make_env()
    b.crash()
    a.send("b", Ping(n=1))
    sim.run()
    assert b.pings == []
    b.recover()
    a.send("b", Ping(n=2))
    sim.run()
    assert b.pings == [(2, "a")]


def test_recover_hook_called():
    sim, _network, a, _b = make_env()
    calls = []
    a.on_recover = lambda: calls.append(True)
    a.crash()
    a.recover()
    assert calls == [True]


def test_crash_recover_traced():
    sim, _network, a, _b = make_env()
    a.crash()
    a.recover()
    assert sim.trace.count("node.crash") == 1
    assert sim.trace.count("node.recover") == 1
