"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]
    assert sim.now == 5.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for index in range(10):
        sim.schedule(1.0, fired.append, index)
    sim.run()
    assert fired == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_run_until_advances_clock_without_firing_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "later")
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == ["later"]


def test_run_max_events_bound():
    sim = Simulator()
    fired = []
    for index in range(100):
        sim.schedule(float(index), fired.append, index)
    sim.run(max_events=10)
    assert len(fired) == 10


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_seeded_rng_is_deterministic():
    values_a = [Simulator(seed=7).rng.random() for _ in range(3)]
    values_b = [Simulator(seed=7).rng.random() for _ in range(3)]
    assert values_a == values_b


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    event.cancel()
    assert sim.pending_events == 1


def test_run_until_resolved_raises_on_drained_heap():
    from repro.sim.process import Future

    sim = Simulator()
    future = Future(sim)
    with pytest.raises(SimulationError):
        sim.run_until_resolved(future)
