"""Unit tests for the fault injector."""

import dataclasses

from repro.sim.faults import FaultInjector
from repro.sim.network import Network
from repro.sim.node import Message, Node
from repro.sim.simulator import Simulator
from repro.sim.topology import symmetric_topology


@dataclasses.dataclass
class Tick(Message):
    n: int = 0


class Counter(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seen = []

    def handle_tick(self, msg, src):
        self.seen.append(msg.n)


def make_env():
    sim = Simulator(seed=3)
    network = Network(sim, symmetric_topology(["A", "B"], 10.0))
    a = Counter(sim, network, "a", "A")
    b = Counter(sim, network, "b", "B")
    a2 = Counter(sim, network, "a2", "A")
    injector = FaultInjector(sim, network)
    return sim, network, injector, a, b, a2


def test_crash_and_recover_at():
    sim, _n, injector, a, b, _a2 = make_env()
    injector.crash_at(b, 5.0)
    injector.recover_at(b, 20.0)
    sim.schedule(10.0, a.send, "b", Tick(n=1))  # dropped: b down
    sim.schedule(25.0, a.send, "b", Tick(n=2))  # delivered
    sim.run()
    assert b.seen == [2]


def test_crash_site_at_takes_down_all_nodes():
    sim, _n, injector, a, _b, a2 = make_env()
    injector.crash_site_at("A", 1.0)
    sim.run()
    assert a.crashed and a2.crashed


def test_recover_site_at():
    sim, _n, injector, a, _b, a2 = make_env()
    injector.crash_site_at("A", 1.0)
    injector.recover_site_at("A", 2.0)
    sim.run()
    assert not a.crashed and not a2.crashed


def test_partition_window():
    sim, _n, injector, a, b, _a2 = make_env()
    injector.partition(["a"], ["b"], start=5.0, end=15.0)
    sim.schedule(0.0, a.send, "b", Tick(n=1))   # before: delivered
    sim.schedule(7.0, a.send, "b", Tick(n=2))   # during: dropped
    sim.schedule(20.0, a.send, "b", Tick(n=3))  # after: delivered
    sim.run()
    assert b.seen == [1, 3]


def test_partition_is_bidirectional():
    sim, _n, injector, a, b, _a2 = make_env()
    injector.partition(["a"], ["b"], start=0.0)
    b.send("a", Tick(n=9))
    sim.run()
    assert a.seen == []


def test_drop_matching_predicate():
    sim, _n, injector, a, b, _a2 = make_env()
    injector.drop_matching(lambda src, dst, msg: msg.n % 2 == 0)
    for n in range(4):
        a.send("b", Tick(n=n))
    sim.run()
    assert b.seen == [1, 3]


def test_probabilistic_drop_is_seeded():
    def run_once():
        sim, _n, injector, a, b, _a2 = make_env()
        injector.drop_probabilistically(0.5)
        for n in range(20):
            a.send("b", Tick(n=n))
        sim.run()
        return b.seen

    assert run_once() == run_once()
    seen = run_once()
    assert 0 < len(seen) < 20


def test_tamper_matching():
    sim, _n, injector, a, b, _a2 = make_env()
    injector.tamper_matching(
        lambda src, dst, msg: msg.n == 1, lambda msg: Tick(n=99)
    )
    a.send("b", Tick(n=1))
    a.send("b", Tick(n=2))
    sim.run()
    assert sorted(b.seen) == [2, 99]


def test_heal_removes_hooks():
    sim, network, injector, a, b, _a2 = make_env()
    hook = injector.drop_matching(lambda *_: True)
    injector.heal(hook)
    a.send("b", Tick(n=1))
    sim.run()
    assert b.seen == [1]


def test_windowed_hooks_uninstall_themselves():
    sim, _n, injector, a, b, _a2 = make_env()
    injector.partition(["a"], ["b"], start=5.0, end=15.0)
    injector.drop_probabilistically(0.9, start=5.0, end=20.0)
    injector.tamper_matching(
        lambda src, dst, msg: True,
        lambda msg: Tick(n=-1),
        start=5.0,
        end=25.0,
    )
    assert injector.active_hooks() == 3
    sim.schedule(30.0, a.send, "b", Tick(n=7))
    sim.run()
    # All windows closed: every hook removed itself, and late traffic
    # flows untouched.
    assert injector.active_hooks() == 0
    assert b.seen == [7]


def test_unbounded_hooks_stay_installed():
    sim, _n, injector, a, b, _a2 = make_env()
    injector.drop_matching(lambda *_: True)
    a.send("b", Tick(n=1))
    sim.run()
    sim.schedule(1_000.0, a.send, "b", Tick(n=2))
    sim.run()
    assert injector.active_hooks() == 1
    assert b.seen == []
