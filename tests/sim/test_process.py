"""Unit tests for generator-based processes and futures."""

import pytest

from repro.errors import ProcessError
from repro.sim.process import Future, all_of, any_of
from repro.sim.simulator import Simulator


def test_future_resolve_and_result():
    sim = Simulator()
    future = Future(sim)
    assert not future.resolved
    future.resolve(41)
    assert future.resolved
    assert future.result() == 41


def test_future_double_resolve_rejected():
    sim = Simulator()
    future = Future(sim)
    future.resolve(1)
    with pytest.raises(ProcessError):
        future.resolve(2)


def test_future_result_before_resolution_raises():
    sim = Simulator()
    with pytest.raises(ProcessError):
        Future(sim).result()


def test_future_rejection_propagates():
    sim = Simulator()
    future = Future(sim)
    future.reject(ValueError("boom"))
    with pytest.raises(ValueError):
        future.result()


def test_callbacks_fire_immediately_when_already_done():
    sim = Simulator()
    future = Future(sim)
    future.resolve("x")
    seen = []
    future.add_done_callback(lambda f: seen.append(f.result()))
    assert seen == ["x"]


def test_process_sleep_and_return_value():
    sim = Simulator()

    def proc():
        yield sim.sleep(3.0)
        yield sim.sleep(2.0)
        return "done"

    process = sim.spawn(proc())
    sim.run()
    assert process.result() == "done"
    assert sim.now == 5.0


def test_process_yield_number_sleeps():
    sim = Simulator()

    def proc():
        yield 7.5
        return sim.now

    process = sim.spawn(proc())
    sim.run()
    assert process.result() == 7.5


def test_process_yield_none_yields_to_scheduler():
    sim = Simulator()
    order = []

    def proc_a():
        order.append("a1")
        yield None
        order.append("a2")

    def proc_b():
        order.append("b1")
        yield None
        order.append("b2")

    sim.spawn(proc_a())
    sim.spawn(proc_b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]


def test_process_waits_on_future():
    sim = Simulator()
    gate = Future(sim)

    def proc():
        value = yield gate
        return value * 2

    process = sim.spawn(proc())
    sim.schedule(4.0, gate.resolve, 21)
    sim.run()
    assert process.result() == 42


def test_process_yield_list_waits_for_all():
    sim = Simulator()

    def proc():
        values = yield [sim.sleep(1.0), sim.sleep(5.0), sim.sleep(3.0)]
        return (sim.now, len(values))

    process = sim.spawn(proc())
    sim.run()
    assert process.result() == (5.0, 3)


def test_process_subgenerator_delegation():
    sim = Simulator()

    def child(n):
        yield sim.sleep(1.0)
        return n + 1

    def parent():
        value = yield child(1)
        value = yield child(value)
        return value

    process = sim.spawn(parent())
    sim.run()
    assert process.result() == 3


def test_process_exception_rejects_its_future():
    sim = Simulator()

    def proc():
        yield sim.sleep(1.0)
        raise RuntimeError("inside")

    process = sim.spawn(proc())
    sim.run()
    assert isinstance(process.exception, RuntimeError)


def test_exception_thrown_into_waiting_process():
    sim = Simulator()
    gate = Future(sim)
    caught = []

    def proc():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(proc())
    sim.schedule(1.0, gate.reject, ValueError("rejected"))
    sim.run()
    assert caught == ["rejected"]


def test_process_bad_yield_type_raises():
    sim = Simulator()

    def proc():
        yield object()

    process = sim.spawn(proc())
    sim.run()
    assert isinstance(process.exception, ProcessError)


def test_spawn_non_generator_raises():
    sim = Simulator()
    with pytest.raises(ProcessError):
        sim.spawn(42)


def test_all_of_empty_resolves_immediately():
    sim = Simulator()
    combined = all_of(sim, [])
    assert combined.result() == []


def test_all_of_rejects_on_first_failure():
    sim = Simulator()
    good = Future(sim)
    bad = Future(sim)
    combined = all_of(sim, [good, bad])
    bad.reject(KeyError("nope"))
    assert combined.resolved
    with pytest.raises(KeyError):
        combined.result()


def test_any_of_returns_first_winner_index():
    sim = Simulator()

    def proc():
        result = yield any_of(sim, [sim.sleep(9.0), sim.sleep(2.0)])
        return result

    process = sim.spawn(proc())
    sim.run()
    index, _value = process.result()
    assert index == 1
    assert sim.now == 9.0  # the loser still fires later


def test_any_of_requires_at_least_one():
    sim = Simulator()
    with pytest.raises(ProcessError):
        any_of(sim, [])
