"""Simulator heap hygiene: O(1) pending counts and tombstone compaction."""

from repro.sim.simulator import Simulator


def _noop() -> None:
    pass


class TestPendingEventsCounter:
    def test_pending_events_tracks_schedule_and_cancel(self):
        sim = Simulator(seed=1)
        events = [sim.schedule(float(i), _noop) for i in range(10)]
        assert sim.pending_events == 10
        events[3].cancel()
        events[7].cancel()
        assert sim.pending_events == 8
        # Double-cancel is a no-op on the counters.
        events[3].cancel()
        assert sim.pending_events == 8

    def test_pending_events_drains_to_zero(self):
        sim = Simulator(seed=1)
        for i in range(25):
            sim.schedule(float(i), _noop)
        sim.run()
        assert sim.pending_events == 0
        assert sim.heap_size == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator(seed=1)
        event = sim.schedule(1.0, _noop)
        keeper = sim.schedule(2.0, _noop)
        sim.run()
        # Firing cleared ownership; a late cancel cannot corrupt counts.
        event.cancel()
        keeper.cancel()
        assert sim.pending_events == 0


class TestTombstoneCompaction:
    def test_mass_cancellation_compacts_heap(self):
        """Cancelling 10k of 10k+1 events must shrink the heap without
        waiting for the pop path to reach the tombstones."""
        sim = Simulator(seed=1)
        doomed = [sim.schedule(1_000.0 + i, _noop) for i in range(10_000)]
        survivor = sim.schedule(5.0, _noop)
        assert sim.pending_events == 10_001
        for event in doomed:
            event.cancel()
        assert sim.pending_events == 1
        assert sim.compactions >= 1
        # Compaction rebuilt the heap down to the live population plus
        # at most one sub-threshold tail of fresh tombstones.
        assert sim.heap_size < 1 + Simulator.COMPACT_MIN_TOMBSTONES
        fired = []
        sim.schedule_at(6.0, fired.append, "ran")
        sim.run()
        assert fired == ["ran"]
        # The survivor fired; firing detached it from the simulator.
        assert not survivor.cancelled
        assert survivor.owner is None
        assert sim.pending_events == 0

    def test_compaction_preserves_order_and_liveness(self):
        sim = Simulator(seed=1)
        fired = []
        keep = []
        for i in range(2_000):
            event = sim.schedule(float(i), fired.append, i)
            if i % 10 == 0:
                keep.append(i)
            else:
                event.cancel()
        sim.run()
        assert fired == keep

    def test_no_compaction_below_threshold(self):
        sim = Simulator(seed=1)
        events = [sim.schedule(float(i), _noop) for i in range(100)]
        for event in events[: Simulator.COMPACT_MIN_TOMBSTONES - 1]:
            event.cancel()
        assert sim.compactions == 0

    def test_pending_events_is_constant_time(self):
        """The property must not scan the heap: reading it twice around
        a cancellation burst stays consistent with the live counter."""
        sim = Simulator(seed=1)
        events = [sim.schedule(float(i), _noop) for i in range(10_000)]
        for event in events[::2]:
            event.cancel()
        assert sim.pending_events == 5_000
        # After compaction the heap itself is close to the live count;
        # tombstones never exceed half the heap.
        assert sim.heap_size - sim.pending_events <= sim.heap_size / 2

    def test_step_uses_single_pop_path(self):
        """step() must fire exactly the next live event even when the
        heap top is a pile of tombstones."""
        sim = Simulator(seed=1)
        fired = []
        doomed = [sim.schedule(1.0 + i * 0.001, fired.append, -1) for i in range(50)]
        sim.schedule(10.0, fired.append, 1)
        sim.schedule(20.0, fired.append, 2)
        for event in doomed:
            event.cancel()
        assert sim.step() is True
        assert fired == [1]
        assert sim.now == 10.0
        assert sim.step() is True
        assert fired == [1, 2]
        assert sim.step() is False
