"""Tests for trace timeline rendering."""

from repro.sim.timeline import kind_summary, render_summary, render_timeline
from repro.sim.trace import Tracer


def make_tracer():
    tracer = Tracer()
    tracer.record("commit", 1.5, node="a", seq=1)
    tracer.record("send", 2.0, src="a", dst="b")
    tracer.record("commit", 3.25, node="b", seq=2)
    return tracer


def test_timeline_includes_all_records_in_order():
    out = render_timeline(make_tracer())
    lines = out.splitlines()
    assert len(lines) == 3
    assert "commit" in lines[0] and "1.500" in lines[0]
    assert "send" in lines[1]
    assert "seq=2" in lines[2]


def test_timeline_kind_filter():
    out = render_timeline(make_tracer(), kinds=["send"])
    assert out.count("\n") == 0
    assert "src='a'" in out


def test_timeline_time_window():
    out = render_timeline(make_tracer(), start=1.9, end=2.5)
    assert "send" in out
    assert "commit" not in out


def test_timeline_truncation_note():
    tracer = Tracer()
    for index in range(10):
        tracer.record("tick", float(index))
    out = render_timeline(tracer, limit=4)
    assert "6 more record(s) truncated" in out
    assert out.count("tick") == 4


def test_kind_summary_counts():
    assert kind_summary(make_tracer()) == {"commit": 2, "send": 1}


def test_render_summary_sorted_by_frequency():
    out = render_summary(make_tracer())
    lines = out.splitlines()
    assert lines[0].startswith("commit")
    assert lines[1].startswith("send")


def test_render_summary_empty():
    assert render_summary(Tracer()) == "(no trace records)"
