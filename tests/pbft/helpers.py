"""Builders for PBFT test groups."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.pbft.config import PBFTConfig
from repro.pbft.replica import PBFTReplica
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.topology import single_dc_topology


def make_group(
    n: int = 4,
    seed: int = 1,
    config: Optional[PBFTConfig] = None,
    overrides: Optional[Dict[int, Type[PBFTReplica]]] = None,
    verifier=None,
    override_kwargs: Optional[dict] = None,
    obs=None,
):
    """Build one single-datacenter PBFT group.

    Returns:
        (sim, list of replicas). Replica i has id ``r{i}``; r0 leads
        view 0. When ``obs`` is given every replica records into it
        (flight-recorder / forensics tests).
    """
    sim = Simulator(seed=seed)
    if obs is not None and obs.enabled:
        obs.bind_clock(sim)
    network = Network(sim, single_dc_topology("DC"))
    peers = [f"r{i}" for i in range(n)]
    replicas: List[PBFTReplica] = []
    for index, peer in enumerate(peers):
        cls = (overrides or {}).get(index, PBFTReplica)
        kwargs = dict(override_kwargs or {}) if cls is not PBFTReplica else {}
        if obs is not None:
            kwargs["obs"] = obs
        replicas.append(
            cls(
                sim,
                network,
                peer,
                "DC",
                list(peers),
                config=config or PBFTConfig(),
                verifier=verifier,
                **kwargs,
            )
        )
    return sim, replicas


def commit_values(sim, replica, values, payload_bytes=100):
    """Commit several values sequentially from one replica."""
    results = []

    def work():
        for value in values:
            entry = yield replica.submit(value, payload_bytes=payload_bytes)
            results.append(entry)

    process = sim.spawn(work())
    sim.run_until_resolved(process, max_events=10_000_000)
    return results


def assert_honest_agreement(replicas, expected_length=None):
    """All honest replicas executed identical logs."""
    logs = [
        [(e.seq, e.value) for e in replica.executed_entries]
        for replica in replicas
    ]
    for log in logs[1:]:
        assert log == logs[0]
    if expected_length is not None:
        assert len(logs[0]) == expected_length
