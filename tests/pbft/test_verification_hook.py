"""Tests for Blockplane's PBFT modifications: record types and the
verification-routine hook between prepared and commit."""

import pytest

from repro.errors import VerificationFailed
from tests.pbft.helpers import assert_honest_agreement, commit_values, make_group


def test_verifier_accepting_everything_commits_normally():
    sim, replicas = make_group(verifier=lambda v, rt, m: True)
    entries = commit_values(sim, replicas[0], ["a", "b"])
    assert [e.value for e in entries] == ["a", "b"]


def test_verifier_rejection_prevents_commit():
    sim, replicas = make_group(verifier=lambda v, rt, m: v != "bad")
    future = replicas[0].submit("bad")
    with pytest.raises(VerificationFailed):
        sim.run_until_resolved(future, max_events=1_000_000)


def test_honest_leader_prevalidates_and_rejects_quickly():
    sim, replicas = make_group(verifier=lambda v, rt, m: v != "bad")
    future = replicas[0].submit("bad")
    sim.run(until=10.0)
    assert future.resolved
    assert isinstance(future.exception, VerificationFailed)
    # No sequence number was burned: a good value still lands at seq 1.
    entries = commit_values(sim, replicas[0], ["good"])
    assert entries[0].seq == 1


def test_verifier_sees_record_type_and_meta():
    seen = []

    def verifier(value, record_type, meta):
        seen.append((value, record_type, meta))
        return True

    sim, replicas = make_group(verifier=verifier)
    future = replicas[0].submit(
        "v", record_type="communication", meta={"destination": "X"}
    )
    sim.run_until_resolved(future)
    assert ("v", "communication", {"destination": "X"}) in seen


def test_crashing_verifier_counts_as_rejection():
    def verifier(value, record_type, meta):
        if value == "explode":
            raise RuntimeError("verifier bug")
        return True

    sim, replicas = make_group(verifier=verifier)
    future = replicas[0].submit("explode")
    with pytest.raises((VerificationFailed, Exception)):
        sim.run_until_resolved(future, max_events=500_000)


def test_deferred_verification_retries_after_progress():
    # A verifier that defers until an earlier value has executed models
    # Blockplane's chain-ordered receive verification.
    class ChainVerifier:
        def __init__(self, replica_box):
            self.replica_box = replica_box

        def __call__(self, value, record_type, meta):
            replica = self.replica_box[0]
            if value == "second":
                done = [e.value for e in replica.executed_entries]
                if "first" not in done:
                    return None  # defer
            return True

    boxes = []
    sim, replicas = make_group()
    for replica in replicas:
        box = [replica]
        boxes.append(box)
        replica.verifier = ChainVerifier(box)
    f1 = replicas[0].submit("first")
    f2 = replicas[0].submit("second")
    sim.run_until_resolved(f2, max_events=5_000_000)
    sim.run(until=sim.now + 10)
    assert_honest_agreement(replicas, expected_length=2)
    values = [e.value for e in replicas[1].executed_entries]
    assert values == ["first", "second"]


def test_noop_record_type_always_passes_verification():
    sim, replicas = make_group(verifier=lambda v, rt, m: False)
    # Everything is rejected by this verifier except protocol no-ops;
    # the group must still be able to fill holes after view changes.
    from repro.pbft.replica import NOOP_RECORD_TYPE

    assert replicas[0]._verify_slot(
        type("S", (), {"record_type": NOOP_RECORD_TYPE, "value": None, "meta": None})()
    ) is True
