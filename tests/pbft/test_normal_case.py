"""PBFT normal-case tests: ordering, agreement, replies, quorums."""

import pytest

from repro.errors import ProtocolError
from repro.pbft.replica import PBFTReplica
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.topology import single_dc_topology

from tests.pbft.helpers import assert_honest_agreement, commit_values, make_group


def test_single_commit_executes_on_all_replicas():
    sim, replicas = make_group()
    entries = commit_values(sim, replicas[0], ["v1"])
    assert entries[0].seq == 1
    assert entries[0].value == "v1"
    sim.run(until=sim.now + 10)
    assert_honest_agreement(replicas, expected_length=1)


def test_sequential_commits_are_ordered():
    sim, replicas = make_group()
    entries = commit_values(sim, replicas[0], [f"v{i}" for i in range(10)])
    assert [e.seq for e in entries] == list(range(1, 11))
    sim.run(until=sim.now + 10)
    assert_honest_agreement(replicas, expected_length=10)


def test_submit_from_non_leader_forwards_to_leader():
    sim, replicas = make_group()
    entries = commit_values(sim, replicas[2], ["from-follower"])
    assert entries[0].value == "from-follower"
    sim.run(until=sim.now + 10)
    assert_honest_agreement(replicas, expected_length=1)


def test_concurrent_submissions_all_commit():
    sim, replicas = make_group()
    futures = [
        replicas[0].submit(f"a{i}") for i in range(5)
    ] + [replicas[1].submit(f"b{i}") for i in range(5)]
    for future in futures:
        sim.run_until_resolved(future, max_events=10_000_000)
    sim.run(until=sim.now + 10)
    assert_honest_agreement(replicas, expected_length=10)
    values = {e.value for e in replicas[0].executed_entries}
    assert values == {f"a{i}" for i in range(5)} | {f"b{i}" for i in range(5)}


def test_group_size_arithmetic():
    _sim, replicas = make_group(n=7)
    assert replicas[0].n == 7
    assert replicas[0].f == 2


def test_too_small_group_rejected():
    sim = Simulator()
    network = Network(sim, single_dc_topology("DC"))
    with pytest.raises(ProtocolError):
        PBFTReplica(sim, network, "a", "DC", ["a", "b", "c"])


def test_node_missing_from_peer_list_rejected():
    sim = Simulator()
    network = Network(sim, single_dc_topology("DC"))
    with pytest.raises(ProtocolError):
        PBFTReplica(sim, network, "x", "DC", ["a", "b", "c", "d"])


def test_commit_survives_f_crashed_replicas():
    sim, replicas = make_group()
    replicas[3].crash()  # one of four may fail
    entries = commit_values(sim, replicas[0], ["v1", "v2"])
    assert len(entries) == 2
    live = replicas[:3]
    sim.run(until=sim.now + 10)
    assert_honest_agreement(live, expected_length=2)


def test_commit_stalls_beyond_f_crashes_until_recovery():
    sim, replicas = make_group(
        config=None,
    )
    replicas[2].crash()
    replicas[3].crash()  # two of four: beyond f=1
    future = replicas[0].submit("stuck")
    sim.run(until=30.0)
    assert not future.resolved
    replicas[2].recover()
    sim.run_until_resolved(future, max_events=10_000_000)
    assert future.result().value == "stuck"


def test_record_type_annotation_carried_through():
    sim, replicas = make_group()
    future = replicas[0].submit("msg", record_type="communication",
                                meta={"destination": "B"})
    entry = sim.run_until_resolved(future)
    assert entry.record_type == "communication"
    assert entry.meta == {"destination": "B"}


def test_duplicate_request_not_committed_twice():
    sim, replicas = make_group()
    commit_values(sim, replicas[0], ["v1"])
    # Re-dispatch the same request id (simulating a client retry).
    replicas[0]._dispatch_request(("r0", 1))
    sim.run(until=sim.now + 20)
    assert_honest_agreement(replicas, expected_length=1)


def test_execution_chain_digests_agree():
    sim, replicas = make_group()
    commit_values(sim, replicas[0], ["a", "b", "c"])
    sim.run(until=sim.now + 10)
    chains = {replica._exec_chain for replica in replicas}
    assert len(chains) == 1
