"""Regression tests for bugs first caught by the chaos engine.

Each test pins one fix that was found by running seeded fault
schedules against the full middleware; the scenarios here reduce them
to the smallest PBFT-level reproduction.
"""

from repro.crypto.digest import stable_digest
from repro.pbft.byzantine import SilentReplica
from repro.pbft.config import PBFTConfig
from repro.pbft.messages import (
    RECORD_TYPE_COMMIT,
    CatchUpResponse,
    CommittedEntry,
    PrePrepare,
    Prepare,
)

from tests.pbft.helpers import commit_values, make_group

FAST = PBFTConfig(request_timeout_ms=20.0, view_change_timeout_ms=40.0)


# ----------------------------------------------------------------------
# Digest-aware vote tallies
# ----------------------------------------------------------------------
def _pre_prepare(value, seq=1, request_id=("c", 1)):
    return PrePrepare(
        view=0,
        seq=seq,
        digest=stable_digest((value, RECORD_TYPE_COMMIT, request_id)),
        request_id=request_id,
        value=value,
    )


def test_prepares_for_a_different_digest_do_not_count():
    sim, replicas = make_group()
    replica = replicas[1]
    # Early votes for a digest the leader will NOT propose (byzantine
    # peers coordinating on a forged value).
    for voter in ("r2", "r3"):
        replica.handle_prepare(
            Prepare(view=0, seq=1, digest="forged", replica=voter), voter
        )
    replica.handle_pre_prepare(_pre_prepare("real"), "r0")
    slot = replica.slots[1]
    # Own vote for the real digest + two forged votes: no quorum, no
    # commit. A count-only tally would have seen 3 votes and committed.
    assert not slot.commit_sent
    # Matching votes for the fixed digest do complete the quorum.
    for voter in ("r2", "r3"):
        replica.handle_prepare(
            Prepare(view=0, seq=1, digest=slot.digest, replica=voter), voter
        )
    assert slot.commit_sent


# ----------------------------------------------------------------------
# Catch-up preserves request identity
# ----------------------------------------------------------------------
def test_catch_up_adoption_records_the_request_id():
    sim, replicas = make_group()
    laggard = replicas[3]
    entry = CommittedEntry(
        seq=1, view=0, value="v", record_type=RECORD_TYPE_COMMIT,
        request_id=("client", 5),
    )
    for peer in ("r0", "r1"):  # f + 1 matching vouchers
        laggard.handle_catch_up_response(
            CatchUpResponse(entries=[entry], replica=peer), peer
        )
    assert laggard.last_executed == 1
    # Without the request id, a view-change retry of ("client", 5)
    # would re-execute here while every peer no-ops it — a log fork.
    assert ("client", 5) in laggard._executed_requests


# ----------------------------------------------------------------------
# View-change escalation past a silent byzantine leader
# ----------------------------------------------------------------------
def test_full_vote_quorum_escalates_past_a_silent_leader():
    sim, replicas = make_group(config=FAST, overrides={2: SilentReplica})
    honest = [replicas[0], replicas[1], replicas[3]]
    commit_values(sim, replicas[0], ["before"])
    # All honest members suspect into view 2 — whose leader is the
    # silent r2. None of them has pending work, so only the quorum
    # clause can unstick the group.
    for replica in honest:
        replica._start_view_change(2)
    sim.run(until=sim.now + 500)
    assert max(replica.view for replica in honest) > 2
    entry = sim.run_until_resolved(
        replicas[0].submit("after"), max_events=20_000_000
    )
    assert entry.value == "after"


# ----------------------------------------------------------------------
# Recovery while a view change is in flight
# ----------------------------------------------------------------------
def test_replica_recovered_mid_view_change_rejoins_and_executes():
    sim, replicas = make_group(config=FAST)
    r0, r1, r2, r3 = replicas
    commit_values(sim, r0, ["a"])
    # r3 votes for view 1, then crashes before the view installs.
    r3._start_view_change(1)
    sim.run(until=sim.now + 5)
    r3.crash()
    # The remaining replicas complete the view change while r3 is dark:
    # its pre-crash vote plus these two give r1 (leader of view 1) the
    # 2f+1 it needs, and no new entries commit in the meantime.
    r1._start_view_change(1)
    r2._start_view_change(1)
    sim.run(until=sim.now + 200)
    assert r1.view == 1 and r1.is_leader
    # r3 recovers into a world where its catch-up probe finds nothing
    # new; before the fix it stayed in_view_change forever and ignored
    # all view-1 traffic.
    r3.recover()
    sim.run(until=sim.now + 5)
    commit_values(sim, r1, ["b"])
    sim.run(until=sim.now + 1_000)
    assert r3.last_executed >= 2
    assert not r3.in_view_change
    assert [e.value for e in r3.executed_entries][:2] == ["a", "b"]
