"""PBFT byzantine-behaviour tests: safety with f arbitrary nodes.

These validate the claims Blockplane inherits from PBFT: with at most
``f`` byzantine unit members, honest replicas never diverge and
progress continues.
"""

from repro.pbft.byzantine import (
    BogusProposer,
    EquivocatingLeader,
    SilentReplica,
    TamperingVoter,
)
from repro.pbft.config import PBFTConfig
from tests.pbft.helpers import assert_honest_agreement, commit_values, make_group

FAST = PBFTConfig(request_timeout_ms=20.0, view_change_timeout_ms=40.0)


def test_silent_replica_does_not_block_commit():
    sim, replicas = make_group(overrides={3: SilentReplica})
    commit_values(sim, replicas[0], ["a", "b"])
    sim.run(until=sim.now + 10)
    assert_honest_agreement(replicas[:3], expected_length=2)
    assert replicas[3].executed_entries == []


def test_equivocating_leader_cannot_split_honest_replicas():
    sim, replicas = make_group(
        overrides={0: EquivocatingLeader},
        config=FAST,
        override_kwargs={"forged_value": "EVIL"},
    )
    # Submit through a follower so the byzantine leader orders it.
    future = replicas[1].submit("GOOD")
    sim.run(until=500.0, max_events=20_000_000)
    honest = replicas[1:]
    # Safety: honest replicas never execute conflicting values at the
    # same sequence number.
    logs = [[(e.seq, e.value) for e in r.executed_entries] for r in honest]
    longest = max(logs, key=len)
    for log in logs:
        assert log == longest[: len(log)]
    # The forged value never executes anywhere honest: at most one of
    # the two conflicting proposals can gather a prepare quorum.
    for log in logs:
        assert ("EVIL" not in [value for _seq, value in log])
    # Liveness: the request eventually commits (possibly after a view
    # change deposes the equivocator).
    assert future.resolved or sim.trace.count("pbft.view_change_vote") > 0


def test_tampering_voter_cannot_corrupt_agreement():
    sim, replicas = make_group(overrides={2: TamperingVoter})
    commit_values(sim, replicas[0], ["a", "b", "c"])
    sim.run(until=sim.now + 10)
    honest = [replicas[0], replicas[1], replicas[3]]
    assert_honest_agreement(honest, expected_length=3)


def test_bogus_proposer_rejected_by_verification_routines():
    def verifier(value, record_type, meta):
        return value != ("illegal-transition",)

    sim, replicas = make_group(
        overrides={0: BogusProposer},
        config=FAST,
        verifier=verifier,
    )
    future = replicas[1].submit("legal-value")
    sim.run(until=500.0, max_events=20_000_000)
    honest = replicas[1:]
    for replica in honest:
        executed = [e.value for e in replica.executed_entries]
        assert ("illegal-transition",) not in executed
    assert sim.trace.count("pbft.verify_reject") > 0


def test_f_byzantine_is_masked_but_f_plus_one_can_stall():
    # With two silent replicas out of four (beyond f=1), no quorum forms.
    sim, replicas = make_group(
        overrides={2: SilentReplica, 3: SilentReplica}, config=FAST
    )
    future = replicas[0].submit("never")
    sim.run(until=200.0, max_events=20_000_000)
    assert not future.resolved
    for replica in replicas[:2]:
        assert replica.executed_entries == []
