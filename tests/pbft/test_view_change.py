"""PBFT view-change tests: leader failure, re-election, safety."""

from repro.pbft.config import PBFTConfig
from tests.pbft.helpers import assert_honest_agreement, commit_values, make_group

FAST = PBFTConfig(request_timeout_ms=20.0, view_change_timeout_ms=40.0)


def test_leader_crash_triggers_view_change_and_commit_resumes():
    sim, replicas = make_group(config=FAST)
    commit_values(sim, replicas[0], ["before"])
    replicas[0].crash()
    future = replicas[1].submit("after")
    entry = sim.run_until_resolved(future, max_events=20_000_000)
    assert entry.value == "after"
    live = replicas[1:]
    assert max(r.view for r in live) >= 1
    sim.run(until=sim.now + 50)
    assert_honest_agreement(live)
    values = [e.value for e in replicas[1].executed_entries]
    assert values[0] == "before"
    assert "after" in values


def test_new_leader_is_view_mod_n():
    sim, replicas = make_group(config=FAST)
    replicas[0].crash()
    future = replicas[1].submit("x")
    sim.run_until_resolved(future, max_events=20_000_000)
    view = max(r.view for r in replicas[1:])
    leader_id = replicas[1].leader_of(view)
    assert leader_id != "r0"


def test_in_flight_request_survives_leader_crash():
    sim, replicas = make_group(config=FAST)
    # Submit from a follower, then immediately crash the leader before
    # it can commit.
    future = replicas[1].submit("survivor")
    sim.run(until=0.05)  # request reaches the leader, nothing committed
    replicas[0].crash()
    entry = sim.run_until_resolved(future, max_events=20_000_000)
    assert entry.value == "survivor"


def test_two_successive_leader_failures():
    sim, replicas = make_group(config=FAST)
    commit_values(sim, replicas[0], ["a"])
    replicas[0].crash()
    entry = sim.run_until_resolved(
        replicas[1].submit("b"), max_events=20_000_000
    )
    assert entry.value == "b"
    # The old leader returns (f = 1 allows only one failure at a time),
    # then the new leader fails too.
    replicas[0].recover()
    sim.run(until=sim.now + 200)
    view = max(r.view for r in replicas if not r.crashed)
    new_leader_id = replicas[1].leader_of(view)
    new_leader = next(r for r in replicas if r.node_id == new_leader_id)
    new_leader.crash()
    submitter = next(
        r for r in replicas if not r.crashed and r is not replicas[0]
    )
    entry = sim.run_until_resolved(
        submitter.submit("c"), max_events=40_000_000
    )
    assert entry.value == "c"


def test_committed_entries_survive_view_change():
    sim, replicas = make_group(config=FAST)
    commit_values(sim, replicas[0], ["a", "b", "c"])
    replicas[0].crash()
    sim.run_until_resolved(replicas[1].submit("d"), max_events=20_000_000)
    sim.run(until=sim.now + 100)
    live = replicas[1:]
    assert_honest_agreement(live)
    values = [e.value for e in live[0].executed_entries]
    assert values[:3] == ["a", "b", "c"]
    assert values[-1] == "d" or "d" in values


def test_view_change_vote_traced():
    sim, replicas = make_group(config=FAST)
    replicas[0].crash()
    sim.run_until_resolved(replicas[1].submit("x"), max_events=20_000_000)
    assert sim.trace.count("pbft.view_change_vote") >= 1
    assert sim.trace.count("pbft.new_view") >= 1


def test_recovered_old_leader_catches_up():
    sim, replicas = make_group(config=FAST)
    commit_values(sim, replicas[0], ["a"])
    replicas[0].crash()
    sim.run_until_resolved(replicas[1].submit("b"), max_events=20_000_000)
    replicas[0].recover()
    sim.run(until=sim.now + 200)
    assert replicas[0].last_executed >= 2
    values = [e.value for e in replicas[0].executed_entries]
    assert "a" in values and "b" in values
