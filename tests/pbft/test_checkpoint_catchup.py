"""PBFT checkpoint and catch-up (recovery) tests."""

from repro.pbft.config import PBFTConfig
from tests.pbft.helpers import assert_honest_agreement, commit_values, make_group


def test_checkpoint_truncates_slot_log():
    config = PBFTConfig(checkpoint_interval=4)
    sim, replicas = make_group(config=config)
    commit_values(sim, replicas[0], [f"v{i}" for i in range(10)])
    sim.run(until=sim.now + 20)
    for replica in replicas:
        assert replica.stable_checkpoint >= 4
        assert all(seq > replica.stable_checkpoint for seq in replica.slots)


def test_checkpoint_preserves_executed_entries():
    config = PBFTConfig(checkpoint_interval=2)
    sim, replicas = make_group(config=config)
    commit_values(sim, replicas[0], [f"v{i}" for i in range(6)])
    sim.run(until=sim.now + 20)
    assert_honest_agreement(replicas, expected_length=6)


def test_checkpoint_traced():
    config = PBFTConfig(checkpoint_interval=2)
    sim, replicas = make_group(config=config)
    commit_values(sim, replicas[0], ["a", "b"])
    sim.run(until=sim.now + 20)
    assert sim.trace.count("pbft.stable_checkpoint") >= 1


def test_crashed_replica_catches_up_on_recovery():
    sim, replicas = make_group()
    replicas[3].crash()
    commit_values(sim, replicas[0], [f"v{i}" for i in range(5)])
    replicas[3].recover()
    sim.run(until=sim.now + 100)
    assert replicas[3].last_executed == 5
    assert_honest_agreement(replicas, expected_length=5)


def test_catch_up_applies_in_order():
    sim, replicas = make_group()
    replicas[3].crash()
    commit_values(sim, replicas[0], [f"v{i}" for i in range(8)])
    replicas[3].recover()
    sim.run(until=sim.now + 100)
    values = [e.value for e in replicas[3].executed_entries]
    assert values == [f"v{i}" for i in range(8)]


def test_catch_up_requires_f_plus_one_matching_peers():
    # A single lying peer cannot poison catch-up: responses need f+1
    # agreement per sequence number.
    from repro.pbft.messages import CatchUpResponse, CommittedEntry

    sim, replicas = make_group()
    commit_values(sim, replicas[0], ["real"])
    lagger = replicas[3]
    lagger.crash()
    lagger.recover()
    # Forge a response claiming a different value for seq 1 from one
    # (byzantine) peer. It alone must not be applied over the truth.
    forged = CatchUpResponse(
        entries=[
            CommittedEntry(seq=2, view=0, value="forged", record_type="x")
        ],
        replica="r1",
    )
    lagger.handle_catch_up_response(forged, "r1")
    sim.run(until=sim.now + 100)
    values = [e.value for e in lagger.executed_entries]
    assert "forged" not in values


def test_recovery_after_more_commits_resumes_participation():
    sim, replicas = make_group()
    commit_values(sim, replicas[0], ["a"])
    replicas[2].crash()
    commit_values(sim, replicas[0], ["b", "c"])
    replicas[2].recover()
    sim.run(until=sim.now + 100)
    assert replicas[2].last_executed == 3
    # The recovered replica contributes to new commits again.
    commit_values(sim, replicas[0], ["d"])
    sim.run(until=sim.now + 20)
    assert_honest_agreement(replicas, expected_length=4)
