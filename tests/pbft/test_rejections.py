"""Tests for the leader pre-validation / request-rejection path."""

from repro.errors import VerificationFailed
from repro.pbft.messages import RejectRequest
from tests.pbft.helpers import commit_values, make_group


def test_rejection_reaches_remote_origin():
    sim, replicas = make_group(verifier=lambda v, rt, m: v != "bad")
    future = replicas[2].submit("bad")  # follower origin
    sim.run(until=50.0)
    assert future.resolved
    assert isinstance(future.exception, VerificationFailed)


def test_non_leader_cannot_kill_requests_with_forged_rejections():
    sim, replicas = make_group()
    future = replicas[0].submit("victim")
    # A byzantine follower forges a rejection; only the current
    # leader's word counts, so the request must still commit.
    forged = RejectRequest(
        request_id=("r0", 1), reason="forged", replica="r2"
    )
    replicas[0].handle_reject_request(forged, "r2")
    entry = sim.run_until_resolved(future, max_events=5_000_000)
    assert entry.value == "victim"


def test_rejected_request_does_not_burn_sequence_numbers():
    sim, replicas = make_group(verifier=lambda v, rt, m: v != "bad")
    bad = replicas[0].submit("bad")
    sim.run(until=20.0)
    assert bad.resolved and bad.exception is not None
    entries = commit_values(sim, replicas[0], ["good1", "good2"])
    assert [entry.seq for entry in entries] == [1, 2]


def test_rejection_reason_is_propagated():
    sim, replicas = make_group(verifier=lambda v, rt, m: v != "bad")
    future = replicas[0].submit("bad")
    sim.run(until=20.0)
    assert "verification routine" in str(future.exception)
