"""Tests for the experiment report formatting helpers."""

from repro.experiments.report import fmt_mb_s, fmt_ms, format_table


def test_format_table_aligns_columns():
    table = format_table(
        ["name", "value"], [["a", 1], ["longer-name", 22]]
    )
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "longer-name" in lines[3]
    # All rows have the same width.
    assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


def test_format_table_empty_rows():
    table = format_table(["a", "b"], [])
    assert "a" in table and "b" in table


def test_fmt_ms_precision():
    assert fmt_ms(1.234) == "1.23"
    assert fmt_ms(123.456) == "123.5"


def test_fmt_mb_s_precision():
    assert fmt_mb_s(5.678) == "5.68"
    assert fmt_mb_s(83.21) == "83.2"
