"""Tests for the Figure 7 baseline systems."""

import pytest

from repro.baselines import (
    FlatPaxosDeployment,
    FlatPBFTDeployment,
    HierarchicalPBFTDeployment,
)
from repro.errors import ConfigurationError
from repro.sim.topology import aws_four_dc_topology


def measure_rounds(sim, replicate, rounds=5, payload=1000):
    start = sim.now

    def work():
        for index in range(rounds):
            yield replicate(f"v{index}", payload)

    sim.run_until_resolved(sim.spawn(work()), max_events=100_000_000)
    return (sim.now - start) / rounds


# ---------------------------------------------------------------------
# Flat Paxos
# ---------------------------------------------------------------------
def test_flat_paxos_latency_equals_majority_rtt(sim):
    topology = aws_four_dc_topology()
    deployment = FlatPaxosDeployment(sim, topology, "C")
    sim.run_until_resolved(deployment.elect_leader())
    latency = measure_rounds(sim, deployment.replicate)
    assert latency == pytest.approx(topology.closest_majority_rtt("C"), abs=2)


def test_flat_paxos_values_learned_everywhere(sim):
    deployment = FlatPaxosDeployment(sim, aws_four_dc_topology(), "V")
    sim.run_until_resolved(deployment.elect_leader())
    sim.run_until_resolved(deployment.replicate("x"))
    sim.run(until=sim.now + 300)
    for site in "COVI":
        assert deployment.chosen_log(site) == {1: "x"}


def test_flat_paxos_unknown_leader_site(sim):
    with pytest.raises(ConfigurationError):
        FlatPaxosDeployment(sim, aws_four_dc_topology(), "X")


# ---------------------------------------------------------------------
# Flat PBFT
# ---------------------------------------------------------------------
def test_flat_pbft_commits_across_wide_area(sim):
    deployment = FlatPBFTDeployment(sim, aws_four_dc_topology(), "C")
    entry = sim.run_until_resolved(
        deployment.commit("value"), max_events=50_000_000
    )
    assert entry.value == "value"


def test_flat_pbft_latency_much_higher_than_paxos(sim):
    topology = aws_four_dc_topology()
    deployment = FlatPBFTDeployment(sim, topology, "C")
    latency = measure_rounds(sim, deployment.commit)
    # Three wide-area phases: far beyond one majority round trip.
    assert latency > topology.closest_majority_rtt("C") * 1.4


def test_flat_pbft_leader_site_leads_view_zero(sim):
    deployment = FlatPBFTDeployment(sim, aws_four_dc_topology(), "V")
    assert deployment.leader.is_leader


def test_flat_pbft_agreement_across_sites(sim):
    deployment = FlatPBFTDeployment(sim, aws_four_dc_topology(), "C")

    def work():
        for index in range(3):
            yield deployment.commit(f"v{index}")

    sim.run_until_resolved(sim.spawn(work()), max_events=50_000_000)
    sim.run(until=sim.now + 1000)
    logs = [
        [e.value for e in replica.executed_entries]
        for replica in deployment.replicas.values()
    ]
    assert all(log == logs[0] for log in logs)
    assert logs[0] == ["v0", "v1", "v2"]


# ---------------------------------------------------------------------
# Hierarchical PBFT
# ---------------------------------------------------------------------
def test_hierarchical_pbft_commits(sim):
    deployment = HierarchicalPBFTDeployment(sim, aws_four_dc_topology(), "C")
    slot = sim.run_until_resolved(
        deployment.replicate("value"), max_events=50_000_000
    )
    assert slot == 1


def test_hierarchical_latency_between_paxos_and_blockplane(sim):
    topology = aws_four_dc_topology()
    deployment = HierarchicalPBFTDeployment(sim, topology, "C")
    latency = measure_rounds(sim, deployment.replicate)
    floor = topology.closest_majority_rtt("C")
    assert floor < latency < floor + 8  # small local-commit overhead only


def test_hierarchical_remote_sites_commit_accepts_locally(sim):
    deployment = HierarchicalPBFTDeployment(sim, aws_four_dc_topology(), "C")
    sim.run_until_resolved(deployment.replicate("v"), max_events=50_000_000)
    sim.run(until=sim.now + 1000)
    committed_sites = 0
    for site, nodes in deployment.units.items():
        if site == "C":
            continue
        values = [e.value for e in nodes[0].executed_entries]
        if ("accept", 1, "v") in values:
            committed_sites += 1
    assert committed_sites >= 2  # a majority of remote sites


def test_hierarchical_masks_local_byzantine_failure(sim):
    deployment = HierarchicalPBFTDeployment(sim, aws_four_dc_topology(), "C")
    # Crash one local replica at the leader site (f=1 masked locally).
    deployment.units["C"][3].crash()
    slot = sim.run_until_resolved(
        deployment.replicate("resilient"), max_events=50_000_000
    )
    assert slot == 1
