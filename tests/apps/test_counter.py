"""Tests for the Algorithm 1 counter protocol and its verification
routines."""

import pytest

from repro.apps.counter import CounterParticipant, CounterVerification
from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.errors import VerificationFailed
from repro.sim.topology import aws_four_dc_topology


@pytest.fixture
def deployment(sim):
    return BlockplaneDeployment(
        sim,
        aws_four_dc_topology(),
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda _name: CounterVerification(),
    )


@pytest.fixture
def participants(deployment):
    parts = {
        site: CounterParticipant(deployment.api(site))
        for site in deployment.participants
    }
    for participant in parts.values():
        participant.start_server()
    return parts


def test_counter_increments_per_received_message(sim, participants):
    def driver():
        yield participants["C"].user_request("alice", "V")
        yield participants["C"].user_request("bob", "V")
        yield participants["O"].user_request("carol", "V")

    sim.run_until_resolved(sim.spawn(driver()), max_events=50_000_000)
    sim.run(until=sim.now + 500)
    assert participants["V"].counter == 3
    assert participants["C"].counter == 0


def test_counter_recovery_replays_log(sim, participants):
    def driver():
        yield participants["C"].user_request("alice", "O")
        yield participants["V"].user_request("bob", "O")

    sim.run_until_resolved(sim.spawn(driver()), max_events=50_000_000)
    sim.run(until=sim.now + 500)
    assert participants["O"].recover_counter_from_log() == 2


def test_untrusted_user_rejected_by_verification_routine(sim, participants):
    def driver():
        yield participants["C"].user_request("mallory", "V")

    process = sim.spawn(driver())
    sim.run(until=2000.0, max_events=20_000_000)
    assert isinstance(process.exception, VerificationFailed)
    assert participants["V"].counter == 0


def test_send_without_committed_request_rejected(sim, deployment):
    # A (malicious) participant trying to send a count-me message with
    # no corresponding user request is vetoed by verification routine 2.
    api = deployment.api("C")
    future = api.send(
        {"kind": "count-me", "user": "alice", "request_id": 999},
        to="V",
        payload_bytes=64,
    )
    sim.run(until=2000.0, max_events=20_000_000)
    assert isinstance(future.exception, VerificationFailed)


def test_same_request_cannot_be_sent_twice(sim, deployment, participants):
    def driver():
        yield participants["C"].user_request("alice", "V")

    sim.run_until_resolved(sim.spawn(driver()), max_events=50_000_000)
    sim.run(until=sim.now + 500)
    # Replaying the send for the already-consumed request must fail.
    replay = deployment.api("C").send(
        {"kind": "count-me", "user": "alice", "request_id": 1},
        to="V",
        payload_bytes=64,
    )
    sim.run(until=sim.now + 2000.0, max_events=20_000_000)
    assert isinstance(replay.exception, VerificationFailed)
    assert participants["V"].counter == 1


def test_counters_are_per_participant(sim, participants):
    def driver():
        yield participants["C"].user_request("alice", "V")
        yield participants["V"].user_request("bob", "C")

    sim.run_until_resolved(sim.spawn(driver()), max_events=50_000_000)
    sim.run(until=sim.now + 500)
    assert participants["V"].counter == 1
    assert participants["C"].counter == 1
    assert participants["O"].counter == 0
