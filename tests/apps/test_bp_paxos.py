"""Tests for Blockplane-Paxos (Algorithm 3)."""

import pytest

from repro.apps.bp_paxos import BlockplanePaxosParticipant, PaxosVerification
from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.sim.topology import aws_four_dc_topology


@pytest.fixture
def cluster(sim):
    topology = aws_four_dc_topology()
    deployment = BlockplaneDeployment(
        sim,
        topology,
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda _name: PaxosVerification(),
    )
    participants = {
        site: BlockplanePaxosParticipant(
            deployment.api(site), topology.site_names
        )
        for site in topology.site_names
    }
    for participant in participants.values():
        participant.start()
    return deployment, participants


def elect(sim, participant):
    result = sim.run_until_resolved(
        sim.spawn(participant.leader_election()), max_events=100_000_000
    )
    return result


def test_leader_election_succeeds(sim, cluster):
    _deployment, participants = cluster
    assert elect(sim, participants["C"]) is True
    assert participants["C"].l


def test_replication_commits_a_slot(sim, cluster):
    _deployment, participants = cluster
    elect(sim, participants["C"])
    slot = sim.run_until_resolved(
        sim.spawn(participants["C"].replicate("value-1")),
        max_events=100_000_000,
    )
    assert slot == 1
    assert participants["C"].chosen[1] == "value-1"


def test_replication_latency_close_to_paxos_floor(sim, cluster):
    _deployment, participants = cluster
    leader = participants["C"]
    elect(sim, leader)
    start = sim.now
    sim.run_until_resolved(
        sim.spawn(leader.replicate("v")), max_events=100_000_000
    )
    latency = sim.now - start
    # Paxos floor for C is 61 ms; the paper reports up to 33% overhead.
    assert 61.0 <= latency <= 61.0 * 1.4


def test_acceptors_record_accepts(sim, cluster):
    _deployment, participants = cluster
    leader = participants["C"]
    elect(sim, leader)
    sim.run_until_resolved(
        sim.spawn(leader.replicate("durable")), max_events=100_000_000
    )
    sim.run(until=sim.now + 500)
    accepted_count = sum(
        1
        for participant in participants.values()
        if 1 in participant.accepted
    )
    assert accepted_count >= 3  # leader + majority responders


def test_replicate_without_leadership_returns_none(sim, cluster):
    _deployment, participants = cluster
    result = sim.run_until_resolved(
        sim.spawn(participants["V"].replicate("nope")),
        max_events=100_000_000,
    )
    assert result is None


def test_multiple_slots_in_order(sim, cluster):
    _deployment, participants = cluster
    leader = participants["V"]
    elect(sim, leader)

    def work():
        slots = []
        for index in range(3):
            slot = yield leader.replicate(f"v{index}")
            slots.append(slot)
        return slots

    slots = sim.run_until_resolved(sim.spawn(work()), max_events=200_000_000)
    assert slots == [1, 2, 3]


def test_all_protocol_traffic_is_in_local_logs(sim, cluster):
    # The whole point of the byzantization: every paxos message exists
    # as a communication record in the sender's Local Log.
    deployment, participants = cluster
    leader = participants["C"]
    elect(sim, leader)
    sim.run_until_resolved(
        sim.spawn(leader.replicate("audited")), max_events=100_000_000
    )
    sim.run(until=sim.now + 500)
    log_c = deployment.unit("C").gateway_node().local_log
    kinds = [
        entry.value.get("type")
        for entry in log_c
        if entry.record_type == "communication"
    ]
    assert "paxos-prepare" in kinds
    assert "paxos-propose" in kinds


def test_verification_rejects_unwarranted_protocol_message(sim, cluster):
    deployment, _participants = cluster
    api = deployment.api("C")
    # No committed replication-start event: proposing out of thin air
    # must be vetoed by the PaxosVerification send routine.
    rogue = api.send(
        {
            "type": "paxos-propose",
            "ballot": (99, "C"),
            "slot": 1,
            "value": "evil",
            "from": "C",
        },
        to="V",
        payload_bytes=64,
    )
    sim.run(until=2000.0, max_events=50_000_000)
    assert rogue.exception is not None
