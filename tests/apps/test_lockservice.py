"""Tests for the byzantized lock service."""

import pytest

from repro.apps.lockservice import (
    LockServiceParticipant,
    LockVerification,
    lock_owner,
)
from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.sim.topology import aws_four_dc_topology


@pytest.fixture
def service(sim):
    topology = aws_four_dc_topology()
    deployment = BlockplaneDeployment(
        sim,
        topology,
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda name: LockVerification(name),
    )
    participants = {
        site: LockServiceParticipant(deployment.api(site), topology.site_names)
        for site in topology.site_names
    }
    for participant in participants.values():
        participant.start()
    return deployment, participants


def test_lock_owner_prefix():
    assert lock_owner("C/database") == "C"
    assert lock_owner("V/a/b") == "V"


def test_local_acquire_and_release(sim, service):
    _deployment, parts = service
    granted = sim.run_until_resolved(
        parts["C"].acquire("C/db", "worker-1"), max_events=20_000_000
    )
    assert granted is True
    assert parts["C"].table.holders["C/db"] == "worker-1"
    released = sim.run_until_resolved(
        parts["C"].release("C/db", "worker-1"), max_events=20_000_000
    )
    assert released is True
    assert "C/db" not in parts["C"].table.holders


def test_mutual_exclusion(sim, service):
    _deployment, parts = service
    first = sim.run_until_resolved(
        parts["C"].acquire("C/db", "worker-1"), max_events=20_000_000
    )
    second = sim.run_until_resolved(
        parts["C"].acquire("C/db", "worker-2"), max_events=20_000_000
    )
    assert first is True and second is False
    assert parts["C"].table.holders["C/db"] == "worker-1"


def test_remote_acquire_routed_to_host(sim, service):
    _deployment, parts = service
    granted = sim.run_until_resolved(
        parts["V"].acquire("C/shared", "v-worker"), max_events=100_000_000
    )
    assert granted is True
    assert parts["C"].table.holders["C/shared"] == "v-worker"


def test_remote_denial_gets_a_reply(sim, service):
    _deployment, parts = service
    sim.run_until_resolved(
        parts["C"].acquire("C/shared", "local"), max_events=20_000_000
    )
    denied = sim.run_until_resolved(
        parts["O"].acquire("C/shared", "o-worker"), max_events=100_000_000
    )
    assert denied is False
    assert parts["C"].table.holders["C/shared"] == "local"


def test_release_by_non_holder_rejected(sim, service):
    _deployment, parts = service
    sim.run_until_resolved(
        parts["C"].acquire("C/db", "owner"), max_events=20_000_000
    )
    stolen = sim.run_until_resolved(
        parts["C"].release("C/db", "thief"), max_events=20_000_000
    )
    assert stolen is False
    assert parts["C"].table.holders["C/db"] == "owner"


def test_byzantine_node_cannot_forge_acquisition(sim, service):
    deployment, parts = service
    sim.run_until_resolved(
        parts["C"].acquire("C/db", "legit"), max_events=20_000_000
    )
    sim.run(until=sim.now + 50)
    # A corrupt unit member proposes stealing the lock directly.
    corrupt = deployment.unit("C").nodes[2]
    corrupt.local_commit(
        {"op": "acquire", "lock": "C/db", "holder": "thief",
         "reply_to": None, "op_id": None},
        "log-commit",
        None,
        128,
    )
    sim.run(until=sim.now + 2000, max_events=20_000_000)
    for node in deployment.unit("C").nodes:
        holders = [
            e.value.get("holder")
            for e in node.local_log
            if e.record_type == "log-commit"
            and isinstance(e.value, dict)
            and e.value.get("op") == "acquire"
            and e.value.get("lock") == "C/db"
        ]
        assert holders == ["legit"]


def test_verification_state_consistent_across_unit(sim, service):
    deployment, parts = service
    sim.run_until_resolved(
        parts["C"].acquire("C/a", "w1"), max_events=20_000_000
    )
    sim.run_until_resolved(
        parts["C"].acquire("C/b", "w2"), max_events=20_000_000
    )
    sim.run(until=sim.now + 100)
    tables = [
        node.routines.table.holders for node in deployment.unit("C").nodes
    ]
    assert all(table == tables[0] for table in tables)
    assert tables[0] == {"C/a": "w1", "C/b": "w2"}