"""Tests for the partitioned byzantized key-value store."""

import pytest

from repro.apps.kvstore import KVStoreParticipant, KVVerification, owner_of
from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.sim.topology import aws_four_dc_topology


@pytest.fixture
def cluster(sim):
    topology = aws_four_dc_topology()
    sites = topology.site_names
    deployment = BlockplaneDeployment(
        sim,
        topology,
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda name: KVVerification(sites, name),
    )
    stores = {
        site: KVStoreParticipant(deployment.api(site), sites)
        for site in sites
    }
    for store in stores.values():
        store.start()
    return deployment, stores


def test_owner_partitioning_is_deterministic():
    sites = ["C", "O", "V", "I"]
    assert owner_of("some-key", sites) == owner_of("some-key", sites)
    owners = {owner_of(f"key-{i}", sites) for i in range(64)}
    assert len(owners) > 1  # keys spread across partitions


def test_local_put_get_roundtrip(sim, cluster):
    _deployment, stores = cluster
    # Find a key owned by C so the put is local.
    key = next(
        f"key-{i}"
        for i in range(100)
        if owner_of(f"key-{i}", list(stores)) == "C"
    )
    result = sim.run_until_resolved(
        stores["C"].put(key, "value"), max_events=50_000_000
    )
    assert result == "ok"
    value = sim.run_until_resolved(stores["C"].get(key))
    assert value == "value"


def test_remote_put_routed_to_owner(sim, cluster):
    _deployment, stores = cluster
    key = next(
        f"key-{i}"
        for i in range(100)
        if owner_of(f"key-{i}", list(stores)) == "V"
    )
    result = sim.run_until_resolved(
        stores["C"].put(key, "routed"), max_events=100_000_000
    )
    assert result == "ok"
    assert stores["V"].store[key] == "routed"
    assert key not in stores["C"].store


def test_remote_get_sees_owner_state(sim, cluster):
    _deployment, stores = cluster
    key = next(
        f"key-{i}"
        for i in range(100)
        if owner_of(f"key-{i}", list(stores)) == "O"
    )
    sim.run_until_resolved(
        stores["O"].put(key, "shared"), max_events=50_000_000
    )
    value = sim.run_until_resolved(
        stores["V"].get(key), max_events=100_000_000
    )
    assert value == "shared"


def test_delete(sim, cluster):
    _deployment, stores = cluster
    key = next(
        f"key-{i}"
        for i in range(100)
        if owner_of(f"key-{i}", list(stores)) == "C"
    )
    sim.run_until_resolved(stores["C"].put(key, "gone-soon"))
    result = sim.run_until_resolved(stores["C"].delete(key))
    assert result == "deleted"
    assert sim.run_until_resolved(stores["C"].get(key)) is None


def test_non_owner_cannot_commit_foreign_keys(sim, cluster):
    deployment, stores = cluster
    key = next(
        f"key-{i}"
        for i in range(100)
        if owner_of(f"key-{i}", list(stores)) == "V"
    )
    # A malicious unit member at C proposing a write for V's partition
    # is rejected by C's own verification routines.
    rogue = deployment.api("C").log_commit(
        {"op": "put", "key": key, "value": "stolen", "reply_to": None,
         "op_id": None}
    )
    sim.run(until=2000.0, max_events=50_000_000)
    assert rogue.exception is not None


def test_writes_replicated_across_owner_unit(sim, cluster):
    deployment, stores = cluster
    key = next(
        f"key-{i}"
        for i in range(100)
        if owner_of(f"key-{i}", list(stores)) == "C"
    )
    sim.run_until_resolved(stores["C"].put(key, "durable"))
    sim.run(until=sim.now + 100)
    for node in deployment.unit("C").nodes:
        committed = [
            entry.value
            for entry in node.local_log
            if entry.record_type == "log-commit"
        ]
        assert any(
            isinstance(value, dict) and value.get("key") == key
            for value in committed
        )
