"""Tests for the bank ledger: invariants enforced by verification."""

import pytest

from repro.apps.bank import BankParticipant, BankVerification
from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.errors import VerificationFailed
from repro.sim.topology import aws_four_dc_topology

INITIAL = {
    "C": {"c-alice": 100, "c-bob": 50},
    "O": {"o-carol": 30},
    "V": {"v-dave": 0},
    "I": {},
}


@pytest.fixture
def branches(sim):
    deployment = BlockplaneDeployment(
        sim,
        aws_four_dc_topology(),
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda name: BankVerification(INITIAL[name]),
    )
    branches = {
        site: BankParticipant(deployment.api(site), INITIAL[site])
        for site in deployment.participants
    }
    for branch in branches.values():
        branch.start()
    return deployment, branches


def test_local_transfer(sim, branches):
    _deployment, parts = branches
    sim.run_until_resolved(
        parts["C"].transfer("c-alice", "c-bob", 40), max_events=50_000_000
    )
    assert parts["C"].balances == {"c-alice": 60, "c-bob": 90}


def test_overdraft_rejected_by_verification(sim, branches):
    _deployment, parts = branches
    future = parts["C"].transfer("c-alice", "c-bob", 1000)
    sim.run(until=2000.0, max_events=50_000_000)
    assert isinstance(future.exception, VerificationFailed)
    assert parts["C"].balances["c-alice"] == 100  # untouched


def test_cross_branch_transfer_conserves_money(sim, branches):
    _deployment, parts = branches
    total_before = sum(branch.total_money() for branch in parts.values())
    sim.run_until_resolved(
        parts["C"].transfer_to_branch("c-alice", "V", "v-dave", 25),
        max_events=100_000_000,
    )
    sim.run(until=sim.now + 1000)
    assert parts["C"].balances["c-alice"] == 75
    assert parts["V"].balances["v-dave"] == 25
    total_after = sum(branch.total_money() for branch in parts.values())
    assert total_after == total_before


def test_cross_branch_overdraft_rejected(sim, branches):
    _deployment, parts = branches
    future = parts["O"].transfer_to_branch("o-carol", "C", "c-bob", 500)
    sim.run(until=2000.0, max_events=50_000_000)
    assert isinstance(future.exception, VerificationFailed)
    assert parts["C"].balances["c-bob"] == 50


def test_forged_credit_message_rejected(sim, branches):
    # A byzantine branch node cannot mint money: a credit-message with
    # no committed matching debit fails the send verification routine.
    deployment, parts = branches
    forged = deployment.api("C").send(
        {"kind": "credit-message", "dst": "v-dave", "amount": 1_000_000,
         "transfer_id": 777},
        to="V",
        payload_bytes=128,
    )
    sim.run(until=2000.0, max_events=50_000_000)
    assert isinstance(forged.exception, VerificationFailed)
    assert parts["V"].balances["v-dave"] == 0


def test_open_account(sim, branches):
    _deployment, parts = branches
    sim.run_until_resolved(parts["I"].open_account("i-erin", 10))
    assert parts["I"].balances["i-erin"] == 10


def test_duplicate_account_rejected(sim, branches):
    _deployment, parts = branches
    future = parts["C"].open_account("c-alice", 999)
    sim.run(until=2000.0, max_events=50_000_000)
    assert isinstance(future.exception, VerificationFailed)


def test_negative_amount_rejected(sim, branches):
    _deployment, parts = branches
    future = parts["C"].transfer("c-alice", "c-bob", -5)
    sim.run(until=2000.0, max_events=50_000_000)
    assert isinstance(future.exception, VerificationFailed)
