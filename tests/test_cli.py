"""Tests for the `python -m repro` command-line entry point."""

from repro.__main__ import main


def test_single_experiment_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "130" in out  # C-I RTT


def test_unknown_experiment_rejected(capsys):
    assert main(["nonsense"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiment" in out
    assert "fig7" in out  # the available list is shown


def test_multiple_experiments_separated(capsys):
    assert main(["table1", "table1"]) == 0
    out = capsys.readouterr().out
    assert out.count("Table I") == 2
    assert "=" * 68 in out
