"""Tests for the `python -m repro` command-line entry point."""

import pytest

from repro.__main__ import main


def test_single_experiment_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "130" in out  # C-I RTT


def test_unknown_experiment_rejected(capsys):
    assert main(["nonsense"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiment" in out
    assert "fig7" in out  # the available list is shown
    assert "console" in out  # ...and the subcommand inventory


def test_help_lists_subcommands_and_experiments(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    for subcommand in ("console", "chaos", "lint", "obs-audit"):
        assert subcommand in out
    for experiment in ("table1", "fig4", "ablations"):
        assert experiment in out
    assert "--obs-out" in out


def test_subcommand_help_is_forwarded(capsys):
    # `python -m repro console --help` reaches the console's own
    # argparse parser (which exits 0 after printing usage).
    with pytest.raises(SystemExit) as excinfo:
        main(["console", "--help"])
    assert excinfo.value.code == 0
    assert "--journal" in capsys.readouterr().out


def test_multiple_experiments_separated(capsys):
    assert main(["table1", "table1"]) == 0
    out = capsys.readouterr().out
    assert out.count("Table I") == 2
    assert "=" * 68 in out
