"""Property-based tests for Paxos safety (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paxos.node import MultiPaxosNode
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.topology import symmetric_topology


def make_cluster(n_sites, seed, rtt=10.0):
    sim = Simulator(seed=seed)
    sites = [f"S{i}" for i in range(n_sites)]
    network = Network(sim, symmetric_topology(sites, rtt))
    peers = [f"{site}-p" for site in sites]
    nodes = [
        MultiPaxosNode(sim, network, f"{site}-p", site, list(peers))
        for site in sites
    ]
    return sim, nodes


@given(
    n_sites=st.integers(min_value=3, max_value=7),
    proposer_order=st.permutations([0, 1, 2]),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_dueling_proposers_never_choose_conflicting_values(
    n_sites, proposer_order, seed
):
    sim, nodes = make_cluster(n_sites, seed)
    # Three nodes race to become leader and replicate their own value.
    for index in proposer_order:
        node = nodes[index]

        def campaign(node=node, index=index):
            try:
                yield node.elect_leader()
            except Exception:
                return
            if node.is_leader:
                try:
                    yield node.replicate(f"value-from-{index}")
                except Exception:
                    return

        sim.spawn(campaign())
    sim.run(until=5000.0, max_events=5_000_000)
    # Safety: for every slot, all nodes that learned a value agree.
    slots = set()
    for node in nodes:
        slots.update(node.chosen)
    for slot in slots:
        learned = {
            node.chosen[slot] for node in nodes if slot in node.chosen
        }
        assert len(learned) == 1, f"slot {slot} diverged: {learned}"


@given(
    crash_mask=st.lists(st.booleans(), min_size=5, max_size=5),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_chosen_values_survive_any_minority_crash(crash_mask, seed):
    sim, nodes = make_cluster(5, seed)
    leader = nodes[0]
    sim.run_until_resolved(leader.elect_leader())
    sim.run_until_resolved(leader.replicate("durable"))
    sim.run(until=sim.now + 100)
    # Crash at most a minority (2 of 5), never the would-be new leader.
    crashed = 0
    for index, crash in enumerate(crash_mask):
        if crash and crashed < 2 and index != 1:
            nodes[index].crash()
            crashed += 1
    # A surviving node takes over and must re-learn "durable" in slot 1.
    successor = nodes[1]
    sim.run_until_resolved(successor.elect_leader(), max_events=2_000_000)
    sim.run(until=sim.now + 200)
    assert successor.chosen.get(1) == "durable"
