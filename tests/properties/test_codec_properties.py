"""Property-based tests for the generated wire codec (hypothesis).

Instance strategies are derived from the codec's own field-spec trees
(:data:`repro.core.codec._SPECS`), so every class in the MANIFEST is
exercised with arbitrary well-typed payloads — the properties cannot
drift out of sync with the manifest when a wire class gains a field.

Three invariants:

* ``decode_wire(encode_wire(x)) == x`` for every wire class (the
  tuple/list distinction in ``Any`` payloads included);
* the generated canonical-digest expanders are byte-identical to the
  generic dataclass canonicalization (same ``stable_digest`` with the
  codec enabled or disabled);
* on payloads the legacy dict-walking JSON path can represent (no
  tuples or bytes inside ``Any`` fields), the codec round-trip and the
  legacy round-trip produce equal objects with equal digests — and on
  tuple-carrying payloads the codec is lossless where the legacy path
  documentedly is not.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import codec
from repro.core.codec import (
    MANIFEST,
    decode_wire,
    decode_wire_bytes,
    encode_wire,
    encode_wire_bytes,
    set_codec_enabled,
)
from repro.crypto.digest import stable_digest
from repro.crypto.signatures import Signature

_KEY_TEXT = st.text(alphabet="abcdef", max_size=4)

_ANY_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)


def _any_values(tuples: bool, binary: bool) -> st.SearchStrategy:
    """Trees the ``Any``-value walkers accept. The legacy comparison
    property excludes tuples (tuple→list loss is the legacy path's
    documented behavior) and bytes (the legacy walker rejects them)."""
    base = _ANY_SCALARS
    if binary:
        base = base | st.binary(max_size=8)

    def extend(children):
        options = [
            st.lists(children, max_size=3),
            st.dictionaries(_KEY_TEXT, children, max_size=3),
        ]
        if tuples:
            options.append(st.lists(children, max_size=3).map(tuple))
        return st.one_of(*options)

    return st.recursive(base, extend, max_leaves=8)


class _StrategyBuilder:
    """Builds per-class instance strategies from codec spec trees."""

    def __init__(self, any_values: st.SearchStrategy) -> None:
        self.any_values = any_values
        self._classes: dict = {}

    def for_class(self, cls: type) -> st.SearchStrategy:
        strategy = self._classes.get(cls)
        if strategy is None:
            # Deferred so mutually referencing classes cannot recurse
            # during construction.
            strategy = st.deferred(lambda cls=cls: self._build(cls))
            self._classes[cls] = strategy
        return strategy

    def _build(self, cls: type) -> st.SearchStrategy:
        fields, specs = codec._SPECS[cls]
        return st.builds(
            cls,
            **{
                fname: self.for_spec(spec)
                for fname, spec in zip(fields, specs)
            },
        )

    def for_spec(self, spec) -> st.SearchStrategy:
        kind = spec[0]
        if kind == "str":
            return st.text(max_size=12)
        if kind == "int":
            return st.integers(min_value=-(2**53), max_value=2**53)
        if kind == "float":
            return st.floats(allow_nan=False, allow_infinity=False)
        if kind == "bool":
            return st.booleans()
        if kind == "opt":
            return st.none() | self.for_spec(spec[1])
        if kind == "vtuple":
            return st.lists(self.for_spec(spec[1]), max_size=3).map(tuple)
        if kind == "ftuple":
            return st.tuples(*(self.for_spec(s) for s in spec[1]))
        if kind == "list":
            return st.lists(self.for_spec(spec[1]), max_size=3)
        if kind == "dicts":
            return st.dictionaries(_KEY_TEXT, self.for_spec(spec[1]), max_size=3)
        if kind == "dicti":
            return st.dictionaries(
                st.integers(min_value=-100, max_value=100),
                self.for_spec(spec[1]),
                max_size=3,
            )
        if kind == "cls":
            return self.for_class(spec[1])
        if kind == "any":
            return self.any_values
        raise AssertionError(f"unhandled codec spec {spec!r}")


_FULL = _StrategyBuilder(_any_values(tuples=True, binary=True))
_LEGACY_SAFE = _StrategyBuilder(_any_values(tuples=False, binary=False))

_ALL_CLASSES = sorted(MANIFEST, key=lambda cls: cls.__name__)


@pytest.mark.parametrize(
    "cls", _ALL_CLASSES, ids=[cls.__name__ for cls in _ALL_CLASSES]
)
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_round_trip_is_identity(cls, data):
    """encode→decode reproduces the instance exactly, per wire class."""
    obj = data.draw(_FULL.for_class(cls))
    assert decode_wire(encode_wire(obj)) == obj


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_round_trip_through_bytes(data):
    cls = data.draw(st.sampled_from(_ALL_CLASSES))
    obj = data.draw(_FULL.for_class(cls))
    assert decode_wire_bytes(encode_wire_bytes(obj)) == obj


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_generated_digest_expanders_match_generic_walk(data):
    """stable_digest is byte-identical with the codec's generated
    canonical expanders installed (codec on) and without (codec off)."""
    cls = data.draw(st.sampled_from(_ALL_CLASSES))
    obj = data.draw(_FULL.for_class(cls))
    previous = set_codec_enabled(True)
    try:
        with_expanders = stable_digest(obj)
        set_codec_enabled(False)
        without_expanders = stable_digest(obj)
    finally:
        set_codec_enabled(previous)
    assert with_expanders == without_expanders


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_generated_immutability_verdicts_match_reflective_walk(data):
    """The codec's generated immutability verdicts agree with the
    reflective ``_deeply_immutable`` walk on every well-typed instance —
    the digest memo must make identical cache/no-cache decisions with
    the codec enabled or disabled."""
    from repro.crypto.digest import _deeply_immutable

    cls = data.draw(st.sampled_from(_ALL_CLASSES))
    obj = data.draw(_FULL.for_class(cls))
    previous = set_codec_enabled(True)
    try:
        with_verdicts = _deeply_immutable(obj)
        set_codec_enabled(False)
        without_verdicts = _deeply_immutable(obj)
    finally:
        set_codec_enabled(previous)
    assert with_verdicts == without_verdicts


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_codec_agrees_with_legacy_on_legacy_safe_payloads(data):
    """Where the legacy dict-walking JSON can represent the value at
    all, both paths decode to equal objects with equal digests."""
    cls = data.draw(st.sampled_from(_ALL_CLASSES))
    obj = data.draw(_LEGACY_SAFE.for_class(cls))
    via_codec = decode_wire(encode_wire(obj))
    via_legacy = codec._legacy_decode(codec._legacy_encode(obj))
    assert via_codec == via_legacy == obj
    assert stable_digest(via_codec) == stable_digest(via_legacy)


def test_codec_preserves_any_tuples_where_legacy_does_not():
    """The decisive divergence: a tuple inside an ``Any`` payload
    survives the generated codec but degrades to a list on the legacy
    path — which changes the record digest. This is why benchmark
    control passes transcode with the generated codec rather than the
    legacy walker."""
    signature = Signature(signer="a", digest="d", mac="m")
    entry = codec._records.LogEntry(
        position=1,
        record_type="communication",
        value=("k", ("nested", 2)),
        meta=None,
        payload_bytes=0,
    )
    assert decode_wire(encode_wire(entry)) == entry
    degraded = codec._legacy_decode(codec._legacy_encode(entry))
    assert degraded.value == ["k", ["nested", 2]]
    assert stable_digest(degraded) != stable_digest(entry)
    # Typed tuple fields (not Any) are spec-driven and survive both.
    assert decode_wire(encode_wire(signature)) == signature
    assert (
        codec._legacy_decode(codec._legacy_encode(signature)) == signature
    )
