"""Property-based tests for simulator determinism and ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import LatencySeries
from repro.sim.simulator import Simulator


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1000.0),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fire_times = []
    for delay in delays:
        sim.schedule(delay, lambda: fire_times.append(sim.now))
    sim.run()
    assert fire_times == sorted(fire_times)
    assert len(fire_times) == len(delays)


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=30),
)
@settings(max_examples=50, deadline=None)
def test_seeded_runs_are_bit_identical(seed, n):
    def run():
        sim = Simulator(seed=seed)
        values = []

        def proc():
            for _ in range(n):
                yield sim.sleep(sim.rng.uniform(0.1, 5.0))
                values.append((sim.now, sim.rng.random()))

        sim.spawn(proc())
        sim.run()
        return values

    assert run() == run()


@given(
    st.lists(
        st.floats(min_value=0.001, max_value=1e6),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=100, deadline=None)
def test_latency_series_invariants(samples):
    series = LatencySeries()
    series.extend(samples)
    # Tolerate one ulp of floating-point rounding in the aggregate.
    slack = 1e-9 * max(abs(series.maximum), 1.0)
    assert series.minimum - slack <= series.mean <= series.maximum + slack
    assert series.percentile(0) == series.minimum
    assert series.percentile(100) == series.maximum
    assert (
        series.percentile(50)
        <= series.percentile(95) + slack
    )
    assert (
        series.percentile(95)
        <= series.percentile(99) + slack
    )


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=30))
@settings(max_examples=50, deadline=None)
def test_all_of_waits_for_slowest(delays):
    sim = Simulator()
    from repro.sim.process import all_of

    def proc():
        yield all_of(sim, [sim.sleep(delay) for delay in delays])
        return sim.now

    process = sim.spawn(proc())
    sim.run()
    assert process.result() == max(delays)


@given(st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_any_of_returns_at_fastest(delays):
    sim = Simulator()
    from repro.sim.process import any_of

    def proc():
        yield any_of(sim, [sim.sleep(delay) for delay in delays])
        return sim.now

    process = sim.spawn(proc())
    sim.run()
    assert process.result() == min(delays)
