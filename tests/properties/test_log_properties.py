"""Property-based tests for Local Log invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.local_log import LocalLog
from repro.core.records import (
    RECORD_COMMUNICATION,
    RECORD_LOG_COMMIT,
    SealedTransmission,
    TransmissionRecord,
)
from repro.crypto.signatures import QuorumProof

DESTINATIONS = ["B", "X", "Y"]

append_ops = st.lists(
    st.one_of(
        st.tuples(st.just("commit"), st.text(max_size=8)),
        st.tuples(st.just("send"), st.sampled_from(DESTINATIONS)),
    ),
    max_size=40,
)


@given(append_ops)
@settings(max_examples=100, deadline=None)
def test_positions_are_dense_and_one_based(ops):
    log = LocalLog("A")
    for kind, arg in ops:
        if kind == "commit":
            log.append(RECORD_LOG_COMMIT, arg)
        else:
            log.append(RECORD_COMMUNICATION, "m", meta={"destination": arg})
    assert [entry.position for entry in log] == list(
        range(1, len(ops) + 1)
    )


@given(append_ops)
@settings(max_examples=100, deadline=None)
def test_communication_chain_partitions_comm_records(ops):
    log = LocalLog("A")
    for kind, arg in ops:
        if kind == "commit":
            log.append(RECORD_LOG_COMMIT, arg)
        else:
            log.append(RECORD_COMMUNICATION, "m", meta={"destination": arg})
    all_positions = []
    for destination in DESTINATIONS:
        positions = log.communication_positions(destination)
        assert positions == sorted(positions)
        all_positions.extend(positions)
    comm_count = sum(1 for kind, _ in ops if kind == "send")
    assert len(all_positions) == comm_count
    assert len(set(all_positions)) == len(all_positions)


@given(append_ops)
@settings(max_examples=100, deadline=None)
def test_chain_pointers_link_consecutive_comm_records(ops):
    log = LocalLog("A")
    for kind, arg in ops:
        if kind == "commit":
            log.append(RECORD_LOG_COMMIT, arg)
        else:
            log.append(RECORD_COMMUNICATION, "m", meta={"destination": arg})
    for destination in DESTINATIONS:
        positions = log.communication_positions(destination)
        previous = None
        for position in positions:
            assert (
                log.previous_communication_position(destination, position)
                == previous
            )
            previous = position


@given(
    st.lists(
        st.integers(min_value=1, max_value=30), min_size=1, max_size=15,
        unique=True,
    )
)
@settings(max_examples=100, deadline=None)
def test_reception_tracking_monotone(positions):
    log = LocalLog("B")
    received = []
    previous = 0
    for position in sorted(positions):
        record = TransmissionRecord(
            source="A",
            destination="B",
            message="m",
            source_position=position,
            prev_position=previous if previous else None,
        )
        sealed = SealedTransmission(
            record=record,
            proof=QuorumProof(digest=record.digest(), signatures=()),
        )
        log.append("received", sealed)
        received.append(position)
        previous = position
        assert log.last_received_from("A") == max(received)
        assert all(log.has_received("A", p) for p in received)
