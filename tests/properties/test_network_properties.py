"""Property-based tests for the network model (hypothesis)."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.network import Network, NetworkOptions
from repro.sim.node import Message, Node
from repro.sim.simulator import Simulator
from repro.sim.topology import symmetric_topology


@dataclasses.dataclass
class Tagged(Message):
    n: int = 0


class Sink(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seen = []

    def handle_tagged(self, msg, src):
        self.seen.append((src, msg.n))


def build(rtt, seed=0, options=None):
    sim = Simulator(seed=seed)
    network = Network(sim, symmetric_topology(["A", "B"], rtt), options)
    a = Sink(sim, network, "a", "A")
    b = Sink(sim, network, "b", "B")
    return sim, a, b


@given(
    sizes=st.lists(
        st.integers(min_value=0, max_value=2_000_000),
        min_size=1,
        max_size=20,
    ),
    rtt=st.floats(min_value=1.0, max_value=200.0),
)
@settings(max_examples=60, deadline=None)
def test_same_link_traffic_is_fifo(sizes, rtt):
    # One sender, one receiver: deliveries preserve send order no
    # matter how payload sizes vary (egress and ingress both serialize).
    sim, a, b = build(rtt)
    for index, size in enumerate(sizes):
        a.send("b", Tagged(payload_bytes=size, n=index))
    sim.run()
    assert [n for _src, n in b.seen] == list(range(len(sizes)))


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=1_000_000),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=60, deadline=None)
def test_delivery_time_at_least_propagation_plus_serialization(sizes):
    options = NetworkOptions(bandwidth_mb_per_s=100.0)
    sim, a, b = build(rtt=20.0, options=options)
    for index, size in enumerate(sizes):
        a.send("b", Tagged(payload_bytes=size, n=index))
    sim.run()
    bytes_per_ms = 100.0 * 1e3
    total_bytes = sum(size + 128 for size in sizes)
    # The last delivery cannot beat egress serialization of everything
    # plus one propagation delay.
    lower_bound = total_bytes / bytes_per_ms + 10.0
    last_delivery = sim.now
    assert last_delivery >= lower_bound - 1e-6


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_network_is_deterministic_per_seed(seed):
    def run():
        sim, a, b = build(
            rtt=30.0, seed=seed, options=NetworkOptions(jitter_ms=3.0)
        )
        for index in range(10):
            a.send("b", Tagged(payload_bytes=index * 1000, n=index))
        sim.run()
        return sim.now, [n for _src, n in b.seen]

    assert run() == run()


@given(
    drop_every=st.integers(min_value=2, max_value=5),
    count=st.integers(min_value=4, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_drop_filters_drop_exactly_what_they_match(drop_every, count):
    sim, a, b = build(rtt=10.0)
    sim  # noqa: B018
    a.network.add_drop_filter(
        lambda src, dst, msg: msg.n % drop_every == 0
    )
    for index in range(count):
        a.send("b", Tagged(n=index))
    sim.run()
    expected = [n for n in range(count) if n % drop_every != 0]
    assert [n for _src, n in b.seen] == expected
