"""Property-based tests for the canonical digest (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.digest import stable_digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import QuorumProof, collect_signatures, sign, verify

# JSON-ish values that stable_digest must canonicalize.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        st.tuples(children, children),
    ),
    max_leaves=20,
)


@given(values)
@settings(max_examples=200, deadline=None)
def test_digest_is_deterministic(value):
    assert stable_digest(value) == stable_digest(value)


@given(st.dictionaries(st.text(max_size=8), scalars, min_size=2, max_size=6))
@settings(max_examples=100, deadline=None)
def test_digest_ignores_dict_insertion_order(mapping):
    items = list(mapping.items())
    reversed_mapping = dict(reversed(items))
    assert stable_digest(mapping) == stable_digest(reversed_mapping)


@given(values, values)
@settings(max_examples=200, deadline=None)
def test_distinct_values_rarely_collide(a, b):
    if a != b:
        # SHA-256 collisions are out of reach; any equality here means a
        # canonicalization bug (two distinct values mapping to one form).
        da, db = stable_digest(a), stable_digest(b)
        if da == db:
            # Permit int/float equal values like 1 == 1.0? We digest
            # them differently on purpose, so even that must not collide.
            raise AssertionError(f"collision: {a!r} vs {b!r}")


@given(st.text(alphabet=string.ascii_letters, min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_any_registered_node_signature_verifies(node_id):
    registry = KeyRegistry(seed=5)
    registry.register(node_id)
    digest = stable_digest(("payload", node_id))
    assert verify(registry, sign(registry, node_id, digest), digest)


@given(
    st.lists(
        st.sampled_from(["n0", "n1", "n2", "n3", "n4", "n5"]),
        min_size=0,
        max_size=6,
        unique=True,
    ),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_proof_validity_iff_enough_distinct_signers(signers, required):
    registry = KeyRegistry(seed=6)
    registry.register_all(["n0", "n1", "n2", "n3", "n4", "n5"])
    digest = stable_digest("quorum-payload")
    proof = QuorumProof.build(
        digest, collect_signatures(registry, signers, digest)
    )
    assert proof.is_valid(registry, required) == (len(signers) >= required)
