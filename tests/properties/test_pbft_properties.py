"""Property-based tests for PBFT safety under random fault schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pbft.byzantine import SilentReplica, TamperingVoter
from repro.pbft.config import PBFTConfig
from tests.pbft.helpers import make_group

FAST = PBFTConfig(request_timeout_ms=30.0, view_change_timeout_ms=60.0)


@given(
    byzantine_index=st.integers(min_value=1, max_value=3),
    byzantine_class=st.sampled_from([SilentReplica, TamperingVoter]),
    values=st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_one_byzantine_replica_never_breaks_agreement(
    byzantine_index, byzantine_class, values, seed
):
    sim, replicas = make_group(
        seed=seed, config=FAST, overrides={byzantine_index: byzantine_class}
    )
    submitter = replicas[0]
    futures = [submitter.submit(value) for value in values]
    sim.run(until=2000.0, max_events=20_000_000)
    honest = [
        replica
        for index, replica in enumerate(replicas)
        if index != byzantine_index
    ]
    logs = [
        [(e.seq, e.value) for e in replica.executed_entries]
        for replica in honest
    ]
    longest = max(logs, key=len)
    for log in logs:
        assert log == longest[: len(log)]  # prefix agreement
    assert all(future.resolved for future in futures)  # liveness


@given(
    crash_after=st.integers(min_value=0, max_value=4),
    values=st.lists(st.text(min_size=1, max_size=4), min_size=2, max_size=6),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_single_crash_at_random_point_preserves_prefix_agreement(
    crash_after, values, seed
):
    sim, replicas = make_group(seed=seed, config=FAST)
    victim = replicas[3]

    def workload():
        for index, value in enumerate(values):
            if index == crash_after:
                victim.crash()
            yield replicas[0].submit(value)

    sim.run_until_resolved(sim.spawn(workload()), max_events=30_000_000)
    sim.run(until=sim.now + 100)
    live = [replica for replica in replicas if not replica.crashed]
    logs = [
        [(e.seq, e.value) for e in replica.executed_entries]
        for replica in live
    ]
    longest = max(logs, key=len)
    for log in logs:
        assert log == longest[: len(log)]
    executed = [value for _seq, value in longest]
    assert executed == list(values)
