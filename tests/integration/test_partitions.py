"""Wide-area partition scenarios: Blockplane's delivery machinery must
heal once connectivity returns."""

from repro.core import BlockplaneConfig
from repro.sim.faults import FaultInjector

from tests.conftest import build_pair


def partition_config():
    return BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )


def test_messages_sent_during_partition_arrive_after_heal(sim):
    deployment = build_pair(sim, config=partition_config())
    injector = FaultInjector(sim, deployment.network)
    a_nodes = deployment.directory.unit_members("A")
    b_nodes = deployment.directory.unit_members("B")
    injector.partition(a_nodes, b_nodes, start=0.0, end=1_000.0)
    got = []

    def receiver():
        while len(got) < 3:
            message = yield deployment.api("B").receive("A")
            got.append(message)

    sim.spawn(receiver())

    def sender():
        for index in range(3):
            yield deployment.api("A").send(f"m{index}", to="B")

    sim.run_until_resolved(sim.spawn(sender()), max_events=50_000_000)
    # Sends are durable locally even while partitioned.
    assert got == []
    sim.run(until=800.0, max_events=50_000_000)
    assert got == []  # still partitioned
    sim.run(until=6_000.0, max_events=100_000_000)
    assert got == [f"m{index}" for index in range(3)]


def test_partition_does_not_block_local_commits(sim):
    deployment = build_pair(sim, config=partition_config())
    injector = FaultInjector(sim, deployment.network)
    injector.partition(
        deployment.directory.unit_members("A"),
        deployment.directory.unit_members("B"),
        start=0.0,
    )
    positions = []

    def committer():
        for index in range(5):
            position = yield deployment.api("A").log_commit(f"v{index}")
            positions.append(position)

    sim.run_until_resolved(sim.spawn(committer()), max_events=20_000_000)
    assert positions == [1, 2, 3, 4, 5]


def test_bidirectional_traffic_resumes_after_heal(sim):
    deployment = build_pair(sim, config=partition_config())
    injector = FaultInjector(sim, deployment.network)
    injector.partition(
        deployment.directory.unit_members("A"),
        deployment.directory.unit_members("B"),
        start=100.0,
        end=900.0,
    )
    got_a, got_b = [], []

    def receiver_a():
        message = yield deployment.api("A").receive("B")
        got_a.append(message)

    def receiver_b():
        message = yield deployment.api("B").receive("A")
        got_b.append(message)

    sim.spawn(receiver_a())
    sim.spawn(receiver_b())

    def crossfire():
        # Sent at t≈0 (before the partition): delivered normally.
        yield deployment.api("A").send("early", to="B")
        yield sim.sleep(300.0)  # now inside the partition window
        yield deployment.api("B").send("during", to="A")

    sim.run_until_resolved(sim.spawn(crossfire()), max_events=50_000_000)
    sim.run(until=8_000.0, max_events=100_000_000)
    assert got_b == ["early"]
    assert got_a == ["during"]
