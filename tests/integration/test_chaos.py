"""Chaos soak: a mixed workload under a randomized (but seeded) failure
schedule, with global invariants checked at the end.

This is the kind of test a production resilient-data-management system
ships with: not "does scenario X work" but "does ANY schedule of
crashes, recoveries, and losses within the fault budget preserve the
invariants".
"""

import pytest

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.sim.simulator import Simulator
from repro.sim.topology import aws_four_dc_topology

SITES = ("C", "O", "V", "I")


def run_chaos(seed: int, batches: int = 15) -> dict:
    """One chaos run; returns end-state for invariant checking."""
    sim = Simulator(seed=seed)
    deployment = BlockplaneDeployment(
        sim,
        aws_four_dc_topology(),
        BlockplaneConfig(
            f_independent=1,
            reserve_poll_interval_ms=200.0,
            reserve_gap_threshold=0,
        ),
    )
    rng = sim.rng
    # Fault schedule: each site gets ONE random non-gateway node bounced
    # at random times (within the f=1 budget per unit).
    for site in SITES:
        victim = deployment.unit(site).nodes[rng.randrange(1, 4)]
        down_at = rng.uniform(50.0, 1_500.0)
        up_at = down_at + rng.uniform(100.0, 1_000.0)
        sim.schedule_at(down_at, victim.crash)
        sim.schedule_at(up_at, victim.recover)

    sent = {site: [] for site in SITES}
    received = {site: [] for site in SITES}

    def receiver(site):
        api = deployment.api(site)
        while True:
            message = yield api.receive()
            received[site].append(message)

    for site in SITES:
        sim.spawn(receiver(site))

    def sender(site):
        api = deployment.api(site)
        for index in range(batches):
            target = SITES[(SITES.index(site) + 1 + index) % 3]
            if target == site:
                target = SITES[(SITES.index(site) + 3) % 4]
            message = f"{site}->{target}#{index}"
            yield api.log_commit(f"state-{site}-{index}", payload_bytes=200)
            yield api.send(message, to=target, payload_bytes=200)
            sent[site].append((target, message))
            yield sim.sleep(rng.uniform(1.0, 40.0))

    processes = [sim.spawn(sender(site)) for site in SITES]
    sim.run(until=30_000.0, max_events=400_000_000)
    assert all(process.resolved for process in processes), "senders stalled"
    # Let the tail of deliveries settle.
    sim.run(until=sim.now + 10_000.0, max_events=400_000_000)
    return {"deployment": deployment, "sent": sent, "received": received}


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_chaos_invariants(seed):
    state = run_chaos(seed)
    deployment = state["deployment"]

    # Invariant 1 — every sent message was delivered exactly once, in
    # per-pair order.
    expected = {}
    for source, items in state["sent"].items():
        for target, message in items:
            expected.setdefault((source, target), []).append(message)
    delivered = {}
    for target, messages in state["received"].items():
        for message in messages:
            source = message.split("->", 1)[0]
            delivered.setdefault((source, target), []).append(message)
    assert delivered == expected

    # Invariant 2 — within every unit, all live nodes hold identical
    # Local Logs (Lemma 1), and recovered nodes caught up.
    for site in SITES:
        unit = deployment.unit(site)
        logs = [
            [(entry.position, entry.record_type, entry.digest())
             for entry in node.local_log]
            for node in unit.nodes
            if not node.crashed
        ]
        longest = max(logs, key=len)
        for log in logs:
            assert log == longest[: len(log)]
        lengths = {len(log) for log in logs}
        # Everyone converged (the settle window is generous).
        assert len(lengths) == 1, f"{site}: log lengths diverged {lengths}"

    # Invariant 3 — no duplicate receptions anywhere.
    for site in SITES:
        log = deployment.unit(site).gateway_node().local_log
        keys = [
            (entry.value.record.source, entry.value.record.source_position)
            for entry in log
            if entry.record_type == "received"
        ]
        assert len(keys) == len(set(keys))
