"""Contention scenarios: concurrent conflicting operations across
participants must resolve consistently."""

from repro.apps.bp_paxos import BlockplanePaxosParticipant, PaxosVerification
from repro.apps.lockservice import LockServiceParticipant, LockVerification
from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.sim.topology import aws_four_dc_topology


def test_racing_lock_acquirers_exactly_one_wins(sim):
    topology = aws_four_dc_topology()
    deployment = BlockplaneDeployment(
        sim,
        topology,
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda name: LockVerification(name),
    )
    parts = {
        site: LockServiceParticipant(deployment.api(site), topology.site_names)
        for site in topology.site_names
    }
    for participant in parts.values():
        participant.start()
    # Three remote participants race for a lock hosted at V.
    futures = {
        site: parts[site].acquire("V/contended", f"{site}-worker")
        for site in ("C", "O", "I")
    }
    sim.run(until=10_000.0, max_events=200_000_000)
    outcomes = {site: future.result() for site, future in futures.items()}
    winners = [site for site, granted in outcomes.items() if granted]
    assert len(winners) == 1
    holder = parts["V"].table.holders["V/contended"]
    assert holder == f"{winners[0]}-worker"
    # Every replica of V's unit replays the same single grant.
    for node in deployment.unit("V").nodes:
        assert node.routines.table.holders["V/contended"] == holder


def test_dueling_blockplane_paxos_leaders_never_diverge(sim):
    topology = aws_four_dc_topology()
    deployment = BlockplaneDeployment(
        sim,
        topology,
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda _name: PaxosVerification(),
    )
    parts = {
        site: BlockplanePaxosParticipant(
            deployment.api(site), topology.site_names
        )
        for site in topology.site_names
    }
    for participant in parts.values():
        participant.start()

    def campaign(site):
        leader = parts[site]
        elected = yield sim.spawn(leader.leader_election())
        if elected:
            yield sim.spawn(leader.replicate(f"value-of-{site}"))

    sim.spawn(campaign("C"))
    sim.spawn(campaign("V"))
    sim.run(until=20_000.0, max_events=400_000_000)
    # Safety: any slot chosen by multiple participants has one value.
    slots = set()
    for participant in parts.values():
        slots.update(participant.chosen)
    for slot in slots:
        values = {
            participant.chosen[slot]
            for participant in parts.values()
            if slot in participant.chosen
        }
        assert len(values) == 1, f"slot {slot}: {values}"


def test_sequential_lock_handoff_across_participants(sim):
    topology = aws_four_dc_topology()
    deployment = BlockplaneDeployment(
        sim,
        topology,
        BlockplaneConfig(f_independent=1),
        routines_factory=lambda name: LockVerification(name),
    )
    parts = {
        site: LockServiceParticipant(deployment.api(site), topology.site_names)
        for site in topology.site_names
    }
    for participant in parts.values():
        participant.start()

    def handoff():
        granted = yield parts["C"].acquire("V/baton", "c-runner")
        assert granted is True
        # While C holds it, O is denied.
        denied = yield parts["O"].acquire("V/baton", "o-runner")
        assert denied is False
        released = yield parts["C"].release("V/baton", "c-runner")
        assert released is True
        # Now O can take it.
        granted = yield parts["O"].acquire("V/baton", "o-runner")
        assert granted is True
        return True

    result = sim.run_until_resolved(
        sim.spawn(handoff()), max_events=400_000_000
    )
    assert result is True
    assert parts["V"].table.holders["V/baton"] == "o-runner"
