"""End-to-end failure scenarios across the full middleware stack."""

from repro.core import BlockplaneConfig
from repro.pbft.config import PBFTConfig

from tests.conftest import build_four_dc, build_pair, build_single_dc

FAST_PBFT = PBFTConfig(request_timeout_ms=20.0, view_change_timeout_ms=40.0)


def test_unit_leader_crash_mid_stream_commits_continue(sim):
    deployment = build_single_dc(
        sim, config=BlockplaneConfig(f_independent=1, pbft=FAST_PBFT)
    )
    api = deployment.api("DC")
    committed = []

    def workload():
        for index in range(10):
            if index == 5:
                deployment.unit("DC").nodes[0].crash()  # the leader
            position = yield api.log_commit(f"v{index}")
            committed.append(position)

    sim.run_until_resolved(sim.spawn(workload()), max_events=50_000_000)
    assert len(committed) == 10
    live = deployment.unit("DC").live_nodes()
    values = [
        [e.value for e in node.local_log] for node in live
    ]
    assert all(v == values[0] for v in values)
    assert set(f"v{i}" for i in range(10)).issubset(set(values[0]))


def test_replica_crash_and_recovery_catches_up_full_stack(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    victim = deployment.unit("DC").nodes[2]
    victim.crash()

    def workload():
        for index in range(5):
            yield api.log_commit(f"v{index}")

    sim.run_until_resolved(sim.spawn(workload()), max_events=20_000_000)
    victim.recover()
    sim.run(until=sim.now + 200)
    assert len(victim.local_log) == 5
    assert [e.value for e in victim.local_log] == [f"v{i}" for i in range(5)]


def test_wide_area_messaging_survives_receiver_node_crash(sim):
    deployment = build_pair(sim)
    # One receiver-unit node (a transmission fanout target) is down.
    deployment.unit("B").nodes[1].crash()
    got = []

    def receiver():
        message = yield deployment.api("B").receive("A")
        got.append(message)

    sim.spawn(receiver())
    sim.run_until_resolved(deployment.api("A").send("resilient", to="B"))
    sim.run(until=2000.0, max_events=50_000_000)
    assert got == ["resilient"]


def test_messages_committed_before_crash_recoverable_after(sim):
    deployment = build_pair(sim)
    api = deployment.api("A")

    def workload():
        yield api.log_commit("precious-state")

    sim.run_until_resolved(sim.spawn(workload()))
    sim.run(until=sim.now + 10)
    # The whole unit bounces (benign power cycle).
    unit = deployment.unit("A")
    unit.crash()
    sim.run(until=sim.now + 50)
    unit.recover()
    sim.run(until=sim.now + 200)
    for node in unit.nodes:
        assert [e.value for e in node.local_log] == ["precious-state"]


def test_sender_site_crash_after_send_message_still_delivered(sim):
    # Durability before transmission: once send() resolves, the message
    # is committed at f+1 honest nodes; even if the daemon's node dies
    # right after shipping, the message reaches the destination.
    deployment = build_pair(sim)
    got = []

    def receiver():
        message = yield deployment.api("B").receive("A")
        got.append(message)

    sim.spawn(receiver())
    sim.run_until_resolved(deployment.api("A").send("last-words", to="B"))
    sim.run(until=sim.now + 15)  # daemon ships within the local window
    deployment.unit("A").crash()
    sim.run(until=3000.0, max_events=50_000_000)
    assert got == ["last-words"]


def test_geo_deployment_full_bounce_of_secondary(sim):
    config = BlockplaneConfig(
        f_independent=1, f_geo=1, heartbeat_suspect_ms=200.0
    )
    sets = {
        "C": ["C", "V", "O"],
        "V": ["C", "V", "O"],
        "O": ["C", "V", "O"],
        "I": ["I", "V", "C"],
    }
    deployment = build_four_dc(sim, config=config, replication_sets=sets)
    api = deployment.api("C")

    def workload(n, tag):
        for index in range(n):
            yield api.log_commit(f"{tag}-{index}")

    sim.run_until_resolved(sim.spawn(workload(3, "before")),
                           max_events=50_000_000)
    deployment.unit("O").crash()
    sim.run_until_resolved(sim.spawn(workload(3, "during")),
                           max_events=100_000_000)
    deployment.unit("O").recover()
    sim.run_until_resolved(sim.spawn(workload(3, "after")),
                           max_events=100_000_000)
    log = deployment.unit("C").gateway_node().local_log
    values = [e.value for e in log]
    for tag in ("before", "during", "after"):
        for index in range(3):
            assert f"{tag}-{index}" in values
