"""Message-flow invariants matching the paper's Figure 3 diagrams.

Figure 3(a): a local commit is entirely intra-datacenter — three PBFT
phases plus replies, no wide-area traffic.

Figure 3(b): communicating a message costs one local commit at the
source, one signature-collection round, ONE wide-area transfer, and one
local commit at the destination. The whole point of the hierarchy is
that the wide-area message count matches the benign protocol — exactly
one transmission crosses datacenters per send (per fanout target).
"""


from repro.core.messages import (
    MirrorRequest,
    SignRequest,
    SignResponse,
    TransmissionMessage,
)
from repro.pbft.messages import Commit, PrePrepare, Prepare, Reply

from tests.conftest import build_pair


class FlowCounter:
    """Counts messages by type and locality via a network tamper hook
    (which observes every non-dropped message)."""

    def __init__(self, network):
        self.network = network
        self.local = {}
        self.wide_area = {}
        network.add_tamper_hook(self._observe)

    def _observe(self, src, dst, message):
        src_site = self.network.node(src).site
        dst_site = self.network.node(dst).site
        bucket = self.local if src_site == dst_site else self.wide_area
        name = type(message).__name__
        bucket[name] = bucket.get(name, 0) + 1
        return message

    def reset(self):
        self.local.clear()
        self.wide_area.clear()


def test_fig3a_local_commit_stays_inside_the_datacenter(sim):
    deployment = build_pair(sim)
    counter = FlowCounter(deployment.network)
    api = deployment.api("A")
    sim.run_until_resolved(api.log_commit("state-change"))
    sim.run(until=sim.now + 5)
    # No wide-area traffic at all for a log-commit with fg = 0.
    assert counter.wide_area == {}
    # The three PBFT phases + replies, all local.
    assert counter.local.get("PrePrepare", 0) == 3      # leader -> 3
    assert counter.local.get("Prepare", 0) == 12        # 4 x 3 broadcasts
    assert counter.local.get("Commit", 0) == 12
    assert counter.local.get("Reply", 0) >= 3           # replicas -> origin


def test_fig3b_send_crosses_the_wide_area_exactly_fanout_times(sim):
    deployment = build_pair(sim)
    counter = FlowCounter(deployment.network)
    api_a = deployment.api("A")
    api_b = deployment.api("B")
    received = api_b.receive("A")
    sim.run_until_resolved(api_a.send("message", to="B"))
    sim.run(until=sim.now + 100)
    assert received.resolved
    # Exactly `transmission_fanout` wide-area transmissions, each
    # answered by one transport-level ack; nothing else crosses
    # datacenters.
    fanout = deployment.config.transmission_fanout
    assert counter.wide_area == {
        "TransmissionMessage": fanout,
        "TransmissionAck": fanout,
    }
    # Signature collection is one local round: requests out, responses
    # back (the daemon's own signature needs no message).
    assert counter.local.get("SignRequest", 0) == 3
    assert 1 <= counter.local.get("SignResponse", 0) <= 3


def test_fig3b_receive_side_commits_locally(sim):
    deployment = build_pair(sim)
    api_a = deployment.api("A")
    api_b = deployment.api("B")
    received = api_b.receive("A")
    counter = FlowCounter(deployment.network)
    sim.run_until_resolved(api_a.send("m", to="B"))
    sim.run(until=sim.now + 100)
    assert received.resolved
    # Two local commits happened (source commits the communication
    # record, destination commits the received record): two rounds of
    # PBFT pre-prepares, one per unit.
    assert counter.local.get("PrePrepare", 0) == 6
    # The reply path (receive -> application) costs no messages at all.


def test_wide_area_message_count_scales_with_sends_not_time(sim):
    deployment = build_pair(sim)
    counter = FlowCounter(deployment.network)
    api = deployment.api("A")

    def sender():
        for index in range(5):
            yield api.send(f"m{index}", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=sim.now + 200)
    fanout = deployment.config.transmission_fanout
    assert counter.wide_area.get("TransmissionMessage", 0) == 5 * fanout
    # Idle time adds nothing (no polling chatter in the normal case
    # until the reserves' first probe).
    before = dict(counter.wide_area)
    sim.run(until=sim.now + 100)
    assert counter.wide_area == before
