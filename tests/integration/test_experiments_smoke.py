"""Smoke tests: every experiment driver runs and returns sane shapes.

The full-size assertions live in ``benchmarks/``; these quick versions
keep the drivers themselves under unit-test coverage.
"""

from repro.experiments import (
    fig4_local_commit,
    fig5_geo,
    fig6_communication,
    fig7_consensus,
    fig8_failures,
    table1_topology,
    table2_scalability,
)


def test_table1_is_the_paper_matrix():
    matrix = table1_topology.run()
    assert matrix[("C", "O")] == 19.0
    assert matrix[("V", "I")] == 70.0


def test_fig4_driver_small():
    result = fig4_local_commit.run_one(
        batch_bytes=100_000, measured=20, warmup=2
    )
    assert 0.8 < result["latency_ms"] < 2.0
    assert 50.0 < result["throughput_mb_s"] < 120.0


def test_table2_driver_small():
    metrics = table2_scalability.run_one(f_independent=2, measured=10, warmup=2)
    assert metrics["nodes"] == 7
    assert metrics["latency_ms"] > 1.2


def test_fig5_driver_small():
    latency = fig5_geo.run_one("C", 1, measured=5, warmup=1)
    assert 19.0 < latency < 30.0


def test_fig6_driver_small():
    latency = fig6_communication.run_pair("C", "O", rounds=3, warmup=1)
    assert 19.0 < latency < 30.0


def test_fig7_driver_small():
    paxos = fig7_consensus.run_paxos("C", rounds=3)
    blockplane = fig7_consensus.run_blockplane_paxos("C", rounds=3)
    assert paxos < blockplane < paxos * 1.4


def test_fig8_backup_driver_small():
    result = fig8_failures.run_backup_failure(batches=20, fail_at=10)
    assert result["steady_after_ms"] > result["steady_before_ms"]


def test_fig8_primary_driver_small():
    result = fig8_failures.run_primary_failure(batches=30, fail_at=10)
    assert result["final_primary"] == "V"
    assert result["steady_after_ms"] > result["steady_before_ms"]
