"""End-to-end byzantine scenarios through the whole middleware stack —
the paper's Lemmas 1–3 exercised as running systems."""

from repro.core import BlockplaneConfig
from repro.core.node import BlockplaneNode

from tests.conftest import build_pair


class SilentBlockplaneNode(BlockplaneNode):
    """A unit member that participates in nothing."""

    def on_message(self, message, src_id) -> None:
        return


class LyingSignerNode(BlockplaneNode):
    """Signs transmission records it has NOT verified against its log
    (and even ones that contradict it) — a corrupt attestor."""

    def _attest(self, msg) -> bool:  # noqa: D102
        return True


def test_lemma1_unit_agreement_with_silent_member(sim):
    deployment = build_pair(
        sim, config=BlockplaneConfig(f_independent=1)
    )
    # Re-plant: one silent node inside A's unit.
    deployment.unit("A").nodes[2].on_message = lambda m, s: None

    def workload():
        api = deployment.api("A")
        for index in range(5):
            yield api.log_commit(f"v{index}")

    sim.run_until_resolved(sim.spawn(workload()), max_events=50_000_000)
    sim.run(until=sim.now + 100)
    honest = [
        node
        for index, node in enumerate(deployment.unit("A").nodes)
        if index != 2
    ]
    logs = [[e.value for e in node.local_log] for node in honest]
    assert all(log == logs[0] for log in logs)
    assert logs[0] == [f"v{index}" for index in range(5)]


def test_lemma2_receiver_only_accepts_unit_backed_messages(sim):
    # One corrupt signer is not enough: a transmission record still
    # needs f+1 = 2 signatures, and the second must come from a node
    # that actually has the record in its log.
    overrides = {"A-1": LyingSignerNode}
    deployment = build_pair(
        sim,
        config=BlockplaneConfig(f_independent=1),
    )
    # Forge a transmission signed only by the corrupt node.
    from repro.core.messages import TransmissionMessage
    from repro.core.records import SealedTransmission, TransmissionRecord
    from repro.crypto.signatures import QuorumProof, collect_signatures

    record = TransmissionRecord(
        source="A",
        destination="B",
        message="never-sent",
        source_position=1,
        prev_position=None,
    )
    proof = QuorumProof.build(
        record.digest(),
        collect_signatures(deployment.registry, ["A-1"], record.digest()),
    )
    for node in deployment.unit("B").nodes:
        node.handle_transmission_message(
            TransmissionMessage(sealed=SealedTransmission(record, proof)),
            "A-1",
        )
    sim.run(until=1000.0, max_events=20_000_000)
    log_b = deployment.unit("B").gateway_node().local_log
    assert all(entry.record_type != "received" for entry in log_b)


def test_lemma2_message_order_cannot_be_manipulated(sim):
    # A byzantine daemon delivering messages out of order cannot make
    # the application observe them out of order.
    deployment = build_pair(sim)
    api_a = deployment.api("A")
    api_b = deployment.api("B")
    # Deactivate the honest daemon; we play a byzantine one below.
    deployment.unit("A").daemons["B"].active = False
    positions = []

    def sender():
        for index in range(3):
            position = yield api_a.send(f"m{index}", to="B")
            positions.append(position)

    sim.run_until_resolved(sim.spawn(sender()), max_events=20_000_000)
    sim.run(until=sim.now + 20)
    # Byzantine delivery: ship records in reverse order.
    gateway = deployment.unit("A").gateway_node()
    daemon = deployment.unit("A").daemons["B"]
    daemon.active = True
    for position in reversed(positions):
        daemon.ship(gateway.local_log.read(position))
    got = []

    def receiver():
        while len(got) < 3:
            message = yield api_b.receive("A")
            got.append(message)

    sim.spawn(receiver())
    sim.run(until=3000.0, max_events=50_000_000)
    assert got == ["m0", "m1", "m2"]


def test_lemma3_illegal_transition_cannot_enter_log(sim):
    # A byzantine unit member proposes a state transition the
    # verification routines reject; no honest node ever applies it.
    from repro.core.verification import VerificationRoutines

    class OnlyEven(VerificationRoutines):
        def verify_log_commit(self, value, meta):
            return isinstance(value, int) and value % 2 == 0

    deployment = build_pair(
        sim,
        config=BlockplaneConfig(f_independent=1),
    )
    unit = deployment.unit("A")
    for node in unit.nodes:
        node.routines = OnlyEven()
    api = deployment.api("A")
    good = api.log_commit(2)
    sim.run_until_resolved(good, max_events=20_000_000)
    # Bypass the honest gateway: a corrupt node proposes directly.
    corrupt = unit.nodes[1]
    bad = corrupt.local_commit(3, "log-commit", None, 10)
    sim.run(until=2000.0, max_events=20_000_000)
    for node in unit.nodes:
        values = [e.value for e in node.local_log]
        assert 3 not in values
        assert 2 in values


def test_byzantine_member_cannot_forge_counter_increments(sim):
    # The paper's running example: a malicious node trying to commit an
    # increment with no received message behind it.
    from repro.apps.counter import CounterVerification

    deployment = build_pair(
        sim,
        config=BlockplaneConfig(f_independent=1),
    )
    unit = deployment.unit("B")
    for node in unit.nodes:
        routines = CounterVerification()
        routines.bind(node)
        node.routines = routines
    corrupt = unit.nodes[2]
    forged = corrupt.local_commit(
        {"kind": "increment", "cause": "thin-air"}, "log-commit", None, 10
    )
    sim.run(until=2000.0, max_events=20_000_000)
    for node in unit.nodes:
        assert all(
            not (
                isinstance(e.value, dict)
                and e.value.get("kind") == "increment"
            )
            for e in node.local_log
        )
