"""Smoke tests: the runnable examples execute end to end."""

import runpy
import sys


def run_example(path):
    argv = sys.argv
    sys.argv = [path]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = argv


def test_quickstart_example(capsys):
    run_example("examples/quickstart.py")
    out = capsys.readouterr().out
    assert "V received: 'hello from California'" in out
    assert "'received'" in out


def test_counter_example(capsys):
    run_example("examples/counter_protocol.py")
    out = capsys.readouterr().out
    assert "V's counter: 3" in out
    assert "mallory rejected" in out


def test_bank_example(capsys):
    run_example("examples/bank_ledger.py")
    out = capsys.readouterr().out
    assert "Total money in the system: $175" in out
    assert "Forged $1M credit rejected: True" in out
