"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.core import BlockplaneConfig, BlockplaneDeployment

from repro.sim.simulator import Simulator
from repro.sim.topology import (
    aws_four_dc_topology,
    single_dc_topology,
    symmetric_topology,
)


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


def build_single_dc(
    sim: Simulator,
    f_independent: int = 1,
    routines_factory=None,
    node_class_overrides=None,
    config: BlockplaneConfig = None,
) -> BlockplaneDeployment:
    """One participant ('DC'), 3f+1 nodes, no wide area."""
    return BlockplaneDeployment(
        sim,
        single_dc_topology("DC"),
        config or BlockplaneConfig(f_independent=f_independent),
        routines_factory=routines_factory,
        node_class_overrides=node_class_overrides,
    )


def build_four_dc(
    sim: Simulator,
    config: BlockplaneConfig = None,
    routines_factory=None,
    node_class_overrides=None,
    replication_sets=None,
) -> BlockplaneDeployment:
    """The paper's four-datacenter AWS deployment."""
    return BlockplaneDeployment(
        sim,
        aws_four_dc_topology(),
        config or BlockplaneConfig(f_independent=1),
        routines_factory=routines_factory,
        node_class_overrides=node_class_overrides,
        replication_sets=replication_sets,
    )


def build_pair(
    sim: Simulator,
    rtt_ms: float = 20.0,
    config: BlockplaneConfig = None,
) -> BlockplaneDeployment:
    """Two participants A and B with a symmetric RTT."""
    return BlockplaneDeployment(
        sim,
        symmetric_topology(["A", "B"], rtt_ms),
        config or BlockplaneConfig(f_independent=1),
    )


def drain(sim: Simulator, until: float = 10_000.0, max_events: int = 5_000_000):
    """Run the simulation for a bounded virtual time window."""
    sim.run(until=until, max_events=max_events)


def resolve(sim: Simulator, future, max_events: int = 10_000_000):
    """Run until a future resolves; return its value."""
    return sim.run_until_resolved(future, max_events=max_events)
