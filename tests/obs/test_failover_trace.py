"""A commit that survives leader failover renders as ONE trace tree.

The submitting gateway (A-0, view-0 leader) is crashed before the
commit is submitted; the surviving replicas view-change to A-1 and
commit the request in view 1. Instrumentation must stitch the whole
journey — original submission, view change, re-propose, apply on every
survivor — onto a single trace.
"""

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.obs import Observability
from repro.sim.simulator import Simulator
from repro.sim.topology import symmetric_topology


def _failover_commit(obs: Observability):
    """Crash the view-0 leader of A, then commit through the API."""
    sim = Simulator(seed=5)
    obs.bind_clock(sim)
    deployment = BlockplaneDeployment(
        sim,
        symmetric_topology(["A", "B"], 20.0),
        BlockplaneConfig(f_independent=1),
        obs=obs,
    )
    deployment.unit("A").nodes[0].crash()
    future = deployment.api("A").log_commit("after-failover")
    position = sim.run_until_resolved(future, max_events=10_000_000)
    return deployment, position


def test_failover_commit_is_one_trace_tree():
    obs = Observability(enabled=True)
    _, position = _failover_commit(obs)
    assert position == 1  # the commit survived the crashed leader

    # The commit landed in view 1 — a real failover happened.
    proposals = [e for e in obs.journal.of_kind("pbft.pre_prepare")
                 if e.participant == "A"]
    assert proposals
    assert {e.args["view"] for e in proposals} == {1}
    assert obs.journal.of_kind("pbft.view_change")
    assert obs.journal.of_kind("pbft.new_view")

    # Every proposal carries the SAME, non-None trace context.
    traces = {e.trace for e in proposals}
    assert len(traces) == 1
    (trace,) = traces
    assert trace is not None

    # Every survivor's apply is stitched onto that same trace,
    # including the first replica to apply (registration happens
    # before its own append).
    appends = [e for e in obs.journal.of_kind("log.append")
               if e.participant == "A"]
    assert sorted(e.node for e in appends) == ["A-1", "A-2", "A-3"]
    assert {e.trace for e in appends} == {trace}


def test_failover_spans_share_one_root():
    obs = Observability(enabled=True)
    _failover_commit(obs)
    proposals = [e for e in obs.journal.of_kind("pbft.pre_prepare")
                 if e.participant == "A"]
    trace_id = proposals[0].trace[0]
    spans = [s for s in obs.spans if s.trace_id == trace_id]
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1  # one tree, rooted at the commit span
    assert roots[0].name == "commit"
    # The consensus work after the view change hangs off that root.
    assert any(s.name.startswith("pbft.") for s in spans)
