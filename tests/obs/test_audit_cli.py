"""`python -m repro obs-audit` smoke: exit codes, artifacts, JSON."""

import json

from repro.obs.forensics.__main__ import main


def test_unknown_profile_exits_2(capsys):
    assert main(["--profile", "no-such-profile"]) == 2
    assert "unknown profile" in capsys.readouterr().err


def test_strict_byzantine_run_writes_evidence_bundle(tmp_path, capsys):
    out = tmp_path / "audit"
    code = main([
        "--seed", "2", "--runs", "1", "--profile", "byzantine",
        "--strict", "--out", str(out),
    ])
    assert code == 0  # perfect attribution on the pinned seed
    run_dir = out / "run-0"
    for name in ("report.json", "plan.json", "score.json"):
        assert (run_dir / name).is_file()
    score = json.loads((run_dir / "score.json").read_text())
    assert score["precision"] == 1.0 and score["recall"] == 1.0
    assert score["expected"] == score["detected"] != []
    report = json.loads((run_dir / "report.json").read_text())
    assert report["accused"] == score["detected"]
    evidence = sorted((run_dir / "evidence").iterdir())
    assert evidence  # one bundle per finding
    text = capsys.readouterr().out
    assert "1/1 runs with perfect attribution" in text
    assert "ACCUSED" in text


def test_json_mode_emits_one_document(capsys):
    code = main([
        "--seed", "7", "--runs", "1", "--profile", "byzantine",
        "--fault-free", "--json", "--strict",
    ])
    assert code == 0  # fault-free: zero accusations, trivially perfect
    document = json.loads(capsys.readouterr().out)
    assert document["fault_free"] is True
    assert document["perfect_runs"] == document["total_runs"] == 1
    (run,) = document["runs"]
    assert run["report"]["accused"] == []
    assert run["plan"]["actions"] == []
    # The health/SLO summary rides along in the report document.
    assert run["report"]["health"]["participants"]
