"""Integration: obs on/off equivalence and the end-to-end commit trace.

Instrumentation is passive — it must not change what the simulation
does, only record it. These tests run the same workloads with and
without an :class:`Observability` hub and require bit-identical
results, then check that a traced cross-DC commit produces the full
span tree the tentpole promises.
"""

import json

from repro.experiments import fig4_local_commit
from repro.obs import Observability, to_chrome_trace
from repro.obs.demo import trace_commit_lifecycle


# ----------------------------------------------------------------------
# Passive-instrumentation equivalence
# ----------------------------------------------------------------------
def test_fig4_results_identical_with_obs_on_and_off():
    baseline = fig4_local_commit.run_one(
        100_000, measured=20, warmup=2, seed=3
    )
    observed = fig4_local_commit.run_one(
        100_000, measured=20, warmup=2, seed=3,
        obs=Observability(enabled=True, histogram_window_ms=1000.0),
    )
    assert observed == baseline  # bit-identical latency and throughput


def test_metrics_agree_with_workload_counts():
    obs = Observability(enabled=True)
    fig4_local_commit.run_one(1_000, measured=15, warmup=5, seed=0, obs=obs)
    commits = obs.counter("bp_commits_total", participant="V",
                          record_type="log-commit")
    assert commits.value == 20.0  # warmup + measured, all at V
    latency = obs.histogram("commit_latency_ms", participant="V")
    assert latency.count == 20
    assert latency.min > 0.0
    # Log appends count per replica: 20 commits x 4 nodes (fi=1).
    appends = obs.counter("log_appends_total", participant="V",
                          record_type="log-commit")
    assert appends.value == 80.0
    assert obs.gauge("log_length", participant="V").value >= 20.0
    # Intra-DC traffic shows up on the V->V link.
    assert obs.counter("net_bytes_total", link="V->V").value > 0.0


def test_disabled_obs_records_nothing_during_run():
    obs = Observability(enabled=False)
    fig4_local_commit.run_one(1_000, measured=5, warmup=1, seed=0, obs=obs)
    assert len(obs.registry) == 0
    assert len(obs.spans) == 0


# ----------------------------------------------------------------------
# End-to-end cross-DC commit trace
# ----------------------------------------------------------------------
def test_lifecycle_trace_covers_full_commit_path():
    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)

    assert obs.spans.open_spans() == []  # every span closed

    # The send commit's trace reaches from the API call at C through the
    # WAN hop to the reception apply at V.
    (wan,) = obs.spans.named("wan.transmit")
    assert wan.participant == "C"
    assert wan.args["destination"] == "V"
    tree = obs.spans.by_trace(wan.trace_id)
    names = {span.name for span in tree}
    assert names >= {
        "commit", "pbft.consensus", "pbft.pre_prepare", "pbft.prepare",
        "pbft.verify", "pbft.commit", "log.apply", "daemon.ship",
        "sign.collect", "wan.transmit", "receive.apply",
    }

    # Every non-root span links to a recorded parent in the same trace.
    by_id = {span.span_id: span for span in tree}
    roots = [span for span in tree if span.parent_id is None]
    assert [span.name for span in roots] == ["commit"]
    for span in tree:
        if span.parent_id is not None:
            assert by_id[span.parent_id].trace_id == span.trace_id

    # Causality: ship starts no earlier than the local apply, the WAN
    # hop spans a real wide-area latency, and the destination's apply
    # happens after the hop completes.
    (ship,) = [s for s in tree if s.name == "daemon.ship"]
    (apply_c,) = [s for s in tree if s.name == "log.apply"]
    (apply_v,) = [s for s in tree if s.name == "receive.apply"]
    assert apply_c.participant == "C"
    assert apply_v.participant == "V"
    assert ship.start_ms >= apply_c.end_ms
    assert wan.duration_ms > 10.0  # C<->V is a ~30 ms WAN link
    assert apply_v.start_ms >= wan.end_ms

    # Both sides recorded PBFT phase latencies and the WAN byte flow.
    for participant in ("C", "V"):
        hist = obs.histogram(
            "pbft_prepared_to_committed_ms", participant=participant
        )
        assert hist.count > 0
    assert obs.counter("bp_transmissions_total", source="C",
                       destination="V").value >= 1.0
    # Each of V's 4 replicas applies the reception once.
    assert obs.counter("bp_receptions_total", participant="V",
                       source="C").value == 4.0
    assert obs.counter("net_bytes_total", link="C->V").value > 0.0


def test_lifecycle_chrome_trace_exports_cleanly():
    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)
    trace = json.loads(json.dumps(to_chrome_trace(obs)))
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in spans} >= {"commit", "wan.transmit"}
    participants = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert participants >= {"C", "V"}


# ----------------------------------------------------------------------
# Golden flight-recorder journal for the canonical lifecycle
# ----------------------------------------------------------------------
def test_lifecycle_journal_matches_golden_fixture():
    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)

    journal = obs.journal
    assert journal.dropped == 0
    assert journal.recorded == len(journal.events()) == 140
    kinds = {}
    for event in journal.events():
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    # The exact event census of the canonical demo: two 4-node units
    # (2 deploys), a local commit + a send at C and the reception at V
    # (4 slots x 4 replicas = 16 pre-prepares / appends, 4 slots x
    # 4 voters x 2 phases x 3 recipients = 96 votes), one shipment
    # signed by f+1=2 extra collectors + gateway, verified at 2 of V's
    # replicas before the proof cache short-circuits the rest.
    assert kinds == {
        "deploy.unit": 2,
        "pbft.pre_prepare": 16,
        "pbft.vote": 96,
        "log.append": 16,
        "sign.response": 3,
        "daemon.ship": 1,
        "proof.verified": 2,
        "chain.advance": 4,
    }

    # The send is one causal story: the C-side communication appends,
    # the ship intent, V's proof verification, and V's reception
    # applies all share the ship's trace id.
    (ship,) = journal.of_kind("daemon.ship")
    assert ship.participant == "C" and ship.args["destination"] == "V"
    trace_id = ship.trace[0]
    comm_appends = [e for e in journal.of_kind("log.append")
                    if e.args.get("record_type") == "communication"]
    received_appends = [e for e in journal.of_kind("log.append")
                        if e.args.get("record_type") == "received"]
    assert len(comm_appends) == len(received_appends) == 4
    for event in comm_appends + received_appends:
        assert event.trace is not None
        assert event.trace[0] == trace_id
    for event in journal.of_kind("proof.verified"):
        assert event.trace[0] == trace_id

    # The journal serializes cleanly alongside the other artifacts.
    from repro.obs.exporters import journal_snapshot

    decoded = json.loads(json.dumps(journal_snapshot(obs)))
    assert decoded["recorded"] == decoded["retained"] == 140
    assert len(decoded["events"]) == 140
