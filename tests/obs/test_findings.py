"""Finding/report semantics: suspicion scoring, ordering, evidence
export."""

import json

from repro.obs.forensics import (
    ACCUSING_KINDS,
    DEFAULT_THRESHOLD,
    FINDING_SCORES,
    AuditReport,
    Finding,
)
from repro.obs.forensics.findings import sort_findings


def _finding(kind, suspect, suspect_kind="replica", participant="C",
             count=1):
    return Finding(
        kind=kind,
        suspect=suspect,
        suspect_kind=suspect_kind,
        participant=participant,
        score=FINDING_SCORES[kind],
        summary=f"{suspect} did {kind}",
        evidence=({"kind": "pbft.vote", "event_id": 1},),
        count=count,
    )


def test_scores_cover_every_kind_and_threshold_splits_them():
    assert all(0.0 < score <= 1.0 for score in FINDING_SCORES.values())
    # Every replica/daemon kind alone crosses the default threshold;
    # link/site kinds never do.
    for kind in ("equivocation", "forged-signature", "silent-replica",
                 "withheld-transmissions"):
        assert FINDING_SCORES[kind] >= DEFAULT_THRESHOLD
    for kind in ("tampered-transmission", "chain-gap",
                 "view-change-storm", "mirror-divergence"):
        assert FINDING_SCORES[kind] < DEFAULT_THRESHOLD


def test_suspicion_sums_and_caps_at_one():
    report = AuditReport(findings=[
        _finding("silent-replica", "C-2"),          # 0.8
        _finding("vote-mismatch", "C-2"),           # +0.9 -> capped 1.0
        _finding("chain-gap", "C-2", "link"),       # non-accusing: ignored
        _finding("tampered-transmission", "A->B", "link"),
    ])
    assert report.suspicion() == {"C-2": 1.0}
    assert report.accused() == ["C-2"]
    assert not report.clean
    assert len(report.accusations()) == 2


def test_link_and_site_findings_alone_keep_the_report_clean():
    report = AuditReport(findings=[
        _finding("view-change-storm", "C", "site"),
        _finding("mirror-divergence", "V", "site"),
        _finding("chain-gap", "C->V", "link"),
    ])
    assert report.clean
    assert report.suspicion() == {}
    assert "no accusations" in report.to_text()


def test_threshold_is_tunable():
    report = AuditReport(findings=[_finding("silent-replica", "C-3")])
    assert report.accused(threshold=0.5) == ["C-3"]
    assert report.accused(threshold=0.9) == []


def test_sort_order_accusations_first_then_score():
    findings = sort_findings([
        _finding("chain-gap", "A->B", "link"),
        _finding("silent-replica", "C-2"),
        _finding("equivocation", "C-0"),
        _finding("withheld-transmissions", "C->V", "daemon"),
    ])
    assert [f.kind for f in findings] == [
        "equivocation",            # accusing, 1.0
        "withheld-transmissions",  # accusing, 0.9
        "silent-replica",          # accusing, 0.8
        "chain-gap",               # health
    ]


def test_report_round_trips_through_json():
    report = AuditReport(
        findings=[_finding("equivocation", "C-0", count=3)],
        health={"participants": {"C": {"log_length": 5}}},
        events_seen=42,
    )
    decoded = json.loads(report.to_json())
    assert decoded == report.to_dict()
    assert decoded["accused"] == ["C-0"]
    assert decoded["findings"][0]["count"] == 3
    assert decoded["findings"][0]["evidence"][0]["kind"] == "pbft.vote"
    text = report.to_text()
    assert "ACCUSED C-0" in text
    assert "×3" in text


def test_export_evidence_writes_report_and_bundles(tmp_path):
    report = AuditReport(findings=[
        _finding("equivocation", "C-0"),
        _finding("silent-replica", "C-2"),
    ])
    paths = report.export_evidence(str(tmp_path / "bundle"))
    assert sorted(paths) == [
        "finding-000-equivocation",
        "finding-001-silent-replica",
        "report",
    ]
    saved = json.loads(open(paths["report"], encoding="utf-8").read())
    assert saved == report.to_dict()
    bundle = json.loads(
        open(paths["finding-000-equivocation"], encoding="utf-8").read()
    )
    assert bundle["suspect"] == "C-0"
    assert bundle["evidence"]


def test_accusing_kinds_are_replica_and_daemon():
    assert ACCUSING_KINDS == ("replica", "daemon")
    assert _finding("equivocation", "C-0").accusing
    assert not _finding("chain-gap", "C->V", "link").accusing
