"""The critical-path engine: decomposition, conservation, attribution.

Two layers of coverage: synthetic span trees whose correct
decomposition is computable by hand, and real traces from the
simulator — the canonical cross-DC demo commit and a commit that
survives leader failover (the view-change window must be attributed,
and conservation must still hold exactly).
"""

import pytest

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.obs import Observability, critpath
from repro.obs.demo import trace_commit_lifecycle
from repro.obs.spans import Span, SpanLog
from repro.sim.simulator import Simulator
from repro.sim.topology import symmetric_topology


def _span(span_id, name, start, end, parent_id=None, trace_id=1):
    return Span(
        span_id=span_id,
        trace_id=trace_id,
        parent_id=parent_id,
        name=name,
        category=name.split(".")[0],
        start_ms=start,
        end_ms=end,
    )


# ----------------------------------------------------------------------
# Synthetic decompositions
# ----------------------------------------------------------------------
def test_deepest_span_wins_each_interval():
    spans = [
        _span(1, "commit", 0.0, 10.0),
        _span(2, "pbft.consensus", 1.0, 9.0, parent_id=1),
        _span(3, "pbft.prepare", 2.0, 5.0, parent_id=2),
    ]
    d = critpath.decompose(spans)
    assert d.segments["admission"] == pytest.approx(1.0)  # [0, 1)
    assert d.segments["pbft.dispatch"] == pytest.approx(1.0)  # [1, 2)
    assert d.segments["pbft.prepare"] == pytest.approx(3.0)  # [2, 5)
    assert d.segments["pbft.reply"] == pytest.approx(4.0)  # [5, 9)
    assert d.segments["finalize"] == pytest.approx(1.0)  # [9, 10)
    assert d.unattributed_ms == pytest.approx(0.0)


def test_conservation_is_exact_by_construction():
    spans = [
        _span(1, "commit", 0.0, 100.0),
        _span(2, "pbft.consensus", 10.0, 60.0, parent_id=1),
        _span(3, "pbft.prepare", 20.0, 30.0, parent_id=2),
        _span(4, "pbft.commit", 30.0, 55.0, parent_id=2),
    ]
    d = critpath.decompose(spans)
    total = sum(d.segments.values()) + d.unattributed_ms
    assert total == pytest.approx(d.end_to_end_ms)
    assert d.conservation_error_ms <= critpath.CONSERVATION_TOLERANCE_MS


def test_no_root_means_no_decomposition():
    spans = [_span(2, "pbft.consensus", 1.0, 9.0, parent_id=99)]
    assert critpath.decompose(spans) is None


def test_open_root_is_not_decomposed():
    spans = [_span(1, "commit", 0.0, None)]
    assert critpath.decompose(spans) is None


def test_completion_markers_extend_the_window():
    # receive.apply lands after the root closed: the window must
    # stretch to cover it, not clip it away.
    spans = [
        _span(1, "commit", 0.0, 4.0),
        _span(2, "receive.apply", 6.0, 6.0, parent_id=1),
    ]
    d = critpath.decompose(spans)
    assert d.end_ms == pytest.approx(6.0)
    assert d.end_to_end_ms == pytest.approx(6.0)
    # [4, 6) is covered by no span: surfaced as unattributed, not lost.
    assert d.unattributed_ms == pytest.approx(2.0)


def test_late_non_marker_work_is_clipped_out():
    # A backup daemon re-ships long after the commit completed; that
    # is availability work, not commit latency, so the window ignores
    # it entirely.
    spans = [
        _span(1, "commit", 0.0, 4.0),
        _span(2, "daemon.ship", 50.0, 55.0, parent_id=1),
    ]
    d = critpath.decompose(spans)
    assert d.end_ms == pytest.approx(4.0)
    assert "daemon.ship" not in d.segments


def test_remote_prefix_under_wan_transmit():
    spans = [
        _span(1, "commit", 0.0, 10.0),
        _span(2, "wan.transmit", 2.0, 8.0, parent_id=1),
        _span(3, "pbft.prepare", 3.0, 5.0, parent_id=2),
    ]
    d = critpath.decompose(spans)
    assert "remote.pbft.prepare" in d.segments
    assert d.segments["remote.pbft.prepare"] == pytest.approx(2.0)
    # wan.transmit itself never takes the remote. prefix.
    assert d.segments["wan.transmit"] == pytest.approx(4.0)


def test_zero_width_spans_never_win():
    spans = [
        _span(1, "commit", 0.0, 10.0),
        _span(2, "pbft.pre_prepare", 5.0, 5.0, parent_id=1),
    ]
    d = critpath.decompose(spans)
    assert "pbft.pre_prepare" not in d.segments
    assert d.segments["admission"] + d.segments.get(
        "finalize", 0.0
    ) == pytest.approx(10.0)


def test_attribute_report_shape_and_conservation():
    spans = [
        _span(1, "commit", 0.0, 10.0),
        _span(2, "pbft.consensus", 1.0, 9.0, parent_id=1),
    ]
    report = critpath.attribute(critpath.decompose_all(spans))
    assert report["ops"] == 1
    assert report["conservation"]["ok"] is True
    assert report["conservation"]["checked_ops"] == 1
    names = [entry["segment"] for entry in report["segments"]]
    assert names == sorted(names, key=critpath.segment_sort_key)
    total = sum(entry["total_ms"] for entry in report["segments"])
    assert total + report["unattributed"]["p50"] * 0 <= (
        report["end_to_end_ms"]["p50"] + 1e-9
    )


def test_attribute_empty_log_is_not_ok():
    report = critpath.attribute([])
    assert report["ops"] == 0
    assert report["conservation"]["ok"] is False


# ----------------------------------------------------------------------
# Real traces
# ----------------------------------------------------------------------
def test_demo_lifecycle_conserves_every_trace():
    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)
    decompositions = critpath.decompose_all(obs.spans)
    assert decompositions
    for d in decompositions:
        assert d.conservation_error_ms <= critpath.CONSERVATION_TOLERANCE_MS
    report = critpath.attribute(decompositions)
    assert report["conservation"]["ok"] is True
    # The cross-DC send's tail is dominated by the WAN hop.
    assert any(
        entry["segment"] == "wan.transmit" for entry in report["segments"]
    )


def _failover_commit(obs: Observability):
    """Crash the view-0 leader of A, then commit through the API
    (mirrors tests/obs/test_failover_trace.py)."""
    sim = Simulator(seed=5)
    obs.bind_clock(sim)
    deployment = BlockplaneDeployment(
        sim,
        symmetric_topology(["A", "B"], 20.0),
        BlockplaneConfig(f_independent=1),
        obs=obs,
    )
    deployment.unit("A").nodes[0].crash()
    future = deployment.api("A").log_commit("after-failover")
    position = sim.run_until_resolved(future, max_events=10_000_000)
    return deployment, position


def test_failover_commit_conserves_and_attributes_view_change():
    obs = Observability(enabled=True)
    _, position = _failover_commit(obs)
    assert position == 1

    decompositions = critpath.decompose_all(obs.spans)
    assert decompositions
    for d in decompositions:
        assert d.conservation_error_ms <= critpath.CONSERVATION_TOLERANCE_MS
        total = sum(d.segments.values()) + d.unattributed_ms
        assert total == pytest.approx(d.end_to_end_ms)

    # The view-change window appears as its own segment — the commit's
    # latency is attributed to failover, not smeared as unattributed.
    merged = {}
    for d in decompositions:
        for name, width in d.segments.items():
            merged[name] = merged.get(name, 0.0) + width
    assert merged.get("pbft.view_change", 0.0) > 0.0

    report = critpath.attribute(decompositions)
    assert report["conservation"]["ok"] is True
    assert (
        report["conservation"]["unattributed_p99_fraction"]
        <= critpath.UNATTRIBUTED_P99_BOUND
    )


def test_orphaned_subtree_still_decomposes():
    # Evict the root's early children out of a tiny ring buffer; the
    # trace must still decompose from its retained root without
    # raising, and nothing may be double-counted.
    log = SpanLog(max_spans=None)
    root = log.begin("commit", 0.0)
    child = log.begin(
        "pbft.consensus", 1.0,
        trace_id=root.trace_id, parent_id=root.span_id,
    )
    grand = log.begin(
        "pbft.prepare", 2.0,
        trace_id=root.trace_id, parent_id=999_999,  # evicted parent
    )
    log.end(grand, 3.0)
    log.end(child, 4.0)
    log.end(root, 5.0)
    d = critpath.decompose(log.by_trace(root.trace_id))
    assert d is not None
    total = sum(d.segments.values()) + d.unattributed_ms
    assert total == pytest.approx(d.end_to_end_ms)
