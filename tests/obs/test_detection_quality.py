"""Detection quality against chaos ground truth.

These are the acceptance gates: recall 1.0 on the shipped seeds (every
injected byzantine node and effective withhold route attributed) and
precision 1.0 on fault-free replays (zero false accusations). Seeds
are pinned; the chaos stack is deterministic, so these runs reproduce
bit-identically.
"""

from repro.chaos.generator import ScheduleGenerator
from repro.obs.forensics import (
    DetectionScore,
    audited_chaos_run,
    detection_sweep,
    fault_free_run,
)

_SWEEP = dict(batches=6, horizon_ms=12_000.0, settle_ms=8_000.0)


def _plan(seed, profile, run_index=0):
    return ScheduleGenerator(seed, profile=profile, **_SWEEP).generate(
        run_index
    )


# ----------------------------------------------------------------------
# Score arithmetic
# ----------------------------------------------------------------------
def test_score_arithmetic():
    score = DetectionScore(expected=("I-2", "V-3"), detected=("I-2", "O-1"))
    assert score.true_positives == ("I-2",)
    assert score.false_accusations == ("O-1",)
    assert score.missed == ("V-3",)
    assert score.recall == 0.5
    assert score.precision == 0.5
    assert not score.perfect
    empty = DetectionScore(expected=(), detected=())
    assert empty.perfect  # nothing planted, nobody accused


# ----------------------------------------------------------------------
# Recall on shipped byzantine seeds
# ----------------------------------------------------------------------
def test_byzantine_seed_attributes_forger_and_silent_node():
    run = audited_chaos_run(_plan(2, "byzantine"))
    assert run.result.ok  # safety invariants held throughout
    assert "I-2" in run.score.expected and "V-3" in run.score.expected
    assert run.score.perfect, run.score.summary()
    kinds = {f.kind for f in run.report.accusations()}
    assert "forged-signature" in kinds or "silent-replica" in kinds


def test_byzantine_seed_attributes_promiscuous_via_canary():
    run = audited_chaos_run(_plan(7, "byzantine", run_index=1))
    assert run.score.perfect, run.score.summary()
    assert run.score.expected  # the seed really plants someone


def test_mixed_seed_attributes_effective_withholding():
    run = audited_chaos_run(_plan(18, "mixed"))
    assert run.score.perfect, run.score.summary()
    assert any("->" in suspect for suspect in run.score.expected), (
        "seed 18 run 0 is the pinned effective-withhold fixture; "
        "regenerate if the chaos generator changed"
    )
    withheld = next(
        f for f in run.report.accusations()
        if f.kind == "withheld-transmissions"
    )
    assert withheld.suspect_kind == "daemon"
    assert withheld.context["positions"]


def test_vacuous_withholds_are_not_expected_and_not_detected():
    # Seed 20's withhold windows never coincide with a gateway commit:
    # ground truth post-filtering and the auditor must agree (nothing
    # expected, nothing accused).
    run = audited_chaos_run(_plan(20, "byzantine"))
    planned_withholds = [
        action for action in run.plan.actions if action.kind == "withhold"
    ]
    assert planned_withholds  # the seed does plan them
    assert not any("->" in s for s in run.score.expected)
    assert run.score.perfect, run.score.summary()


def test_expected_accusations_reads_plan_ground_truth():
    # Byzantine plants are unconditional ground truth: every one shows
    # up in the expected set regardless of what the run did.
    plan = _plan(2, "byzantine")
    run = audited_chaos_run(plan)
    planted = {
        f"{action.site}-{action.node_index}"
        for action in plan.actions if action.kind == "byzantine"
    }
    assert planted
    assert planted <= set(run.score.expected)


# ----------------------------------------------------------------------
# Precision: fault-free replays accuse nobody
# ----------------------------------------------------------------------
def test_fault_free_replays_accuse_nobody():
    for seed, profile in ((7, "byzantine"), (11, "mixed")):
        run = fault_free_run(_plan(seed, profile))
        assert run.report.clean, run.report.to_text()
        assert run.score.perfect
        assert run.score.expected == () == run.score.detected


def test_detection_sweep_fault_free_flag_strips_actions():
    (run,) = detection_sweep(7, 1, fault_free=True, **_SWEEP)
    assert run.plan.actions == ()
    assert run.report.clean
