"""Online auditor: every byzantine variant is attributed, honest and
crashed nodes never are.

Each test runs a real simulation with the flight recorder on and an
:class:`OnlineAuditor` subscribed live, then checks the report accuses
exactly the planted offender (or nobody).
"""

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.core.byzantine import (
    ForgingSigner,
    ImpersonatingSigner,
    PromiscuousSigner,
    SilentUnitMember,
)
from repro.obs import Observability
from repro.obs.forensics import CanaryProber, OnlineAuditor
from repro.pbft.byzantine import EquivocatingLeader, TamperingVoter
from repro.pbft.config import PBFTConfig
from repro.sim.simulator import Simulator
from repro.sim.topology import symmetric_topology
from tests.pbft.helpers import commit_values, make_group

FAST = PBFTConfig(request_timeout_ms=20.0, view_change_timeout_ms=40.0)


def _audited_pair(seed=9, node_class_overrides=None):
    obs = Observability(enabled=True, tracing=False)
    auditor = OnlineAuditor(obs.journal)
    sim = Simulator(seed=seed)
    obs.bind_clock(sim)
    deployment = BlockplaneDeployment(
        sim,
        symmetric_topology(["A", "B"], 20.0),
        BlockplaneConfig(f_independent=1),
        node_class_overrides=node_class_overrides,
        obs=obs,
    )
    return sim, deployment, auditor


def _roundtrip(sim, deployment, message="probe"):
    received = deployment.api("B").receive("A")
    sim.run_until_resolved(
        deployment.api("A").send(message, to="B"), max_events=20_000_000
    )
    sim.run(until=sim.now + 500, max_events=20_000_000)
    return received


# ----------------------------------------------------------------------
# PBFT-level misbehavior (bare group)
# ----------------------------------------------------------------------
def test_equivocating_leader_attributed():
    obs = Observability(enabled=True, tracing=False)
    auditor = OnlineAuditor(obs.journal)
    sim, replicas = make_group(
        overrides={0: EquivocatingLeader},
        config=FAST,
        override_kwargs={"forged_value": "EVIL"},
        obs=obs,
    )
    replicas[1].submit("GOOD")
    sim.run(until=500.0, max_events=20_000_000)
    report = auditor.report()
    assert report.accused() == ["r0"]
    kinds = {f.kind for f in report.accusations() if f.suspect == "r0"}
    assert "equivocation" in kinds
    # The signed conflicting proposals are in the evidence bundle.
    equivocation = next(
        f for f in report.accusations() if f.kind == "equivocation"
    )
    assert len(equivocation.context["digests"]) == 2
    assert equivocation.evidence


def test_tampering_voter_attributed():
    obs = Observability(enabled=True, tracing=False)
    auditor = OnlineAuditor(obs.journal)
    sim, replicas = make_group(overrides={2: TamperingVoter}, obs=obs)
    commit_values(sim, replicas[0], ["a", "b", "c"])
    sim.run(until=sim.now + 10)
    report = auditor.report()
    assert report.accused() == ["r2"]
    kinds = {f.kind for f in report.accusations()}
    assert "vote-mismatch" in kinds


def test_honest_group_accuses_nobody():
    obs = Observability(enabled=True, tracing=False)
    auditor = OnlineAuditor(obs.journal)
    sim, replicas = make_group(obs=obs)
    commit_values(sim, replicas[0], ["a", "b", "c"])
    sim.run(until=sim.now + 10)
    report = auditor.report()
    assert report.clean
    assert report.events_seen > 0


# ----------------------------------------------------------------------
# Blockplane-level misbehavior (full deployment)
# ----------------------------------------------------------------------
def test_forging_signer_attributed():
    sim, deployment, auditor = _audited_pair(
        node_class_overrides={"A-2": ForgingSigner}
    )
    received = _roundtrip(sim, deployment)
    assert received.resolved  # forgery is masked, pipeline unharmed
    report = auditor.report()
    assert report.accused() == ["A-2"]
    forged = next(
        f for f in report.accusations() if f.kind == "forged-signature"
    )
    assert forged.suspect == "A-2"


def test_impersonating_signer_attributed():
    sim, deployment, auditor = _audited_pair(
        node_class_overrides={"A-2": ImpersonatingSigner}
    )
    received = _roundtrip(sim, deployment)
    assert received.resolved
    report = auditor.report()
    assert "A-2" in report.accused()
    kinds = {f.kind for f in report.accusations() if f.suspect == "A-2"}
    assert "impersonation" in kinds


def test_silent_member_attributed_only_in_active_unit():
    sim, deployment, auditor = _audited_pair(
        node_class_overrides={"A-2": SilentUnitMember}
    )
    for value in ("one", "two"):
        sim.run_until_resolved(
            deployment.api("A").log_commit(value), max_events=20_000_000
        )
    sim.run(until=sim.now + 200, max_events=20_000_000)
    report = auditor.report()
    assert report.accused() == ["A-2"]
    silent = next(
        f for f in report.accusations() if f.kind == "silent-replica"
    )
    assert silent.participant == "A"
    assert silent.context["unit_log_length"] >= 2
    # Unit B never committed anything: its equally-quiet members are
    # NOT accused (an idle unit gives silence nothing to prove).
    assert not any(s.startswith("B-") for s in report.accused())


def test_crashed_node_is_never_accused_of_silence():
    sim, deployment, auditor = _audited_pair()
    deployment.unit("A").node("A-2").crash()
    for value in ("one", "two"):
        sim.run_until_resolved(
            deployment.api("A").log_commit(value), max_events=20_000_000
        )
    sim.run(until=sim.now + 200, max_events=20_000_000)
    report = auditor.report()
    assert report.clean  # the crash is journaled, silence is explained
    assert "A-2" in report.health["crashed_nodes"]


# ----------------------------------------------------------------------
# Canary probes
# ----------------------------------------------------------------------
def test_canary_catches_promiscuous_signer():
    sim, deployment, auditor = _audited_pair(
        node_class_overrides={"A-1": PromiscuousSigner}
    )
    prober = CanaryProber(
        sim, deployment, auditor=auditor, times_ms=(100.0, 400.0)
    )
    received = _roundtrip(sim, deployment)
    assert received.resolved  # probes never disturb real traffic
    assert prober.probes_fired > 0
    report = auditor.report()
    assert report.accused() == ["A-1"]
    promiscuous = next(
        f for f in report.accusations()
        if f.kind == "promiscuous-signature"
    )
    assert promiscuous.suspect == "A-1"
    assert report.health["canaries"] == 2  # one per site


def test_canaries_spare_honest_deployments():
    sim, deployment, auditor = _audited_pair()
    prober = CanaryProber(
        sim, deployment, auditor=auditor, times_ms=(100.0, 400.0)
    )
    received = _roundtrip(sim, deployment)
    assert received.resolved
    assert prober.probes_fired > 0
    report = auditor.report()
    assert report.clean  # honest signers defer the bogus position
