"""Golden-journal rendering: the self-contained HTML replay.

The renderer is a pure function of the bundle, so the canonical
140-event lifecycle journal pins the page exactly: the embedded JSON
round-trips, the topology node set is complete, every finding id
survives into the page, and nothing in the document reaches for the
network.
"""

import json
import re
import threading
import urllib.request

import pytest

from repro.obs import Observability
from repro.obs.console import build_bundle, build_server, render_html
from repro.obs.demo import trace_commit_lifecycle
from repro.obs.journal import EventJournal

_FAKE_AUDIT = {
    "suspicion": {"C-2": 1.0, "V-3": 0.6},
    "accused": ["C-2", "V-3"],
    "events_seen": 140,
    "health": {},
    "findings": [
        {
            "kind": "equivocation", "suspect": "C-2",
            "suspect_kind": "replica", "participant": "C",
            "score": 1.0, "summary": "two pre-prepares for slot 1",
            "count": 2, "context": {},
            "evidence": [{"event_id": 5}, {"event_id": 9}],
        },
        {
            "kind": "silent-replica", "suspect": "V-3",
            "suspect_kind": "replica", "participant": "V",
            "score": 0.6, "summary": "no votes after slot 2",
            "count": 1, "context": {},
            "evidence": [{"event_id": 100}],
        },
    ],
}


@pytest.fixture(scope="module")
def golden_bundle():
    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)
    return build_bundle(obs, audit=_FAKE_AUDIT, title="golden replay")


@pytest.fixture(scope="module")
def golden_page(golden_bundle) -> str:
    return render_html(golden_bundle)


def _embedded_bundle(page: str) -> dict:
    match = re.search(
        r'<script id="bundle" type="application/json">(.*?)</script>',
        page,
        re.DOTALL,
    )
    assert match, "embedded bundle block missing"
    return json.loads(match.group(1).replace("<\\/", "</"))


# ----------------------------------------------------------------------
# The golden page, pinned
# ----------------------------------------------------------------------
def test_page_embeds_the_exact_bundle(golden_page, golden_bundle):
    embedded = _embedded_bundle(golden_page)
    assert embedded == json.loads(json.dumps(golden_bundle))
    assert len(embedded["journal"]["events"]) == 140


def test_page_pins_the_golden_event_count(golden_page):
    assert "140 events" in golden_page
    embedded = _embedded_bundle(golden_page)
    ids = [e["event_id"] for e in embedded["journal"]["events"]]
    assert ids == list(range(1, 141))


def test_page_carries_the_full_topology_node_set(golden_page):
    embedded = _embedded_bundle(golden_page)
    assert {node["id"] for node in embedded["topology"]["nodes"]} == {
        "C-0", "C-1", "C-2", "C-3", "V-0", "V-1", "V-2", "V-3"
    }
    assert embedded["topology"]["sites"] == ["C", "O", "V", "I"]
    # The noscript fallback lists them too.
    for node_id in ("C-0", "V-3"):
        assert node_id in golden_page


def test_page_carries_every_finding_id(golden_page):
    embedded = _embedded_bundle(golden_page)
    ids = [f["id"] for f in embedded["audit"]["findings"]]
    assert ids == [
        "finding-000-equivocation", "finding-001-silent-replica"
    ]
    for finding_id in ids:
        assert finding_id in golden_page
    assert "accused: C-2, V-3" in golden_page


def test_page_is_self_contained(golden_page):
    # One document, no external fetches: every src/href would be a
    # network dependency breaking offline replay.
    assert golden_page.startswith("<!DOCTYPE html>")
    assert " src=" not in golden_page
    assert "href=" not in golden_page
    assert "@import" not in golden_page
    assert "fetch(" not in golden_page
    assert "XMLHttpRequest" not in golden_page
    # Inline CSS + JS are present.
    assert golden_page.count("<style>") == 1
    assert golden_page.count("<script>") == 1


def test_page_escapes_script_terminators():
    journal = EventJournal(max_events=100)
    journal.record("log.append", at=1.0, participant="C", node="C-0",
                   payload="</script><script>alert(1)</script>")
    page = render_html(build_bundle(journal=journal))
    assert "</script><script>alert(1)" not in page
    embedded = _embedded_bundle(page)
    (event,) = embedded["journal"]["events"]
    assert event["args"]["payload"] == "</script><script>alert(1)</script>"


def test_title_is_html_escaped():
    page = render_html(
        build_bundle(title="<img src=x onerror=alert(1)>")
    )
    # The raw string may only survive inside the JSON data block — the
    # markup half must carry the escaped form.
    markup = re.sub(
        r'<script id="bundle" type="application/json">.*?</script>',
        "", page, flags=re.DOTALL,
    )
    assert "<img src=x" not in markup
    assert "&lt;img" in markup


# ----------------------------------------------------------------------
# Eviction banner
# ----------------------------------------------------------------------
def test_no_banner_on_a_complete_journal(golden_page):
    assert "evicted before this window" not in golden_page


def test_eviction_banner_names_the_lost_window():
    journal = EventJournal(max_events=10)
    for index in range(25):
        journal.record("pbft.vote", at=float(index), participant="C",
                       node="C-0", voter="C-1")
    page = render_html(build_bundle(journal=journal))
    assert (
        "15 events evicted before this window "
        "(first retained event id 16)"
    ) in page


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------
def test_served_page_round_trips(golden_page):
    server = build_server(golden_page, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.handle_request)
    thread.start()
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/", timeout=5
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/html")
            body = response.read().decode("utf-8")
    finally:
        thread.join(timeout=5)
        server.server_close()
    assert body == golden_page


# ----------------------------------------------------------------------
# v2 panels: flame view, latency budget, chaos ground truth
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def v2_page() -> str:
    from repro.chaos.plan import FaultAction, FaultPlan
    from repro.obs.critpath import attribute_log

    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)
    plan = FaultPlan(
        seed=3,
        actions=(
            FaultAction(kind="crash", site="C", node_index=1,
                        start=10.0, end=50.0),
        ),
    )
    bundle = build_bundle(
        obs, latency=attribute_log(obs.spans), chaos=plan,
        title="v2 replay",
    )
    return render_html(bundle)


def test_v2_page_is_self_contained(v2_page):
    assert " src=" not in v2_page
    assert "href=" not in v2_page


def test_v2_page_has_flame_and_latency_panels(v2_page):
    assert 'id="flame-box"' in v2_page
    assert 'id="trace-pick"' in v2_page
    assert 'id="latency-box"' in v2_page
    assert 'id="chaos-list"' in v2_page


def test_v2_page_embeds_latency_and_chaos_sections(v2_page):
    bundle = _embedded_bundle(v2_page)
    assert bundle["latency"]["conservation"]["ok"] is True
    assert bundle["chaos"]["actions"][0]["label"] == "crash C[1] [10, 50)"


def test_v2_stats_line_counts_attribution_and_faults(v2_page):
    assert "ops attributed" in v2_page
    assert "1 injected faults" in v2_page


def test_v1_bundle_without_new_sections_still_renders(golden_page):
    # Panels exist but the JS falls back to empty notes — the bundle
    # itself carries neither section.
    bundle = _embedded_bundle(golden_page)
    assert "latency" not in bundle
    assert "chaos" not in bundle
    assert 'id="flame-box"' in golden_page


def test_noscript_lists_injected_faults(v2_page):
    noscript = v2_page.split("<noscript>")[1].split("</noscript>")[0]
    assert "injected: crash C[1]" in noscript
    assert "latency:" in noscript
