"""Console bundle assembly and the ``repro.console/v1`` validator.

The bundle is the stable interface between every producer (chaos
runner, obs-audit CLI, hand-rolled scripts) and the HTML renderer, so
the validator is exercised against both the golden lifecycle run and
hand-corrupted documents covering each rule.
"""

import copy

import pytest

from repro.obs import Observability, to_chrome_trace
from repro.obs.console import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SchemaError,
    build_bundle,
    check,
    finding_id,
    spans_from_chrome_trace,
    validate,
)
from repro.obs.demo import trace_commit_lifecycle
from repro.obs.exporters import journal_snapshot
from repro.obs.journal import EventJournal


@pytest.fixture(scope="module")
def golden_obs() -> Observability:
    """The canonical traced cross-DC commit (140-event golden journal)."""
    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)
    return obs


@pytest.fixture(scope="module")
def golden_bundle(golden_obs):
    return build_bundle(golden_obs, title="golden")


# ----------------------------------------------------------------------
# Assembly from a live hub
# ----------------------------------------------------------------------
def test_bundle_from_hub_is_schema_valid(golden_bundle):
    assert validate(golden_bundle) == []
    assert golden_bundle["schema"] == SCHEMA_NAME
    assert golden_bundle["schema_version"] == SCHEMA_VERSION


def test_bundle_carries_the_golden_journal(golden_bundle):
    journal = golden_bundle["journal"]
    assert journal["recorded"] == journal["retained"] == 140
    assert journal["dropped"] == 0
    assert journal["first_event_id"] == 1
    assert journal["last_event_id"] == 140
    ids = [event["event_id"] for event in journal["events"]]
    assert ids == list(range(1, 141))


def test_bundle_recovers_nodes_from_deploy_events(golden_bundle):
    nodes = golden_bundle["topology"]["nodes"]
    assert {node["id"] for node in nodes} == {
        f"{site}-{index}" for site in ("C", "V") for index in range(4)
    }
    roles = {node["id"]: node["role"] for node in nodes}
    # Each unit's leader is its site gateway in the demo deployment.
    assert "gateway" in roles.values()
    assert all(node["site"] in ("C", "V") for node in nodes)
    # The declared AWS topology keeps all four sites even though only
    # C and V appear in the journal.
    assert golden_bundle["topology"]["sites"] == ["C", "O", "V", "I"]


def test_bundle_embeds_spans_and_metrics(golden_bundle, golden_obs):
    assert len(golden_bundle["spans"]) == len(golden_obs.spans)
    names = {span["name"] for span in golden_bundle["spans"]}
    assert names >= {"commit", "wan.transmit", "daemon.ship"}
    assert "counters" in golden_bundle["metrics"]


def test_bundle_from_journal_snapshot_matches_hub(golden_obs):
    from_hub = build_bundle(golden_obs)
    from_snapshot = build_bundle(journal=journal_snapshot(golden_obs))
    assert from_snapshot["journal"] == from_hub["journal"]
    assert from_snapshot["topology"] == from_hub["topology"]


def test_bundle_recomputes_header_ids_for_old_exports(golden_obs):
    snapshot = journal_snapshot(golden_obs)
    del snapshot["first_event_id"], snapshot["last_event_id"]
    bundle = build_bundle(journal=snapshot)
    assert bundle["journal"]["first_event_id"] == 1
    assert bundle["journal"]["last_event_id"] == 140


def test_bundle_records_eviction_window():
    journal = EventJournal(max_events=10)
    for index in range(25):
        journal.record("pbft.vote", at=float(index), participant="C",
                       node="C-0", voter="C-1")
    bundle = build_bundle(journal=journal)
    section = bundle["journal"]
    assert section["recorded"] == 25
    assert section["retained"] == 10
    assert section["dropped"] == 15
    assert section["first_event_id"] == 16
    assert section["last_event_id"] == 25
    assert validate(bundle) == []


def test_empty_bundle_defaults_to_aws_topology():
    bundle = build_bundle()
    assert bundle["topology"]["sites"] == ["C", "O", "V", "I"]
    assert bundle["topology"]["nodes"] == []
    assert bundle["journal"]["events"] == []
    assert validate(bundle) == []


# ----------------------------------------------------------------------
# Chrome-trace span recovery
# ----------------------------------------------------------------------
def test_spans_recovered_from_chrome_trace(golden_obs):
    document = to_chrome_trace(golden_obs)
    recovered = spans_from_chrome_trace(document)
    direct = [span.to_dict() for span in golden_obs.spans]
    assert len(recovered) == len(direct)
    by_id = {span["span_id"]: span for span in recovered}
    for span in direct:
        twin = by_id[span["span_id"]]
        assert twin["name"] == span["name"]
        assert twin["trace_id"] == span["trace_id"]
        assert twin["parent_id"] == span["parent_id"]
        assert twin["participant"] == span["participant"]
        assert twin["start_ms"] == pytest.approx(span["start_ms"])
        assert twin["end_ms"] == pytest.approx(span["end_ms"])


def test_bundle_accepts_trace_document_as_spans(golden_obs):
    bundle = build_bundle(
        journal=journal_snapshot(golden_obs),
        spans=to_chrome_trace(golden_obs),
    )
    assert len(bundle["spans"]) == len(golden_obs.spans)


# ----------------------------------------------------------------------
# Audit folding
# ----------------------------------------------------------------------
def _fake_audit():
    return {
        "suspicion": {"C-2": 1.0},
        "accused": ["C-2"],
        "events_seen": 140,
        "health": {},
        "findings": [
            {
                "kind": "equivocation",
                "suspect": "C-2",
                "suspect_kind": "node",
                "participant": "C",
                "score": 1.0,
                "summary": "two pre-prepares for one slot",
                "count": 2,
                "context": {},
                "evidence": [{"event_id": 5}, {"event_id": 9}],
            },
        ],
    }


def test_audit_findings_get_stable_ids_and_evidence_links(golden_obs):
    bundle = build_bundle(golden_obs, audit=_fake_audit())
    assert validate(bundle) == []
    (finding,) = bundle["audit"]["findings"]
    # Matches the forensics exporter's evidence file naming.
    assert finding["id"] == finding_id(0, "equivocation")
    assert finding["id"] == "finding-000-equivocation"
    assert finding["evidence_event_ids"] == [5, 9]


def test_audit_from_live_report_round_trips(golden_obs):
    from repro.obs.forensics.findings import AuditReport, Finding

    report = AuditReport(
        findings=[
            Finding(
                kind="silent-replica",
                suspect="V-3",
                suspect_kind="replica",
                participant="V",
                score=0.8,
                summary="no votes after slot 2",
                evidence=({"event_id": 100},),
            ),
        ],
        events_seen=140,
    )
    bundle = build_bundle(golden_obs, audit=report)
    assert validate(bundle) == []
    (finding,) = bundle["audit"]["findings"]
    assert finding["id"] == "finding-000-silent-replica"
    assert finding["evidence_event_ids"] == [100]


# ----------------------------------------------------------------------
# Validator rules, one corruption at a time
# ----------------------------------------------------------------------
def _corrupt(bundle, mutate):
    document = copy.deepcopy(bundle)
    mutate(document)
    return validate(document)


def test_validator_accepts_the_golden_document(golden_bundle):
    check(golden_bundle)  # does not raise


def test_validator_rejects_non_object():
    assert validate([1, 2]) == [
        "document must be an object, got list"
    ]


def test_validator_reports_missing_top_fields(golden_bundle):
    errors = _corrupt(golden_bundle, lambda d: d.pop("journal"))
    assert "missing top-level field 'journal'" in errors


def test_validator_rejects_wrong_schema_name(golden_bundle):
    errors = _corrupt(
        golden_bundle, lambda d: d.update(schema="repro.bench/v1")
    )
    assert any("schema must be" in error for error in errors)


def test_validator_rejects_wrong_schema_version(golden_bundle):
    errors = _corrupt(
        golden_bundle, lambda d: d.update(schema_version=99)
    )
    assert any("schema_version must be" in error for error in errors)


def test_validator_rejects_retained_mismatch(golden_bundle):
    errors = _corrupt(
        golden_bundle, lambda d: d["journal"].update(retained=3)
    )
    assert any("retained is 3 but" in error for error in errors)


def test_validator_rejects_non_monotonic_event_ids(golden_bundle):
    def mutate(document):
        events = document["journal"]["events"]
        events[5]["event_id"] = events[4]["event_id"]

    errors = _corrupt(golden_bundle, mutate)
    assert any("not strictly increasing" in error for error in errors)


def test_validator_rejects_duplicate_sites(golden_bundle):
    errors = _corrupt(
        golden_bundle,
        lambda d: d["topology"].update(sites=["C", "C", "V", "O", "I"]),
    )
    assert "topology.sites contains duplicates" in errors


def test_validator_rejects_duplicate_node_ids(golden_bundle):
    def mutate(document):
        nodes = document["topology"]["nodes"]
        nodes.append(dict(nodes[0]))

    errors = _corrupt(golden_bundle, mutate)
    assert any("duplicate topology node id" in error for error in errors)


def test_validator_rejects_node_on_unknown_site(golden_bundle):
    def mutate(document):
        document["topology"]["nodes"][0]["site"] = "Z"

    errors = _corrupt(golden_bundle, mutate)
    assert any("unknown site 'Z'" in error for error in errors)


def test_validator_rejects_edge_to_unknown_site(golden_bundle):
    def mutate(document):
        document["topology"]["rtt_ms"].append(["C", "Z", 42.0])

    errors = _corrupt(golden_bundle, mutate)
    assert any(
        "references an unknown site" in error for error in errors
    )


def test_validator_rejects_unresolvable_evidence(golden_obs):
    bundle = build_bundle(golden_obs, audit=_fake_audit())

    def mutate(document):
        finding = document["audit"]["findings"][0]
        finding["evidence_event_ids"] = [9999]

    errors = _corrupt(bundle, mutate)
    assert any(
        "cites event 9999 which is not retained" in error
        for error in errors
    )


def test_validator_rejects_duplicate_finding_ids(golden_obs):
    bundle = build_bundle(golden_obs, audit=_fake_audit())

    def mutate(document):
        findings = document["audit"]["findings"]
        findings.append(copy.deepcopy(findings[0]))

    errors = _corrupt(bundle, mutate)
    assert any("duplicate finding id" in error for error in errors)


def test_check_raises_with_every_violation(golden_bundle):
    broken = copy.deepcopy(golden_bundle)
    del broken["title"]
    broken["journal"]["retained"] = 1
    with pytest.raises(SchemaError) as excinfo:
        check(broken)
    message = str(excinfo.value)
    assert "missing top-level field 'title'" in message
    assert "retained is 1" in message


def test_build_bundle_validates_by_default(golden_obs):
    bad_audit = _fake_audit()
    bad_audit["findings"][0]["evidence"] = [{"event_id": 9999}]
    with pytest.raises(SchemaError):
        build_bundle(golden_obs, audit=bad_audit)
    document = build_bundle(golden_obs, audit=bad_audit, validate=False)
    assert document["audit"]["findings"][0]["evidence_event_ids"] == [9999]


# ----------------------------------------------------------------------
# v2 sections: latency attribution and chaos ground truth
# ----------------------------------------------------------------------
def _plan():
    from repro.chaos.plan import FaultAction, FaultPlan

    return FaultPlan(
        seed=7,
        profile="mixed",
        actions=(
            FaultAction(kind="crash", site="C", node_index=0,
                        start=1_000.0, end=5_000.0),
            FaultAction(kind="byzantine", site="V", node_index=1,
                        behavior="silent", start=0.0, end=None),
        ),
    )


def test_bundle_with_latency_section(golden_obs):
    from repro.obs.critpath import attribute_log

    bundle = build_bundle(
        golden_obs, latency=attribute_log(golden_obs.spans)
    )
    assert validate(bundle) == []
    assert bundle["latency"]["ops"] > 0
    assert bundle["latency"]["conservation"]["ok"] is True


def test_bundle_with_chaos_plan(golden_obs):
    bundle = build_bundle(golden_obs, chaos=_plan())
    assert validate(bundle) == []
    chaos = bundle["chaos"]
    assert chaos["seed"] == 7
    assert [a["kind"] for a in chaos["actions"]] == ["byzantine", "crash"]
    crash = chaos["actions"][1]
    assert crash["site"] == "C"
    assert crash["start"] == 1_000.0 and crash["end"] == 5_000.0
    assert "crash C[0]" in crash["label"]
    # The open-ended byzantine plant is closed at the plan's extent so
    # the renderer always has a finite window.
    plant = chaos["actions"][0]
    assert plant["end"] == pytest.approx(
        chaos["horizon_ms"] + chaos["settle_ms"]
    )


def test_bundle_accepts_chaos_plan_dict(golden_obs):
    bundle = build_bundle(golden_obs, chaos=_plan().to_dict())
    assert len(bundle["chaos"]["actions"]) == 2


def test_bundle_rejects_malformed_chaos():
    with pytest.raises(TypeError):
        build_bundle(journal={"events": []}, chaos="crash everything")


def test_v1_bundle_still_validates(golden_bundle):
    old = copy.deepcopy(golden_bundle)
    old["schema"] = "repro.console/v1"
    old["schema_version"] = 1
    assert validate(old) == []


def test_validator_rejects_mismatched_pair(golden_bundle):
    old = copy.deepcopy(golden_bundle)
    old["schema"] = "repro.console/v1"
    old["schema_version"] = 2
    assert any("schema_version" in e for e in validate(old))


def test_validator_rejects_bad_latency_section(golden_bundle):
    bad = copy.deepcopy(golden_bundle)
    bad["latency"] = {"end_to_end_ms": "fast", "segments": [{"p99": 1}]}
    errors = validate(bad)
    assert any("end_to_end_ms" in e for e in errors)
    assert any("segments[0]" in e for e in errors)


def test_validator_rejects_bad_chaos_actions(golden_bundle):
    bad = copy.deepcopy(golden_bundle)
    bad["chaos"] = {
        "actions": [
            {"kind": "crash", "start": 5.0, "end": 1.0, "label": "x"},
            {"kind": "crash", "start": 0.0, "end": 1.0, "label": "y",
             "site": "NOWHERE"},
            {"kind": "crash"},
        ]
    }
    errors = validate(bad)
    assert any("precedes" in e for e in errors)
    assert any("unknown site" in e for e in errors)
    assert any("missing field" in e for e in errors)
