"""The ``python -m repro console`` entry point, end to end.

Covers the acceptance path (journal.json in, self-contained
replay.html out), bundle validation, the demo source, and the
top-level subcommand forwarding.
"""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.obs import Observability, export_all
from repro.obs.console import load_bundle
from repro.obs.console.__main__ import main as console_main
from repro.obs.demo import trace_commit_lifecycle


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    """A full ``export_all`` artifact set for the golden lifecycle."""
    directory = tmp_path_factory.mktemp("obs-artifacts")
    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)
    export_all(obs, str(directory))
    return directory


def test_journal_to_replay_html(artifact_dir, tmp_path, capsys):
    out = tmp_path / "replay.html"
    assert console_main([
        "--journal", str(artifact_dir / "journal.json"),
        "--out", str(out),
    ]) == 0
    page = out.read_text(encoding="utf-8")
    assert page.startswith("<!DOCTYPE html>")
    assert "140 events" in page
    assert f"replay of {artifact_dir / 'journal.json'}" in page
    captured = capsys.readouterr().out
    assert "replay:" in captured and "140 events" in captured


def test_journal_plus_trace_folds_spans(artifact_dir, tmp_path):
    bundle_out = tmp_path / "bundle.json"
    assert console_main([
        "--journal", str(artifact_dir / "journal.json"),
        "--trace", str(artifact_dir / "trace.json"),
        "--metrics", str(artifact_dir / "metrics.json"),
        "--out", str(tmp_path / "replay.html"),
        "--bundle-out", str(bundle_out),
    ]) == 0
    bundle = load_bundle(str(bundle_out))
    assert len(bundle["spans"]) == 31
    assert "metrics" in bundle


def test_demo_renders_and_validates(tmp_path):
    out = tmp_path / "demo.html"
    bundle_out = tmp_path / "demo-bundle.json"
    assert console_main([
        "--demo", "--out", str(out), "--bundle-out", str(bundle_out),
    ]) == 0
    assert out.exists()
    assert console_main(["--validate", str(bundle_out)]) == 0


def test_bundle_rerender_with_title_override(tmp_path):
    bundle_out = tmp_path / "bundle.json"
    assert console_main([
        "--demo", "--out", str(tmp_path / "a.html"),
        "--bundle-out", str(bundle_out),
    ]) == 0
    out = tmp_path / "b.html"
    assert console_main([
        "--bundle", str(bundle_out), "--out", str(out),
        "--title", "archived run 42",
    ]) == 0
    assert "archived run 42" in out.read_text(encoding="utf-8")


def test_validate_rejects_corrupt_bundle(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")
    assert console_main(["--validate", str(path)]) == 1
    assert "schema violation" in capsys.readouterr().err


def test_validate_missing_file_is_an_error(tmp_path, capsys):
    assert console_main(
        ["--validate", str(tmp_path / "absent.json")]
    ) == 2
    assert "cannot read" in capsys.readouterr().err


def test_no_input_is_an_error(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert console_main([]) == 2
    assert "no input" in capsys.readouterr().err


def test_unreadable_journal_is_an_error(tmp_path, capsys):
    assert console_main([
        "--journal", str(tmp_path / "absent.json"),
        "--out", str(tmp_path / "x.html"),
    ]) == 2
    assert "error:" in capsys.readouterr().err


def test_top_level_console_subcommand(tmp_path):
    out = tmp_path / "via-repro.html"
    assert repro_main(["console", "--demo", "--out", str(out)]) == 0
    assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
