"""Exporter validity: JSON snapshot, Prometheus text, Chrome trace."""

import json
import re

from repro.obs import (
    Observability,
    export_all,
    metrics_snapshot,
    to_chrome_trace,
    to_prometheus_text,
)

#: One Prometheus sample line: name{labels} value  (labels optional).
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z0-9_]+=\"[^\"]*\""         # first label
    r"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"    # more labels
    r" (\+Inf|-Inf|[-+0-9.e]+)$"           # value
)
_PROM_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def _populated_obs() -> Observability:
    obs = Observability(enabled=True, histogram_window_ms=50.0)
    obs.counter("commits_total", participant="C").inc(3)
    obs.counter("net_bytes_total", link="C->V").inc(1024)
    obs.gauge("log_length", participant="C").set(7)
    hist = obs.histogram("commit_latency_ms", participant="C")
    for value, at in ((0.4, 1.0), (1.2, 60.0), (80.0, 120.0)):
        hist.observe(value, at=at)
    root = obs.begin_span("commit", participant="C", node="C-0")
    obs.complete_span(
        "pbft.prepare", 0.0, 0.5, obs.ctx_of(root),
        participant="C", node="C-0", seq=1,
    )
    obs.end_span(root, position=1)
    obs.begin_span("deployment.note")  # left open, participant-less
    return obs


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------
def test_snapshot_round_trips_through_json():
    obs = _populated_obs()
    snapshot = metrics_snapshot(obs)
    decoded = json.loads(json.dumps(snapshot))
    assert decoded == snapshot


def test_snapshot_contents():
    snapshot = metrics_snapshot(_populated_obs())
    counters = {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in snapshot["counters"]
    }
    assert counters[("commits_total", (("participant", "C"),))] == 3.0
    assert counters[("net_bytes_total", (("link", "C->V"),))] == 1024.0
    (hist,) = snapshot["histograms"]
    assert hist["count"] == 3
    assert hist["buckets"][-1][0] is None  # +Inf encoded as null
    assert hist["buckets"][-1][1] == 3     # cumulative total
    assert hist["window_ms"] == 50.0
    assert [w["window"] for w in hist["windows"]] == [0, 1, 2]
    assert snapshot["spans_recorded"] == 3


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def test_prometheus_text_parses_line_by_line():
    text = to_prometheus_text(_populated_obs())
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("#"):
            assert _PROM_TYPE.match(line), line
        else:
            assert _PROM_SAMPLE.match(line), line


def test_prometheus_histogram_series():
    text = to_prometheus_text(_populated_obs())
    lines = text.split("\n")
    buckets = [l for l in lines if l.startswith("commit_latency_ms_bucket")]
    assert any('le="+Inf"' in l for l in buckets)
    # Cumulative counts are monotone non-decreasing.
    counts = [float(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts)
    assert counts[-1] == 3.0
    assert any(l.startswith("commit_latency_ms_sum") for l in lines)
    assert any(l.startswith("commit_latency_ms_count") for l in lines)
    # One TYPE header per metric name.
    type_lines = [l for l in lines if l.startswith("# TYPE")]
    assert len(type_lines) == len({l.split()[2] for l in type_lines})


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------
def test_chrome_trace_round_trips_and_is_wellformed():
    trace = to_chrome_trace(_populated_obs())
    decoded = json.loads(json.dumps(trace))
    assert decoded == trace
    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in spans} >= {"commit", "pbft.prepare"}
    for event in spans:
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert "trace_id" in event["args"]
        assert "span_id" in event["args"]
    # Metadata names every pid/tid used by span events.
    named_pids = {e["pid"] for e in meta if e["name"] == "process_name"}
    assert {e["pid"] for e in spans} <= named_pids
    # µs scaling: the pbft.prepare span is 0.5 ms == 500 µs.
    prepare = next(e for e in spans if e["name"] == "pbft.prepare")
    assert prepare["dur"] == 500.0


def test_chrome_trace_parent_links_preserved():
    obs = _populated_obs()
    trace = to_chrome_trace(obs)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    prepare = next(e for e in spans if e["name"] == "pbft.prepare")
    root = next(e for e in spans if e["name"] == "commit")
    assert prepare["args"]["parent_id"] == root["args"]["span_id"]
    assert prepare["args"]["trace_id"] == root["args"]["trace_id"]


# ----------------------------------------------------------------------
# Artifact bundle
# ----------------------------------------------------------------------
def test_export_all_writes_four_artifacts(tmp_path):
    obs = _populated_obs()
    paths = export_all(obs, str(tmp_path / "session"), prefix="run1-")
    assert sorted(paths) == [
        "journal.json", "metrics.json", "metrics.prom", "trace.json",
    ]
    snapshot = json.loads((tmp_path / "session" / "run1-metrics.json").read_text())
    assert snapshot["counters"]
    trace = json.loads((tmp_path / "session" / "run1-trace.json").read_text())
    assert trace["traceEvents"]
    prom = (tmp_path / "session" / "run1-metrics.prom").read_text()
    assert "# TYPE" in prom
    journal = json.loads((tmp_path / "session" / "run1-journal.json").read_text())
    assert journal["dropped"] == 0
    assert journal["recorded"] == len(journal["events"])


def test_snapshot_and_prometheus_surface_drop_counters():
    obs = Observability(enabled=True, max_spans=2, max_events=2)
    for index in range(4):
        obs.end_span(obs.begin_span("s", participant="C"))
        obs.event("pbft.vote", participant="C", node=f"C-{index}")
    snapshot = metrics_snapshot(obs)
    assert snapshot["spans_dropped"] == 2
    assert snapshot["events_dropped"] == 2
    assert snapshot["events_recorded"] == 4
    assert snapshot["events_retained"] == 2
    text = to_prometheus_text(obs)
    assert "obs_spans_dropped_total 2.0" in text
    assert "obs_events_dropped_total 2.0" in text


def test_prometheus_per_window_histogram_series():
    text = to_prometheus_text(_populated_obs())
    lines = text.split("\n")
    # Windowed histograms additionally export one conformant
    # _bucket/_sum/_count family per window, labelled by window index.
    window_buckets = [
        l for l in lines
        if l.startswith("commit_latency_ms_window_bucket")
    ]
    assert window_buckets
    assert all('window="' in l for l in window_buckets)
    assert any('le="+Inf"' in l for l in window_buckets)
    # Three observations at t=1/60/120 with a 50 ms window: 3 windows.
    windows = {l.split('window="')[1].split('"')[0] for l in window_buckets}
    assert windows == {"0", "1", "2"}
    # Per-window cumulative counts are monotone within each window.
    for window in windows:
        counts = [
            float(l.rsplit(" ", 1)[1])
            for l in window_buckets
            if f'window="{window}"' in l
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 1.0
    assert any(
        l.startswith("commit_latency_ms_window_sum") for l in lines
    )
    assert any(
        l.startswith("commit_latency_ms_window_count") for l in lines
    )


def test_prometheus_orphan_counter_always_present():
    obs = Observability(enabled=True, max_spans=2)
    root = obs.begin_span("commit", participant="C")
    for index in range(3):  # churn the ring: the root gets evicted
        obs.end_span(
            obs.begin_span("child", ctx=obs.ctx_of(root), participant="C")
        )
    text = to_prometheus_text(obs)
    assert "obs_spans_orphaned_total" in text
    # Orphans count into the dropped total the dashboards alert on.
    snapshot = metrics_snapshot(obs)
    assert snapshot["spans_orphaned"] >= 1
