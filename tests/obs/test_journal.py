"""Flight-recorder journal: ring behavior, subscribers, hub gating."""

import json

from repro.obs import EventJournal, Observability
from repro.obs.hub import DISABLED


# ----------------------------------------------------------------------
# Ring buffer semantics
# ----------------------------------------------------------------------
def test_record_assigns_monotonic_ids_and_preserves_order():
    journal = EventJournal()
    for index in range(5):
        journal.record("pbft.vote", float(index), participant="C",
                       node=f"C-{index % 4}", seq=index)
    events = journal.events()
    assert [e.event_id for e in events] == [1, 2, 3, 4, 5]
    assert [e.at_ms for e in events] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert journal.recorded == 5
    assert journal.dropped == 0
    assert len(journal) == 5


def test_capacity_evicts_oldest_and_counts_drops():
    journal = EventJournal(max_events=3)
    for index in range(7):
        journal.record("log.append", float(index), participant="C",
                       position=index)
    assert journal.recorded == 7
    assert journal.dropped == 4
    assert len(journal) == 3
    # The retained window is the most recent suffix.
    assert [e.args["position"] for e in journal.events()] == [4, 5, 6]
    # Event ids keep counting even across drops.
    assert [e.event_id for e in journal.events()] == [5, 6, 7]


def test_queries_by_kind_and_node():
    journal = EventJournal()
    journal.record("pbft.vote", 1.0, participant="C", node="C-1")
    journal.record("pbft.vote", 2.0, participant="C", node="C-2")
    journal.record("daemon.ship", 3.0, participant="C", node="C-0")
    assert len(journal.of_kind("pbft.vote")) == 2
    assert [e.node for e in journal.of_kind("daemon.ship")] == ["C-0"]
    assert [e.kind for e in journal.by_node("C-1")] == ["pbft.vote"]


def test_event_dict_form_is_json_safe():
    journal = EventJournal()
    journal.record(
        "pbft.pre_prepare", 4.25, participant="C", node="C-1",
        trace=(7, 9), view=0, seq=3, digest="ab" * 32,
    )
    (event,) = journal.events()
    decoded = json.loads(json.dumps(event.to_dict()))
    assert decoded["kind"] == "pbft.pre_prepare"
    assert decoded["at_ms"] == 4.25
    assert decoded["trace"] == [7, 9]
    assert decoded["args"]["seq"] == 3


# ----------------------------------------------------------------------
# Subscribers
# ----------------------------------------------------------------------
def test_subscribers_see_every_event_synchronously():
    journal = EventJournal(max_events=2)
    seen = []
    journal.subscribe(lambda event: seen.append(event.event_id))
    for index in range(5):
        journal.record("chain.advance", float(index), participant="V")
    # Eviction does not affect subscribers: they saw all five.
    assert seen == [1, 2, 3, 4, 5]
    assert len(journal) == 2


# ----------------------------------------------------------------------
# Hub gating
# ----------------------------------------------------------------------
def test_hub_event_records_only_when_forensics_enabled():
    obs = Observability(enabled=True)
    assert obs.forensics
    obs.event("pbft.vote", participant="C", node="C-1", seq=1)
    assert len(obs.journal) == 1

    quiet = Observability(enabled=True, forensics=False)
    assert not quiet.forensics
    quiet.event("pbft.vote", participant="C", node="C-1", seq=1)
    assert len(quiet.journal) == 0

    assert not DISABLED.forensics
    DISABLED.event("pbft.vote", participant="C")
    assert len(DISABLED.journal) == 0
