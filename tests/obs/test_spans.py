"""Unit tests for span tracing and the Observability hub."""

from repro.obs.hub import DISABLED, Observability
from repro.obs.spans import SpanLog
from repro.sim.simulator import Simulator


# ----------------------------------------------------------------------
# SpanLog
# ----------------------------------------------------------------------
def test_span_nesting_links_parent_and_trace():
    log = SpanLog(max_spans=None)
    root = log.begin("commit", 0.0, participant="C")
    child = log.begin(
        "pbft.consensus", 0.5,
        trace_id=root.trace_id, parent_id=root.span_id,
    )
    log.end(child, 2.0)
    log.end(root, 3.0)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert root.parent_id is None
    assert child.duration_ms == 1.5
    assert root.duration_ms == 3.0
    assert log.by_trace(root.trace_id) == [root, child]


def test_span_ids_and_traces_unique():
    log = SpanLog()
    a = log.begin("x", 0.0)
    b = log.begin("y", 0.0)
    assert a.span_id != b.span_id
    assert a.trace_id != b.trace_id  # both roots → separate traces


def test_open_spans_and_end_idempotent():
    log = SpanLog()
    span = log.begin("x", 1.0)
    assert log.open_spans() == [span]
    log.end(span, 2.0)
    log.end(span, 99.0)  # second end is a no-op
    assert span.end_ms == 2.0
    assert log.open_spans() == []


def test_complete_records_bounded_span():
    log = SpanLog()
    span = log.complete("pbft.prepare", 1.0, 2.5, seq=7)
    assert span.start_ms == 1.0
    assert span.end_ms == 2.5
    assert span.args["seq"] == 7
    assert span.category == "pbft"


def test_span_ring_buffer_drops_oldest():
    log = SpanLog(max_spans=3)
    spans = [log.begin(f"s{i}", float(i)) for i in range(5)]
    assert len(log) == 3
    assert log.spans() == spans[2:]
    assert log.named("s0") == []
    assert log.named("s4") == [spans[4]]


# ----------------------------------------------------------------------
# Observability hub
# ----------------------------------------------------------------------
def test_hub_clock_binding():
    obs = Observability()
    assert obs.now == 0.0
    sim = Simulator(seed=0)
    obs.bind_clock(sim)
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert obs.now == 5.0


def test_hub_spans_stamped_with_virtual_time():
    sim = Simulator(seed=0)
    obs = Observability()
    obs.bind_clock(sim)
    span = obs.begin_span("commit", participant="C", node="C-0")
    sim.schedule(7.0, lambda: obs.end_span(span, position=3))
    sim.run()
    assert span.start_ms == 0.0
    assert span.end_ms == 7.0
    assert span.args["position"] == 3


def test_hub_ctx_propagation():
    obs = Observability()
    root = obs.begin_span("commit")
    ctx = obs.ctx_of(root)
    assert ctx == (root.trace_id, root.span_id)
    child = obs.begin_span("pbft.consensus", ctx)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert obs.ctx_of(None) is None


def test_disabled_hub_records_nothing():
    assert not DISABLED.enabled
    assert not DISABLED.tracing
    assert DISABLED.begin_span("x") is None
    DISABLED.end_span(None)
    assert DISABLED.complete_span("x", 0.0, 1.0) is None
    assert len(DISABLED.spans) == 0


def test_tracing_can_be_off_with_metrics_on():
    obs = Observability(enabled=True, tracing=False)
    assert obs.enabled
    assert not obs.tracing
    assert obs.begin_span("x") is None
    obs.counter("c").inc()
    assert obs.counter("c").value == 1.0


def test_entry_trace_registration_first_wins():
    obs = Observability()
    obs.register_entry_trace("C", 1, (10, 20))
    obs.register_entry_trace("C", 1, (99, 99))  # later duplicate ignored
    assert obs.entry_trace("C", 1) == (10, 20)
    assert obs.entry_trace("C", 2) is None


def test_wan_span_open_close_and_duplicates():
    sim = Simulator(seed=0)
    obs = Observability()
    obs.bind_clock(sim)
    span = obs.begin_wan_span("C", "V", 1, None, node="C-0")
    assert span is not None
    again = obs.begin_wan_span("C", "V", 1, None)  # reserve re-ship
    assert again is span
    closed = obs.end_wan_span("C", "V", 1)
    assert closed is span
    assert span.end_ms is not None
    assert obs.end_wan_span("C", "V", 1) is None  # duplicate delivery


# ----------------------------------------------------------------------
# Eviction orphan accounting
# ----------------------------------------------------------------------
def test_evicting_a_parent_orphans_retained_children():
    log = SpanLog(max_spans=2)
    root = log.begin("commit", 0.0)
    log.begin(
        "pbft.consensus", 1.0,
        trace_id=root.trace_id, parent_id=root.span_id,
    )
    assert log.orphaned == 0
    # Third span evicts the root; its retained child becomes an orphan.
    log.begin(
        "pbft.prepare", 2.0,
        trace_id=root.trace_id, parent_id=root.span_id,
    )
    assert log.dropped == 1
    assert log.orphaned >= 1


def test_child_of_already_evicted_parent_counts_immediately():
    log = SpanLog(max_spans=None)
    root = log.begin("commit", 0.0)
    log.begin(
        "late.child", 1.0,
        trace_id=root.trace_id, parent_id=999_999,  # never retained
    )
    assert log.orphaned == 1


def test_forest_surfaces_orphans_as_roots():
    log = SpanLog(max_spans=None)
    root = log.begin("commit", 0.0)
    child = log.begin(
        "pbft.consensus", 1.0,
        trace_id=root.trace_id, parent_id=root.span_id,
    )
    orphan = log.begin(
        "daemon.ship", 2.0,
        trace_id=root.trace_id, parent_id=424_242,
    )
    roots, children = log.forest(root.trace_id)
    assert roots == [root, orphan]
    assert children[root.span_id] == [child]


def test_orphan_counters_are_monotonic_under_churn():
    log = SpanLog(max_spans=3)
    first = log.begin("commit", 0.0)
    for index in range(10):
        log.begin(
            f"child-{index}", float(index + 1),
            trace_id=first.trace_id, parent_id=first.span_id,
        )
    assert log.dropped == 8  # 11 begun, 3 retained
    # Every retained child of the evicted root was orphaned exactly
    # once; counters never decrease as churn continues.
    before = log.orphaned
    log.begin("unrelated", 99.0)
    assert log.orphaned >= before
