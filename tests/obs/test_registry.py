"""Unit tests for the metrics registry primitives."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------
def test_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("commits_total", participant="C")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    counter = registry.counter("commits_total")
    counter.inc(1.0)
    with pytest.raises(ConfigurationError):
        counter.inc(-1.0)
    assert counter.value == 1.0  # unchanged after the rejected call


def test_counter_zero_increment_is_legal():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    counter.inc(0.0)
    assert counter.value == 0.0


# ----------------------------------------------------------------------
# Gauge
# ----------------------------------------------------------------------
def test_gauge_moves_both_directions():
    registry = MetricsRegistry()
    gauge = registry.gauge("log_length", participant="V")
    gauge.set(10.0)
    gauge.inc(5.0)
    gauge.dec(12.0)
    assert gauge.value == 3.0


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_bucketing_upper_bounds_inclusive():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms", buckets=(1.0, 5.0, 10.0))
    for value in (0.5, 1.0, 3.0, 10.0, 99.0):
        hist.observe(value)
    # le-inclusive Prometheus semantics: 1.0 lands in the le=1 bucket,
    # 10.0 in le=10, 99.0 in +Inf.
    assert hist.bucket_counts == [2, 1, 1, 1]
    assert hist.cumulative_buckets() == [
        (1.0, 2), (5.0, 3), (10.0, 4), (float("inf"), 5),
    ]
    assert hist.count == 5
    assert hist.sum == pytest.approx(113.5)
    assert hist.min == 0.5
    assert hist.max == 99.0
    assert hist.mean == pytest.approx(113.5 / 5)


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        registry.histogram("bad", buckets=(5.0, 1.0))
    with pytest.raises(ConfigurationError):
        registry.histogram("dup", buckets=(1.0, 1.0))


def test_histogram_windowing_by_virtual_time():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms", window_ms=100.0)
    hist.observe(1.0, at=0.0)
    hist.observe(3.0, at=99.9)
    hist.observe(10.0, at=100.0)
    hist.observe(20.0, at=250.0)
    assert hist.window_series() == [
        (0, 2, pytest.approx(2.0)),
        (1, 1, pytest.approx(10.0)),
        (2, 1, pytest.approx(20.0)),
    ]


def test_histogram_unwindowed_ignores_time():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms")
    hist.observe(1.0, at=123.0)
    assert hist.window_series() == []


def test_histogram_rejects_nonpositive_window():
    registry = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        registry.histogram("w", window_ms=0.0)


def test_default_buckets_are_ascending():
    assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
        set(DEFAULT_LATENCY_BUCKETS_MS)
    )


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_registry_memoizes_on_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("x", participant="C")
    b = registry.counter("x", participant="C")
    c = registry.counter("x", participant="V")
    assert a is b
    assert a is not c
    assert len(registry) == 2


def test_registry_label_order_is_canonical():
    registry = MetricsRegistry()
    a = registry.counter("x", src="C", dst="V")
    b = registry.counter("x", dst="V", src="C")
    assert a is b


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("x", participant="C")
    with pytest.raises(ConfigurationError):
        registry.gauge("x", participant="V")
    with pytest.raises(ConfigurationError):
        registry.histogram("x")


def test_registry_introspection_sorted_and_typed():
    registry = MetricsRegistry()
    registry.gauge("g")
    registry.counter("b")
    registry.counter("a")
    registry.histogram("h")
    assert [m.name for m in registry.all_metrics()] == ["a", "b", "g", "h"]
    assert all(isinstance(m, Counter) for m in registry.counters())
    assert all(isinstance(m, Gauge) for m in registry.gauges())
    assert all(isinstance(m, Histogram) for m in registry.histograms())
    assert registry.get("a") is registry.counter("a")
    assert registry.get("missing") is None


# ----------------------------------------------------------------------
# Windowed-histogram edge cases
# ----------------------------------------------------------------------
def test_boundary_observation_lands_in_higher_window():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms", window_ms=100.0)
    hist.observe(1.0, at=99.999)
    hist.observe(2.0, at=100.0)  # exactly on the boundary
    assert hist.window_count(0) == 1
    assert hist.window_count(1) == 1
    assert hist.window_sum(1) == pytest.approx(2.0)


def test_empty_window_quantile_is_none():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms", window_ms=100.0)
    hist.observe(5.0, at=0.0)
    assert hist.window_quantile(7, 0.99) is None  # window never seen
    assert hist.window_cumulative_buckets(7) == []
    assert hist.window_count(7) == 0
    assert hist.window_sum(7) == 0.0


def test_quantile_of_empty_histogram_is_none():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms")
    assert hist.quantile(0.5) is None


def test_quantile_interpolates_within_bucket():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.6, 3.0):
        hist.observe(value)
    # Prometheus semantics: rank q*total, linear within the bucket.
    q = hist.quantile(0.5)
    assert 1.0 <= q <= 2.0


def test_quantile_of_overflow_bucket_reports_last_finite_bound():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms", buckets=(1.0, 2.0))
    hist.observe(100.0)  # +Inf bucket only
    assert hist.quantile(0.99) == pytest.approx(2.0)


def test_quantile_rejects_out_of_range_q():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_ms")
    hist.observe(1.0)
    with pytest.raises(ConfigurationError):
        hist.quantile(1.5)


def test_window_cumulative_buckets_are_monotonic():
    registry = MetricsRegistry()
    hist = registry.histogram(
        "lat_ms", window_ms=100.0, buckets=(1.0, 5.0, 10.0)
    )
    for value in (0.5, 2.0, 7.0, 50.0):
        hist.observe(value, at=10.0)
    pairs = hist.window_cumulative_buckets(0)
    bounds = [bound for bound, _ in pairs]
    counts = [count for _, count in pairs]
    assert bounds == sorted(bounds)
    assert counts == sorted(counts)  # cumulative: never decreases
    assert counts[-1] == hist.window_count(0) == 4
