"""Harness mechanics and the CLI, kept fast with toy benchmarks."""

import json

from repro.bench import __main__ as cli
from repro.bench.harness import (
    Benchmark,
    build_document,
    run_benchmark,
    run_suite,
)
from repro.bench.schema import validate
from repro.crypto.caches import caches_enabled, set_caches_enabled


def _toy(seed: int):
    calls = {"n": 0}

    def operation():
        calls["n"] += 1
        return {"calls": calls["n"], "seed": seed}

    return operation, 10


TOY = Benchmark("micro.toy", "micro", _toy)


class TestRunBenchmark:
    def test_result_shape(self):
        result = run_benchmark(TOY, seed=3, repeats=4, warmup=2)
        assert result.name == "micro.toy"
        assert result.ops == 10
        assert len(result.samples_ns) == 4
        assert all(ns >= 0 for ns in result.samples_ns)
        assert result.best_ns == min(result.samples_ns)
        assert result.ns_per_op == result.best_ns / 10
        # warmup(2) + repeats(4) calls; extra keeps the final call's dict.
        assert result.extra == {"calls": 6, "seed": 3}

    def test_repeats_floor_is_one(self):
        result = run_benchmark(TOY, seed=0, repeats=0, warmup=0)
        assert len(result.samples_ns) == 1
        assert result.repeats == 1


class TestRunSuite:
    def test_cache_setting_restored(self):
        previous = set_caches_enabled(True)
        try:
            seen = []
            probe = Benchmark(
                "micro.probe", "micro",
                lambda seed: (lambda: seen.append(caches_enabled()), 1),
            )
            run_suite([probe], seed=0, repeats=1, warmup=0, caches=False)
            assert seen == [False]
            assert caches_enabled() is True
        finally:
            set_caches_enabled(previous)

    def test_progress_callback(self):
        lines = []
        run_suite(
            [TOY], seed=0, repeats=1, warmup=0, progress=lines.append
        )
        assert any("micro.toy" in line for line in lines)


class TestBuildDocument:
    def test_document_validates_and_carries_comparison(self):
        results = run_suite([TOY], seed=7, repeats=2, warmup=0)
        control = run_suite([TOY], seed=7, repeats=2, warmup=0, caches=False)
        document = build_document(7, 2, 0, results, control)
        assert validate(document) == []
        assert document["caches_enabled"] is True
        assert document["control"]["caches_enabled"] is False
        comparison = document["comparison"]["micro.toy"]
        assert comparison["speedup"] > 0

    def test_document_without_control(self):
        results = run_suite([TOY], seed=7, repeats=1, warmup=0)
        document = build_document(7, 1, 0, results)
        assert validate(document) == []
        assert "control" not in document
        assert "comparison" not in document


class TestCLI:
    def test_micro_filter_writes_valid_record(self, tmp_path):
        out = tmp_path / "bench.json"
        code = cli.main([
            "--only", "micro", "--filter", "digest.cached",
            "--repeats", "1", "--warmup", "0", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert validate(document) == []
        names = [result["name"] for result in document["results"]]
        assert names == ["micro.digest.cached"]

    def test_validate_mode_accepts_and_rejects(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert cli.main([
            "--only", "micro", "--filter", "digest.cached",
            "--repeats", "1", "--warmup", "0", "--out", str(out),
        ]) == 0
        assert cli.main(["--validate", str(out)]) == 0
        broken = tmp_path / "broken.json"
        document = json.loads(out.read_text())
        del document["seed"]
        broken.write_text(json.dumps(document))
        assert cli.main(["--validate", str(broken)]) == 1
        assert cli.main(["--validate", str(tmp_path / "missing.json")]) == 2

    def test_no_matching_benchmarks_errors(self):
        assert cli.main(["--filter", "no-such-benchmark"]) == 2

    def test_disable_caches_emits_control(self, tmp_path):
        out = tmp_path / "bench.json"
        code = cli.main([
            "--only", "micro", "--filter", "digest.cached",
            "--repeats", "1", "--warmup", "0",
            "--disable-caches", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert validate(document) == []
        assert document["control"]["caches_enabled"] is False
        assert "micro.digest.cached" in document["comparison"]

    def test_disable_codec_emits_codec_control(self, tmp_path):
        out = tmp_path / "bench.json"
        code = cli.main([
            "--only", "micro", "--filter", "wire.encode",
            "--repeats", "1", "--warmup", "0",
            "--disable-codec", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert validate(document) == []
        assert document["codec_control"]["codec_enabled"] is False
        assert "micro.wire.encode" in document["codec_comparison"]

    def test_wire_codec_gate_passes_on_real_micros(self, tmp_path):
        # A deliberately weak floor: the gate's pass/fail plumbing is
        # under test here, not the performance claim (bench-smoke runs
        # the real ×3 floor).
        code = cli.main([
            "--only", "micro", "--filter", "wire",
            "--repeats", "1", "--warmup", "0",
            "--gate-wire-codec", "1.1",
            "--out", str(tmp_path / "bench.json"),
        ])
        assert code == 0

    def test_wire_codec_gate_fails_on_unreachable_floor(self, tmp_path):
        code = cli.main([
            "--only", "micro", "--filter", "wire",
            "--repeats", "1", "--warmup", "0",
            "--gate-wire-codec", "1e9",
            "--out", str(tmp_path / "bench.json"),
        ])
        assert code == 1

    def test_wire_codec_gate_fails_when_pair_filtered_out(self, tmp_path):
        # A filter that drops the decode pair leaves the gate unable to
        # check it; that is a configuration error, not a pass.
        code = cli.main([
            "--only", "micro", "--filter", "wire.encode",
            "--repeats", "1", "--warmup", "0",
            "--gate-wire-codec", "1.1",
            "--out", str(tmp_path / "bench.json"),
        ])
        assert code == 1
