"""The latency-attribution bench plumbing and the regression gate."""

import pytest

from repro.bench.latency import (
    ABSOLUTE_SLACK_MS,
    LatencyConservationError,
    gate_latency_regression,
    latency_block,
)
from repro.obs import Observability
from repro.obs.demo import trace_commit_lifecycle


def _doc(p99_by_series, name="macro.commits.sustained"):
    """A minimal BENCH document with one latency-bearing result.

    ``p99_by_series`` maps "end_to_end" plus segment names to p99 ms.
    """
    segments = [
        {"segment": series, "p50": 0.0, "p90": 0.0, "p99": p99,
         "mean": 0.0, "max": p99, "total_ms": p99, "share": 0.1,
         "present_ops": 1}
        for series, p99 in p99_by_series.items()
        if series != "end_to_end"
    ]
    return {
        "results": [
            {
                "name": name,
                "latency": {
                    "ops": 100,
                    "end_to_end_ms": {
                        "p50": 1.0, "p90": 2.0,
                        "p99": p99_by_series.get("end_to_end", 3.0),
                        "mean": 1.2, "max": 5.0,
                    },
                    "segments": segments,
                    "conservation": {"ok": True},
                },
            }
        ]
    }


# ----------------------------------------------------------------------
# latency_block
# ----------------------------------------------------------------------
def test_latency_block_from_demo_trace():
    obs = Observability(enabled=True)
    trace_commit_lifecycle(obs)
    block = latency_block(obs, sample_every=1)
    assert block["sample_every"] == 1
    assert block["ops"] > 0
    assert block["conservation"]["ok"] is True
    assert "slo" in block
    for numbers in block["slo"].values():
        assert numbers["ops"] == block["ops"]


def test_latency_block_raises_on_broken_conservation():
    # An untraced hub decomposes zero ops, which the attribution
    # report refuses to bless — the block must raise, not record.
    obs = Observability(enabled=True, tracing=False)
    with pytest.raises(LatencyConservationError):
        latency_block(obs, sample_every=1)


# ----------------------------------------------------------------------
# gate_latency_regression
# ----------------------------------------------------------------------
def test_gate_passes_identical_documents():
    doc = _doc({"end_to_end": 20.0, "wan.transmit": 18.0})
    assert gate_latency_regression(doc, doc) == []


def test_gate_passes_within_tolerance():
    baseline = _doc({"end_to_end": 20.0})
    current = _doc({"end_to_end": 24.0})  # x1.2 < x1.25
    assert gate_latency_regression(current, baseline) == []


def test_gate_fails_synthetically_slowed_run():
    baseline = _doc({"end_to_end": 20.0, "wan.transmit": 18.0})
    slowed = _doc({"end_to_end": 40.0, "wan.transmit": 36.0})  # x2
    violations = gate_latency_regression(slowed, baseline)
    assert len(violations) == 2
    assert any("end_to_end" in v for v in violations)
    assert any("wan.transmit" in v for v in violations)


def test_gate_absolute_slack_forgives_micro_segments():
    baseline = _doc({"end_to_end": 20.0, "pbft.prepare": 0.001})
    current = _doc({"end_to_end": 20.0, "pbft.prepare": 0.03})
    # x30 growth, but under the absolute slack — float dust, not a
    # regression.
    assert current["results"][0]["latency"]["segments"][0]["p99"] < (
        0.001 * 1.25 + ABSOLUTE_SLACK_MS
    )
    assert gate_latency_regression(current, baseline) == []


def test_gate_vanished_segment_is_an_improvement():
    baseline = _doc({"end_to_end": 20.0, "pbft.view_change": 15.0})
    current = _doc({"end_to_end": 20.0})
    assert gate_latency_regression(current, baseline) == []


def test_gate_missing_current_latency_is_a_violation():
    baseline = _doc({"end_to_end": 20.0})
    current = {"results": [{"name": "macro.commits.sustained"}]}
    violations = gate_latency_regression(current, baseline)
    assert violations and "recorded none" in violations[0]


def test_gate_pre_v4_baseline_has_nothing_to_compare():
    baseline = {"results": [{"name": "macro.commits.sustained"}]}
    current = _doc({"end_to_end": 99.0})
    assert gate_latency_regression(current, baseline) == []


def test_gate_rejects_non_gating_tolerance():
    doc = _doc({"end_to_end": 20.0})
    with pytest.raises(ValueError):
        gate_latency_regression(doc, doc, tolerance=1.0)
