"""The BENCH_*.json schema validator."""

import pytest

from repro.bench.schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SchemaError,
    check,
    validate,
)


def _result(name="micro.example", **overrides):
    result = {
        "name": name,
        "kind": "micro",
        "ops": 100,
        "repeats": 3,
        "ns_per_op": 123.4,
        "ops_per_sec": 8_103_727.7,
        "samples_ns": [12340, 12500, 13000],
        "extra": {},
    }
    result.update(overrides)
    return result


def _document(**overrides):
    document = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "seed": 7,
        "repeats": 3,
        "warmup": 1,
        "caches_enabled": True,
        "results": [_result()],
    }
    document.update(overrides)
    return document


class TestValidDocuments:
    def test_minimal_document_validates(self):
        assert validate(_document()) == []

    def test_check_passes_silently(self):
        check(_document())

    def test_document_with_control_and_comparison(self):
        document = _document(
            control={"caches_enabled": False, "results": [_result()]},
            comparison={
                "micro.example": {
                    "cached_ops_per_sec": 2.0,
                    "control_ops_per_sec": 1.0,
                    "speedup": 2.0,
                }
            },
        )
        assert validate(document) == []


class TestViolations:
    def test_non_object_document(self):
        assert validate([1, 2]) != []
        assert validate(None) != []

    @pytest.mark.parametrize(
        "field",
        ["schema", "schema_version", "seed", "repeats", "warmup",
         "caches_enabled", "results"],
    )
    def test_missing_top_level_field(self, field):
        document = _document()
        del document[field]
        assert any(field in error for error in validate(document))

    def test_wrong_schema_name(self):
        errors = validate(_document(schema="something/v9"))
        assert any("schema" in error for error in errors)

    def test_wrong_schema_version(self):
        errors = validate(_document(schema_version=99))
        assert any("schema_version" in error for error in errors)

    def test_empty_results(self):
        errors = validate(_document(results=[]))
        assert any("empty" in error for error in errors)

    def test_duplicate_result_names(self):
        errors = validate(_document(results=[_result(), _result()]))
        assert any("duplicate" in error for error in errors)

    def test_bad_kind(self):
        errors = validate(_document(results=[_result(kind="nano")]))
        assert any("kind" in error for error in errors)

    def test_non_positive_ops(self):
        errors = validate(_document(results=[_result(ops=0)]))
        assert any("ops" in error for error in errors)

    def test_bool_is_not_an_int_ops(self):
        errors = validate(_document(results=[_result(ops=True)]))
        assert errors != []

    def test_negative_rate(self):
        errors = validate(_document(results=[_result(ns_per_op=-1.0)]))
        assert any("ns_per_op" in error for error in errors)

    def test_non_integer_samples(self):
        errors = validate(
            _document(results=[_result(samples_ns=[1.5, "x"])])
        )
        assert any("samples_ns" in error for error in errors)

    def test_control_must_disable_caches(self):
        document = _document(
            control={"caches_enabled": True, "results": [_result()]}
        )
        errors = validate(document)
        assert any("control.caches_enabled" in error for error in errors)

    def test_control_results_validated(self):
        document = _document(
            control={"caches_enabled": False, "results": [_result(ops=-5)]}
        )
        assert validate(document) != []

    def test_check_raises_with_every_violation(self):
        document = _document(results=[_result(ops=0, kind="nano")])
        with pytest.raises(SchemaError) as excinfo:
            check(document)
        message = str(excinfo.value)
        assert "ops" in message and "kind" in message


class TestVersioning:
    """v4 accepts archived v1/v2/v3 documents; mismatched pairs fail."""

    def test_current_schema_is_v4(self):
        assert SCHEMA_NAME == "repro.bench/v4"
        assert SCHEMA_VERSION == 4

    def test_v1_document_still_validates(self):
        document = _document(schema="repro.bench/v1", schema_version=1)
        assert validate(document) == []

    def test_v2_document_still_validates(self):
        document = _document(schema="repro.bench/v2", schema_version=2)
        assert validate(document) == []

    def test_v3_document_still_validates(self):
        document = _document(schema="repro.bench/v3", schema_version=3)
        assert validate(document) == []

    def test_mismatched_name_version_pair_rejected(self):
        errors = validate(
            _document(schema="repro.bench/v1", schema_version=2)
        )
        assert any("schema_version" in error for error in errors)


def _codec_comparison(**overrides):
    entry = {
        "codec_ops_per_sec": 3.0,
        "control_ops_per_sec": 2.0,
        "speedup": 1.5,
        "work_identical": True,
    }
    entry.update(overrides)
    return entry


class TestCodecControlBlock:
    """The v3 ``codec_control``/``codec_comparison`` sections."""

    def test_document_with_codec_control(self):
        document = _document(
            codec_enabled=True,
            wire_fidelity=False,
            codec_control={"codec_enabled": False, "results": [_result()]},
            codec_comparison={"micro.example": _codec_comparison()},
        )
        assert validate(document) == []

    def test_codec_fields_are_optional(self):
        assert validate(_document()) == []

    def test_codec_enabled_must_be_bool(self):
        errors = validate(_document(codec_enabled="yes"))
        assert any("codec_enabled" in error for error in errors)

    def test_wire_fidelity_must_be_bool(self):
        errors = validate(_document(wire_fidelity=1))
        assert any("wire_fidelity" in error for error in errors)

    def test_codec_control_must_disable_codec(self):
        document = _document(
            codec_control={"codec_enabled": True, "results": [_result()]}
        )
        errors = validate(document)
        assert any("codec_control.codec_enabled" in error for error in errors)

    def test_codec_control_results_validated(self):
        document = _document(
            codec_control={"codec_enabled": False, "results": [_result(ops=-5)]}
        )
        assert validate(document) != []

    def test_codec_comparison_requires_work_identical_bool(self):
        document = _document(
            codec_comparison={
                "micro.example": _codec_comparison(work_identical="yes")
            }
        )
        errors = validate(document)
        assert any("work_identical" in error for error in errors)

    def test_codec_comparison_rates_must_be_numeric(self):
        document = _document(
            codec_comparison={
                "micro.example": _codec_comparison(codec_ops_per_sec="fast")
            }
        )
        errors = validate(document)
        assert any("codec_ops_per_sec" in error for error in errors)


def _memory(**overrides):
    memory = {
        "retained_high_water": 812,
        "retained_bound": 4_000,
        "by_node": {"A-0": 812, "B-0": 640},
    }
    memory.update(overrides)
    return memory


class TestMemoryBlock:
    """The optional v2 ``memory`` block on sustained-load results."""

    def test_result_with_memory_validates(self):
        document = _document(results=[_result(memory=_memory())])
        assert validate(document) == []

    def test_memory_is_optional(self):
        assert validate(_document()) == []

    def test_non_object_memory(self):
        errors = validate(_document(results=[_result(memory=[1])]))
        assert any("memory" in error for error in errors)

    def test_negative_high_water(self):
        errors = validate(
            _document(
                results=[_result(memory=_memory(retained_high_water=-1))]
            )
        )
        assert any("retained_high_water" in error for error in errors)

    def test_bool_is_not_an_int_bound(self):
        errors = validate(
            _document(results=[_result(memory=_memory(retained_bound=True))])
        )
        assert any("retained_bound" in error for error in errors)

    def test_by_node_values_must_be_counts(self):
        errors = validate(
            _document(
                results=[_result(memory=_memory(by_node={"A-0": "many"}))]
            )
        )
        assert any("by_node" in error for error in errors)

    def test_high_water_over_bound_rejected(self):
        errors = validate(
            _document(
                results=[
                    _result(
                        memory=_memory(
                            retained_high_water=5_000, retained_bound=4_000
                        )
                    )
                ]
            )
        )
        assert any("exceeds" in error for error in errors)


def _latency(**overrides):
    latency = {
        "ops": 188,
        "sample_every": 16,
        "end_to_end_ms": {
            "p50": 0.772, "p90": 12.4, "p99": 25.973,
            "mean": 3.1, "max": 41.0,
        },
        "segments": [
            {
                "segment": "pbft.prepare",
                "p50": 0.2, "p90": 0.4, "p99": 0.6,
                "mean": 0.25, "max": 1.0,
                "total_ms": 47.0, "share": 0.08, "present_ops": 188,
            },
            {
                "segment": "wan.transmit",
                "p50": 0.0, "p90": 20.0, "p99": 21.0,
                "mean": 4.0, "max": 22.0,
                "total_ms": 750.0, "share": 0.79, "present_ops": 38,
            },
        ],
        "conservation": {
            "checked_ops": 188,
            "max_error_ms": 0.0,
            "tolerance_ms": 1e-6,
            "unattributed_p99_fraction": 0.0,
            "unattributed_p99_bound": 0.05,
            "ok": True,
        },
    }
    latency.update(overrides)
    return latency


class TestLatencyBlock:
    """The optional v4 ``latency`` block on sustained-load results."""

    def test_result_with_latency_validates(self):
        document = _document(results=[_result(latency=_latency())])
        assert validate(document) == []

    def test_latency_is_optional(self):
        assert validate(_document()) == []

    def test_non_object_latency(self):
        errors = validate(_document(results=[_result(latency=[1])]))
        assert any("latency" in error for error in errors)

    def test_negative_ops(self):
        errors = validate(
            _document(results=[_result(latency=_latency(ops=-1))])
        )
        assert any("ops" in error for error in errors)

    def test_end_to_end_requires_numeric_percentiles(self):
        bad = _latency()
        bad["end_to_end_ms"]["p99"] = "slow"
        errors = validate(_document(results=[_result(latency=bad)]))
        assert any("p99" in error for error in errors)

    def test_duplicate_segment_names_rejected(self):
        bad = _latency()
        bad["segments"].append(dict(bad["segments"][0]))
        errors = validate(_document(results=[_result(latency=bad)]))
        assert any("duplicate" in error for error in errors)

    def test_failed_conservation_rejected(self):
        bad = _latency()
        bad["conservation"]["ok"] = False
        errors = validate(_document(results=[_result(latency=bad)]))
        assert any("conservation" in error for error in errors)

    def test_fraction_over_bound_rejected(self):
        bad = _latency()
        bad["conservation"]["unattributed_p99_fraction"] = 0.2
        errors = validate(_document(results=[_result(latency=bad)]))
        assert any("unattributed" in error for error in errors)
