"""Tests for workload generation and the experiment runner."""

from repro.sim.simulator import Simulator
from repro.workloads.generator import BatchWorkload, make_batch
from repro.workloads.runner import sequential_commit_latency


def test_make_batch_has_requested_size():
    for size in (10, 1000, 100_000):
        assert len(make_batch(3, size)) == size


def test_make_batch_deterministic_per_seed():
    assert make_batch(5, 100, seed=1) == make_batch(5, 100, seed=1)
    assert make_batch(5, 100, seed=1) != make_batch(5, 100, seed=2)


def test_make_batch_distinct_per_index():
    assert make_batch(1, 100) != make_batch(2, 100)


def test_batch_workload_counts():
    workload = BatchWorkload(measured=10, warmup=3, batch_bytes=50)
    batches = workload.batch_list()
    assert len(batches) == 13
    assert workload.total == 13
    assert all(len(batch) == 50 for batch in batches)


def test_sequential_commit_latency_records_after_warmup():
    sim = Simulator(seed=1)

    def fake_commit(batch, payload_bytes):
        return sim.sleep(2.0)  # constant 2ms 'commit'

    workload = BatchWorkload(measured=5, warmup=2, batch_bytes=100)
    result = sequential_commit_latency(sim, fake_commit, workload)
    assert len(result["series"]) == 5
    assert result["latency_ms"] == 2.0
    # throughput identity: 100 bytes / 2 ms = 0.05 MB/s
    assert abs(result["throughput_mb_s"] - 0.05) < 1e-9
