"""Tests for workload generation and the experiment runner."""

from repro.sim.simulator import Simulator
from repro.workloads.generator import BatchWorkload, make_batch
from repro.workloads.runner import sequential_commit_latency


def test_make_batch_has_requested_size():
    for size in (10, 1000, 100_000):
        assert len(make_batch(3, size)) == size


def test_make_batch_deterministic_per_seed():
    assert make_batch(5, 100, seed=1) == make_batch(5, 100, seed=1)
    assert make_batch(5, 100, seed=1) != make_batch(5, 100, seed=2)


def test_make_batch_distinct_per_index():
    assert make_batch(1, 100) != make_batch(2, 100)


def test_batch_workload_counts():
    workload = BatchWorkload(measured=10, warmup=3, batch_bytes=50)
    batches = workload.batch_list()
    assert len(batches) == 13
    assert workload.total == 13
    assert all(len(batch) == 50 for batch in batches)


def test_sequential_commit_latency_records_after_warmup():
    sim = Simulator(seed=1)

    def fake_commit(batch, payload_bytes):
        return sim.sleep(2.0)  # constant 2ms 'commit'

    workload = BatchWorkload(measured=5, warmup=2, batch_bytes=100)
    result = sequential_commit_latency(sim, fake_commit, workload)
    assert len(result["series"]) == 5
    assert result["latency_ms"] == 2.0
    # throughput identity: 100 bytes / 2 ms = 0.05 MB/s
    assert abs(result["throughput_mb_s"] - 0.05) < 1e-9


class TestOpenLoopWorkload:
    def test_schedule_is_deterministic_per_seed(self):
        from repro.workloads import OpenLoopWorkload

        first = list(OpenLoopWorkload(total=200, seed=3).gaps_ms())
        second = list(OpenLoopWorkload(total=200, seed=3).gaps_ms())
        other = list(OpenLoopWorkload(total=200, seed=4).gaps_ms())
        assert first == second
        assert first != other
        assert len(first) == 200

    def test_bursts_inject_zero_gaps_without_changing_total(self):
        from repro.workloads import OpenLoopWorkload

        workload = OpenLoopWorkload(
            total=100, seed=1, burst_every=10, burst_size=4
        )
        gaps = list(workload.gaps_ms())
        assert len(gaps) == 100
        assert gaps.count(0.0) >= 4 * (100 // (10 + 4))
        pure = list(OpenLoopWorkload(total=100, seed=1).gaps_ms())
        assert 0.0 not in pure

    def test_mean_gap_tracks_the_rate(self):
        from repro.workloads import OpenLoopWorkload

        gaps = list(
            OpenLoopWorkload(rate_per_s=500.0, total=5_000, seed=2).gaps_ms()
        )
        mean = sum(gaps) / len(gaps)
        assert 1.6 < mean < 2.4  # nominal 2 ms

    def test_payloads_are_deterministic_sized_and_indexed(self):
        from repro.workloads import OpenLoopWorkload

        workload = OpenLoopWorkload(batch_bytes=80, seed=9, clients=4)
        assert workload.payload(7) == workload.payload(7)
        assert workload.payload(7) != workload.payload(8)
        assert len(workload.payload(7)) == 80
        assert workload.payload(7).startswith("op:7:c3:")

    def test_hot_fraction_skews_keys(self):
        from repro.workloads import OpenLoopWorkload

        hot = OpenLoopWorkload(seed=5, hot_fraction=1.0)
        assert all(
            f":k0:" in hot.payload(index) for index in range(20)
        )


class TestRunOpenLoop:
    def _deployment(self, max_in_flight=0):
        from repro.core import BlockplaneConfig, BlockplaneDeployment
        from repro.sim.topology import single_dc_topology

        sim = Simulator(seed=11)
        deployment = BlockplaneDeployment(
            sim,
            single_dc_topology("DC"),
            BlockplaneConfig(
                f_independent=1, admission_max_in_flight=max_in_flight
            ),
        )
        return sim, deployment

    def test_all_offered_operations_commit(self):
        from repro.workloads import OpenLoopWorkload, run_open_loop

        sim, deployment = self._deployment()
        api = deployment.api("DC")
        stats = run_open_loop(
            sim,
            api.log_commit,
            OpenLoopWorkload(rate_per_s=2_000.0, total=300, seed=1),
        )
        assert stats["offered"] == 300
        assert stats["committed"] == 300
        assert stats["failed"] == stats["dropped"] == 0
        assert stats["duration_ms"] > 0
        # The log holds the 300 commits plus any committed truncation
        # markers the unit's own checkpointing appended (and may have
        # folded a prefix of them — total positions keep counting).
        log = deployment.unit("DC").gateway_node().local_log
        assert len(log) >= 300
        retained_commits = sum(
            1 for entry in log if entry.record_type == "log-commit"
        )
        assert retained_commits + log.base_position - 1 >= 300

    def test_shed_arrivals_are_retried_not_lost(self):
        from repro.workloads import OpenLoopWorkload, run_open_loop

        sim, deployment = self._deployment(max_in_flight=2)
        api = deployment.api("DC")
        stats = run_open_loop(
            sim,
            api.log_commit,
            OpenLoopWorkload(
                rate_per_s=5_000.0,
                total=200,
                seed=2,
                burst_every=20,
                burst_size=10,
            ),
            retry_after_ms=1.0,
            retry_budget=10_000,
        )
        assert stats["shed"] > 0, "window never filled — test is vacuous"
        assert stats["committed"] == 200
        assert stats["dropped"] == 0
        assert api.log_length() >= 200

    def test_exhausted_retry_budget_counts_dropped(self):
        from repro.errors import Overloaded
        from repro.workloads import OpenLoopWorkload, run_open_loop

        sim = Simulator(seed=3)

        def always_overloaded(value, batch_bytes):
            raise Overloaded("full")

        stats = run_open_loop(
            sim,
            always_overloaded,
            OpenLoopWorkload(rate_per_s=1_000.0, total=20, seed=3),
            retry_after_ms=1.0,
            retry_budget=3,
        )
        assert stats["offered"] == 20
        assert stats["dropped"] == 20
        assert stats["committed"] == 0
        assert stats["shed"] == 20 * 4  # initial attempt + 3 retries
