"""Unit tests for multi-decree Paxos."""

import pytest

from repro.errors import ProtocolError
from repro.paxos.node import MultiPaxosNode
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.topology import aws_four_dc_topology, symmetric_topology


def make_cluster(topology=None, seed=1):
    sim = Simulator(seed=seed)
    topology = topology or symmetric_topology(["A", "B", "C"], 10.0)
    network = Network(sim, topology)
    peers = [f"{site}-p" for site in topology.site_names]
    nodes = {
        site: MultiPaxosNode(sim, network, f"{site}-p", site, list(peers))
        for site in topology.site_names
    }
    return sim, nodes


def test_leader_election_succeeds():
    sim, nodes = make_cluster()
    future = nodes["A"].elect_leader()
    ballot = sim.run_until_resolved(future)
    assert nodes["A"].is_leader
    assert ballot[1] == "A-p"


def test_replicate_requires_leadership():
    _sim, nodes = make_cluster()
    with pytest.raises(ProtocolError):
        nodes["A"].replicate("v")


def test_replicated_value_is_chosen_everywhere():
    sim, nodes = make_cluster()
    sim.run_until_resolved(nodes["A"].elect_leader())
    slot = sim.run_until_resolved(nodes["A"].replicate("value-1"))
    sim.run(until=sim.now + 50)
    for node in nodes.values():
        assert node.chosen.get(slot) == "value-1"


def test_slots_are_sequential():
    sim, nodes = make_cluster()
    sim.run_until_resolved(nodes["A"].elect_leader())
    slots = [
        sim.run_until_resolved(nodes["A"].replicate(f"v{i}")) for i in range(5)
    ]
    assert slots == [1, 2, 3, 4, 5]


def test_replication_latency_is_majority_rtt():
    sim, nodes = make_cluster(topology=aws_four_dc_topology())
    leader = nodes["C"]
    sim.run_until_resolved(leader.elect_leader())
    start = sim.now
    sim.run_until_resolved(leader.replicate("v"))
    latency = sim.now - start
    # Majority for C = closest 2 peers; 2nd closest is V at 61ms RTT.
    assert 60.0 <= latency <= 63.0


def test_higher_ballot_deposes_leader():
    sim, nodes = make_cluster()
    sim.run_until_resolved(nodes["A"].elect_leader())
    assert nodes["A"].is_leader
    sim.run_until_resolved(nodes["B"].elect_leader())
    assert nodes["B"].is_leader
    # A's next replicate gets nacked and A steps down.
    future = nodes["A"].replicate("stale")
    sim.run(until=sim.now + 100)
    assert not nodes["A"].is_leader
    assert not future.resolved or future.exception is not None


def test_new_leader_adopts_previously_accepted_values():
    sim, nodes = make_cluster()
    sim.run_until_resolved(nodes["A"].elect_leader())
    sim.run_until_resolved(nodes["A"].replicate("chosen-by-A"))
    sim.run(until=sim.now + 50)
    # B takes over; the already-chosen value must survive in slot 1.
    sim.run_until_resolved(nodes["B"].elect_leader())
    sim.run(until=sim.now + 100)
    assert nodes["B"].chosen.get(1) == "chosen-by-A"


def test_majority_arithmetic():
    _sim, nodes = make_cluster()
    assert nodes["A"].majority == 2


def test_election_fails_without_majority():
    sim, nodes = make_cluster()
    nodes["B"].crash()
    nodes["C"].crash()
    future = nodes["A"].elect_leader()
    sim.run(until=500.0)
    assert not future.resolved


def test_replication_survives_minority_crash():
    sim, nodes = make_cluster()
    sim.run_until_resolved(nodes["A"].elect_leader())
    nodes["C"].crash()
    slot = sim.run_until_resolved(nodes["A"].replicate("v"))
    assert slot == 1


def test_learn_propagates_choices():
    sim, nodes = make_cluster()
    sim.run_until_resolved(nodes["A"].elect_leader())
    sim.run_until_resolved(nodes["A"].replicate("x"))
    sim.run(until=sim.now + 50)
    assert nodes["C"].chosen == {1: "x"}
