"""Tests for the error hierarchy and deployment configuration."""

import pytest

from repro import __version__
from repro.core.config import BlockplaneConfig
from repro.errors import (
    ConfigurationError,
    CryptoError,
    InsufficientProofError,
    InvalidSignatureError,
    LogError,
    NetworkError,
    ProcessError,
    ProtocolError,
    ReceiveVerificationError,
    ReproError,
    SimulationError,
    UnknownNodeError,
    VerificationFailed,
)


def test_version_is_exposed():
    assert __version__.count(".") == 2


def test_every_error_derives_from_repro_error():
    for error_class in (
        SimulationError,
        ProcessError,
        NetworkError,
        UnknownNodeError,
        CryptoError,
        InvalidSignatureError,
        InsufficientProofError,
        ProtocolError,
        VerificationFailed,
        LogError,
        ConfigurationError,
        ReceiveVerificationError,
    ):
        assert issubclass(error_class, ReproError)


def test_receive_verification_is_a_verification_failure():
    assert issubclass(ReceiveVerificationError, VerificationFailed)


def test_unit_size_arithmetic():
    assert BlockplaneConfig(f_independent=1).unit_size == 4
    assert BlockplaneConfig(f_independent=3).unit_size == 10
    assert BlockplaneConfig(f_independent=2).proof_size == 3
    assert BlockplaneConfig(f_geo=2).replication_set_size == 5


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        BlockplaneConfig(f_independent=0)
    with pytest.raises(ConfigurationError):
        BlockplaneConfig(f_geo=-1)
    with pytest.raises(ConfigurationError):
        BlockplaneConfig(transmission_fanout=0)
