"""BP011: per-layer dispatch exhaustiveness goldens."""

import ast
import textwrap

from repro.analysis.callgraph import build_call_graph
from repro.analysis.framework import ModuleContext, Project, registered_checkers


def ctx(module, source):
    path = "src/" + module.replace(".", "/") + ".py"
    return ModuleContext(
        path, source, ast.parse(textwrap.dedent(source)), module=module
    )


SIM_NODE = """
class Message:
    kind = "message"

class Node:
    def on_message(self, message, src):
        handler = getattr(self, f"handle_{message.kind}", None)
        handler(message, src)
"""

MESSAGES = """
from repro.sim.node import Message

class Ping(Message):
    pass

class Pong(Message):
    pass
"""


def findings_of(*pairs):
    contexts = [ctx(m, s) for m, s in pairs]
    graph = build_call_graph(contexts)
    checker = registered_checkers()["BP011"]()
    return checker.analyze_project(Project(contexts, graph, None))


def test_missing_handler_in_consuming_layer_is_flagged():
    findings = findings_of(
        ("repro.sim.node", SIM_NODE),
        ("repro.pbft.messages", MESSAGES),
        (
            "repro.pbft.replica",
            """
            from repro.sim.node import Node

            class Replica(Node):
                def handle_ping(self, msg, src):
                    pass
            """,
        ),
    )
    assert len(findings) == 1, findings
    (finding,) = findings
    assert finding.rule == "BP011"
    assert "Pong" in finding.message and "Replica" in finding.message
    assert finding.path == "src/repro/pbft/messages.py"


def test_full_coverage_is_clean():
    findings = findings_of(
        ("repro.sim.node", SIM_NODE),
        ("repro.pbft.messages", MESSAGES),
        (
            "repro.pbft.replica",
            """
            from repro.sim.node import Node

            class Replica(Node):
                def handle_ping(self, msg, src):
                    pass

                def handle_pong(self, msg, src):
                    pass
            """,
        ),
    )
    assert findings == []


def test_byzantine_subclass_is_not_reaudited():
    # A subclass overriding one handler inherits the root's coverage;
    # only the root consuming layer is audited.
    findings = findings_of(
        ("repro.sim.node", SIM_NODE),
        ("repro.pbft.messages", MESSAGES),
        (
            "repro.pbft.replica",
            """
            from repro.sim.node import Node

            class Replica(Node):
                def handle_ping(self, msg, src):
                    pass

                def handle_pong(self, msg, src):
                    pass

            class EquivocatingReplica(Replica):
                def handle_ping(self, msg, src):
                    pass
            """,
        ),
    )
    assert findings == []


def test_disconnected_class_is_not_a_consuming_layer():
    # A class with handler-shaped methods but no Node ancestry (no
    # dispatcher in its MRO) is outside the state machine.
    findings = findings_of(
        ("repro.sim.node", SIM_NODE),
        ("repro.pbft.messages", MESSAGES),
        (
            "repro.pbft.replica",
            """
            from repro.sim.node import Node

            class Replica(Node):
                def handle_ping(self, msg, src):
                    pass

                def handle_pong(self, msg, src):
                    pass

            class OfflineAnalyzer:
                def handle_ping(self, msg, src):
                    pass
            """,
        ),
    )
    assert findings == []


def test_orphan_handler_is_flagged():
    findings = findings_of(
        ("repro.sim.node", SIM_NODE),
        ("repro.pbft.messages", MESSAGES),
        (
            "repro.pbft.replica",
            """
            from repro.sim.node import Node

            class Replica(Node):
                def handle_ping(self, msg, src):
                    pass

                def handle_pong(self, msg, src):
                    pass

                def handle_zap(self, msg, src):
                    pass
            """,
        ),
    )
    assert len(findings) == 1
    assert "orphan handler `handle_zap`" in findings[0].message


def test_local_message_classes_count_for_orphan_inventory():
    # Kinds declared outside a */messages.py module (baseline-local
    # wire types) still satisfy the orphan check.
    findings = findings_of(
        ("repro.sim.node", SIM_NODE),
        ("repro.pbft.messages", MESSAGES),
        (
            "repro.baselines.hier",
            """
            from repro.sim.node import Node, Message

            class GlobalAccept(Message):
                pass

            class HierNode(Node):
                def handle_global_accept(self, msg, src):
                    pass
            """,
        ),
        (
            "repro.pbft.replica",
            """
            from repro.sim.node import Node

            class Replica(Node):
                def handle_ping(self, msg, src):
                    pass

                def handle_pong(self, msg, src):
                    pass
            """,
        ),
    )
    assert findings == []
