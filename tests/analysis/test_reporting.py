"""SARIF reporter, JSON interproc section, and baseline diff mode."""

import json

from repro.analysis.__main__ import main
from repro.analysis.baseline import (
    fingerprint,
    load_baseline,
    new_findings,
    render_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.framework import registered_checkers
from repro.analysis.reporters import render_json, render_sarif


def bad_module(tmp_path, name="clock.py", body=None):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / name
    target.write_text(
        body
        or "import time\n\ndef now():\n    return time.time()\n"
    )
    return target


def test_sarif_document_shape():
    finding = Finding("BP001", "src/repro/core/x.py", 4, 11, "wall-clock")
    document = json.loads(render_sarif([finding], registered_checkers()))
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    assert run["tool"]["driver"]["name"] == "bp-lint"
    (rule,) = run["tool"]["driver"]["rules"]
    assert rule["id"] == "BP001"
    assert rule["shortDescription"]["text"]
    (result,) = run["results"]
    assert result["ruleId"] == "BP001"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/core/x.py"
    assert location["region"] == {"startLine": 4, "startColumn": 12}


def test_json_interproc_section():
    document = json.loads(
        render_json([], interproc={"unresolved_fraction": 0.05})
    )
    assert document["interproc"]["unresolved_fraction"] == 0.05
    assert "interproc" not in json.loads(render_json([]))


def test_cli_sarif_format(tmp_path, capsys):
    bad = bad_module(tmp_path)
    assert main(["--format", "sarif", str(bad)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["runs"][0]["results"][0]["ruleId"] == "BP001"


def test_fingerprint_ignores_line_numbers():
    a = Finding("BP001", "x.py", 4, 0, "wall-clock read")
    b = Finding("BP001", "x.py", 90, 7, "wall-clock read")
    assert fingerprint(a) == fingerprint(b)
    assert fingerprint(a) != fingerprint(
        Finding("BP002", "x.py", 4, 0, "wall-clock read")
    )


def test_baseline_round_trip(tmp_path):
    finding = Finding("BP001", "x.py", 4, 0, "wall-clock read")
    path = tmp_path / "baseline.json"
    path.write_text(render_baseline([finding]))
    accepted = load_baseline(str(path))
    assert new_findings([finding], accepted) == []
    fresh = Finding("BP002", "x.py", 9, 0, "raw quorum arithmetic")
    assert new_findings([finding, fresh], accepted) == [fresh]


def test_cli_baseline_diff_mode(tmp_path, capsys):
    bad = bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"
    # Record the legacy finding, then the same run passes against it.
    assert main(["--write-baseline", str(baseline), str(bad)]) == 0
    assert main(["--baseline", str(baseline), str(bad)]) == 0
    out = capsys.readouterr().out
    assert "1 accepted, 0 new" in out
    # A new finding elsewhere still fails the run.
    worse = bad_module(
        tmp_path,
        name="clock2.py",
        body="import random\n\ndef roll():\n    return random.random()\n",
    )
    assert main(["--baseline", str(baseline), str(bad), str(worse)]) == 1


def test_cli_rejects_malformed_baseline(tmp_path, capsys):
    bad = bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{}")
    assert main(["--baseline", str(baseline), str(bad)]) == 2
    assert "malformed baseline" in capsys.readouterr().err
