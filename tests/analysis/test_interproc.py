"""Interprocedural taint engine: BP009/BP010 goldens.

The centerpiece fixture is the cross-function unverified snapshot
install: the handler decodes a wire offer in one method and a helper
two hops away appends it to the Local Log. BP003/BP005 are
intraprocedural and provably blind to it (asserted below); BP009 walks
the call graph and catches it.
"""

import ast
import textwrap

from repro.analysis.framework import ModuleContext, registered_checkers
from repro.analysis.interproc import (
    bp009_findings,
    bp010_findings,
    run_taint_engine,
)


def ctx(module, source):
    path = "src/" + module.replace(".", "/") + ".py"
    return ModuleContext(
        path, source, ast.parse(textwrap.dedent(source)), module=module
    )


def engine_of(*pairs):
    contexts = [ctx(m, s) for m, s in pairs]
    _, engine = run_taint_engine(contexts)
    return contexts, engine


WIRE = """
def decode_sealed(raw):
    return raw
"""

SNAPSHOT_INSTALL = """
from repro.core.wire import decode_sealed

class LocalLog:
    def append(self, entry):
        pass

class Daemon:
    def __init__(self):
        self.log = LocalLog()

    def handle_snapshot_offer(self, msg, src):
        entry = decode_sealed(msg)
        self._stage(entry)

    def _stage(self, entry):
        self._install(entry)

    def _install(self, entry):
        self.log.append(entry)
"""


def test_bp009_catches_cross_function_snapshot_install():
    _, engine = engine_of(
        ("repro.core.wire", WIRE),
        ("repro.core.daemon", SNAPSHOT_INSTALL),
    )
    findings = bp009_findings(engine)
    assert len(findings) == 1, findings
    (finding,) = findings
    assert finding.rule == "BP009"
    assert "Local Log append" in finding.message
    assert "_install" in finding.message  # the taint path is named


def test_bp003_bp005_provably_miss_the_cross_function_case():
    # The same fixture, run through the intraprocedural proof rules:
    # each function is individually innocent, so they stay silent.
    registry = registered_checkers()
    checkers = [registry["BP003"](), registry["BP005"]()]
    findings = []
    for module, source in (
        ("repro.core.wire", WIRE),
        ("repro.core.daemon", SNAPSHOT_INSTALL),
    ):
        context = ctx(module, textwrap.dedent(source))
        for checker in checkers:
            findings.extend(checker.visit_module(context))
        for checker in checkers:
            findings.extend(checker.finalize())
    assert findings == [], findings


def test_bp009_negative_dominating_sanitizer_clears_the_path():
    sanitized = SNAPSHOT_INSTALL.replace(
        "    def _install(self, entry):\n"
        "        self.log.append(entry)\n",
        "    def _install(self, entry):\n"
        "        if not self.verify_entry(entry):\n"
        "            return\n"
        "        self.log.append(entry)\n"
        "\n"
        "    def verify_entry(self, entry):\n"
        "        return True\n",
    )
    assert sanitized != SNAPSHOT_INSTALL
    _, engine = engine_of(
        ("repro.core.wire", WIRE),
        ("repro.core.daemon", sanitized),
    )
    assert bp009_findings(engine) == []


def test_bp009_wire_param_entry_point_is_a_source():
    # Even without a decode call, a handle_* wire parameter flowing
    # into executed state is flagged.
    _, engine = engine_of(
        (
            "repro.pbft.mini",
            """
            class Replica:
                def handle_commit(self, msg, src):
                    self._fold(msg)

                def _fold(self, msg):
                    self.last_executed = msg
            """,
        ),
    )
    findings = bp009_findings(engine)
    assert len(findings) == 1
    assert "executed-watermark" in findings[0].message


def test_bp010_verification_name_returning_taint():
    _, engine = engine_of(
        (
            "repro.core.check",
            """
            def verify_snapshot(msg):
                return msg
            """,
        ),
    )
    findings = bp010_findings(engine)
    assert len(findings) == 1
    assert "claims verification" in findings[0].message


def test_bp010_negative_verification_returning_verdict():
    _, engine = engine_of(
        (
            "repro.core.check",
            """
            def verify_snapshot(msg):
                return msg.digest == "ok"
            """,
        ),
    )
    assert bp010_findings(engine) == []


def test_bp010_discarded_verdict():
    source = """
    class Proof:
        def is_valid(self, registry):
            return True

    class Replica:
        def handle_commit(self, msg, src):
            proof = Proof()
            proof.is_valid(None)
            self.adopt(msg)

        def adopt(self, msg):
            pass
    """
    _, engine = engine_of(("repro.pbft.mini", source))
    findings = bp010_findings(engine)
    assert len(findings) == 1
    assert "discarded" in findings[0].message


def test_bp010_negative_consumed_verdict():
    source = """
    class Proof:
        def is_valid(self, registry):
            return True

    class Replica:
        def handle_commit(self, msg, src):
            proof = Proof()
            if not proof.is_valid(None):
                return
            self.adopt(msg)

        def adopt(self, msg):
            pass
    """
    _, engine = engine_of(("repro.pbft.mini", source))
    assert bp010_findings(engine) == []
