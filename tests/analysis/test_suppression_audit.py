"""BP012: stale suppressions and the rationale requirement."""

from repro.analysis.framework import Suppressions, run_report


def write_module(tmp_path, source, name="mod.py"):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / name
    target.write_text(source)
    return target


def rules_of(findings):
    return [f.rule for f in findings]


def test_rationale_is_parsed_from_the_comment():
    sup = Suppressions(
        "# bp-lint: disable=BP002 -- the one home of the formulas\n"
        "x = 1  # bp-lint: disable=BP007\n"
    )
    file_entry, line_entry = sup.entries
    assert file_entry.file_level
    assert file_entry.rationale == "the one home of the formulas"
    assert not line_entry.file_level
    assert line_entry.rationale is None


def test_live_suppression_with_rationale_is_clean(tmp_path):
    write_module(
        tmp_path,
        "import time\n"
        "\n"
        "def now():\n"
        "    return time.time()  # bp-lint: disable=BP001 -- test seam\n",
    )
    report = run_report([str(tmp_path)], rules=["BP001", "BP012"])
    assert report.findings == []


def test_stale_suppression_fails_the_build(tmp_path):
    write_module(
        tmp_path,
        "def now():\n"
        "    return 1  # bp-lint: disable=BP001 -- obsolete claim\n",
    )
    report = run_report([str(tmp_path)], rules=["BP001", "BP012"])
    assert rules_of(report.findings) == ["BP012"]
    assert "stale suppression" in report.findings[0].message


def test_missing_rationale_fails_even_when_live(tmp_path):
    write_module(
        tmp_path,
        "import time\n"
        "\n"
        "def now():\n"
        "    return time.time()  # bp-lint: disable=BP001\n",
    )
    report = run_report([str(tmp_path)], rules=["BP001", "BP012"])
    assert rules_of(report.findings) == ["BP012"]
    assert "no rationale" in report.findings[0].message


def test_unjudgeable_rules_are_not_reported_stale(tmp_path):
    # BP003 did not run, so its suppression cannot be judged stale —
    # only the missing-rationale half may fire (it has one here).
    write_module(
        tmp_path,
        "x = 1  # bp-lint: disable=BP003 -- awaiting interproc triage\n",
    )
    report = run_report([str(tmp_path)], rules=["BP001", "BP012"])
    assert report.findings == []


def test_bp012_findings_cannot_be_suppressed(tmp_path):
    write_module(
        tmp_path,
        "x = 1  # bp-lint: disable=BP012,BP001 -- trying to mute the audit\n",
    )
    report = run_report([str(tmp_path)], rules=["BP001", "BP012"])
    assert rules_of(report.findings) == ["BP012"]
    assert "stale suppression" in report.findings[0].message
