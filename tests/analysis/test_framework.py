"""Framework mechanics: registry, module contexts, suppressions."""

import pytest

from repro.analysis import (
    PARSE_ERROR_RULE,
    Suppressions,
    analyze_source,
    registered_checkers,
    run_analysis,
)
from repro.analysis.findings import Finding
from repro.analysis.framework import ModuleContext, _module_of

ALL_RULES = (
    "BP001", "BP002", "BP003", "BP004",
    "BP005", "BP006", "BP007", "BP008",
    "BP009", "BP010", "BP011", "BP012",
    "BP013",
)


def fresh(rule):
    return [registered_checkers()[rule]()]


def test_all_documented_rules_are_registered():
    registry = registered_checkers()
    assert set(ALL_RULES) <= set(registry)
    for rule, checker in registry.items():
        assert checker.rule == rule
        assert checker.summary, rule
        assert checker.rationale, rule


def test_module_name_derivation():
    assert _module_of("src/repro/pbft/replica.py") == "repro.pbft.replica"
    assert _module_of("src/repro/core/__init__.py") == "repro.core"
    assert _module_of("/tmp/scratch.py") == "scratch"


def test_protocol_scope():
    import ast

    ctx = ModuleContext("x.py", "", ast.parse(""), module="repro.pbft.replica")
    assert ctx.is_protocol
    ctx = ModuleContext("x.py", "", ast.parse(""), module="repro.obs.hub")
    assert not ctx.is_protocol
    ctx = ModuleContext("x.py", "", ast.parse(""), module="repro.core.messages")
    assert ctx.is_messages_module


def test_parse_error_becomes_bp000():
    findings = analyze_source("def broken(:\n", "bad.py", [])
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE


def test_line_suppression():
    source = "import time\ndef f():\n    return time.time()  # bp-lint: disable=BP001\n"
    findings = analyze_source(
        source, "x.py", fresh("BP001"), module="repro.core.x"
    )
    assert findings == []


def test_file_level_suppression():
    source = (
        "# bp-lint: disable=BP001\n"
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    )
    findings = analyze_source(
        source, "x.py", fresh("BP001"), module="repro.core.x"
    )
    assert findings == []


def test_disable_all_wildcard():
    source = (
        "# bp-lint: disable=all\n"
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    )
    findings = analyze_source(
        source, "x.py", fresh("BP001"), module="repro.core.x"
    )
    assert findings == []


def test_suppression_of_other_rule_does_not_mask():
    source = "import time\ndef f():\n    return time.time()  # bp-lint: disable=BP007\n"
    findings = analyze_source(
        source, "x.py", fresh("BP001"), module="repro.core.x"
    )
    assert [f.rule for f in findings] == ["BP001"]


def test_suppressions_distinguish_code_and_standalone_lines():
    sup = Suppressions(
        "# bp-lint: disable=BP002\n"
        "x = 1  # bp-lint: disable=BP007\n"
    )
    assert sup.file_rules == {"BP002"}
    assert sup.line_rules == {2: {"BP007"}}
    assert not sup.allows(Finding("BP002", "x.py", 99, 0, ""))
    assert not sup.allows(Finding("BP007", "x.py", 2, 0, ""))
    assert sup.allows(Finding("BP007", "x.py", 3, 0, ""))


def test_unknown_rule_selection_raises():
    with pytest.raises(ValueError, match="BP999"):
        run_analysis(["src/repro"], rules=["BP999"])


def test_run_analysis_on_tree(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "clock.py").write_text(
        "import time\n\ndef now():\n    return time.time()\n"
    )
    findings = run_analysis([str(tmp_path)], rules=["BP001"])
    assert [f.rule for f in findings] == ["BP001"]
    assert findings[0].line == 4
