"""Call-graph builder: resolution goldens and the honesty budget."""

import ast
import pathlib
import textwrap

from repro.analysis.callgraph import (
    AMBIGUOUS_KIND,
    DYNAMIC_KIND,
    UNRESOLVED_KIND,
    build_call_graph,
)
from repro.analysis.framework import ModuleContext

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def ctx(module, source):
    path = "src/" + module.replace(".", "/") + ".py"
    return ModuleContext(
        path, source, ast.parse(textwrap.dedent(source)), module=module
    )


def graph_of(*pairs):
    return build_call_graph([ctx(m, s) for m, s in pairs])


def kinds_of(graph, caller):
    return {
        (site.name, site.kind) for site in graph.calls.get(caller, [])
    }


def test_direct_and_cross_module_resolution():
    graph = graph_of(
        (
            "repro.core.util",
            """
            def helper():
                return 1
            """,
        ),
        (
            "repro.core.main",
            """
            from repro.core.util import helper

            def run():
                return helper() + local()

            def local():
                return 2
            """,
        ),
    )
    assert graph.edges["repro.core.main.run"] == {
        "repro.core.util.helper",
        "repro.core.main.local",
    }


def test_method_resolution_through_mro():
    graph = graph_of(
        (
            "repro.core.layers",
            """
            class Base:
                def helper(self):
                    return 0

            class Sub(Base):
                def run(self):
                    return self.helper()
            """,
        ),
    )
    assert (
        "repro.core.layers.Base.helper"
        in graph.edges["repro.core.layers.Sub.run"]
    )


def test_typed_attribute_receiver_resolution():
    # self.log = LocalLog() types the attribute; calls through it
    # resolve to the class method, the backbone of sink detection.
    graph = graph_of(
        (
            "repro.core.store",
            """
            class LocalLog:
                def append(self, entry):
                    pass

            class Node:
                def __init__(self):
                    self.log = LocalLog()

                def run(self, entry):
                    self.log.append(entry)
            """,
        ),
    )
    assert (
        "repro.core.store.LocalLog.append"
        in graph.edges["repro.core.store.Node.run"]
    )


def test_decorator_wrapped_handler_still_resolves():
    graph = graph_of(
        (
            "repro.core.wrapped",
            """
            import functools

            def traced(fn):
                @functools.wraps(fn)
                def inner(*args, **kwargs):
                    return fn(*args, **kwargs)
                return inner

            class Node:
                @traced
                def handle_ping(self, msg, src):
                    return msg

                def poke(self, msg):
                    self.handle_ping(msg, "n0")
            """,
        ),
    )
    # The decorated method is still indexed under its def name and the
    # self-call resolves to it — decoration must not hide handlers.
    assert (
        "repro.core.wrapped.Node.handle_ping"
        in graph.edges["repro.core.wrapped.Node.poke"]
    )


def test_constructor_sites_track_instantiation():
    graph = graph_of(
        (
            "repro.core.mk",
            """
            class Widget:
                pass

            def make():
                return Widget()
            """,
        ),
    )
    assert "repro.core.mk.Widget" in graph.instantiated


def test_unresolved_and_dynamic_are_tracked_not_dropped():
    graph = graph_of(
        (
            "repro.core.dark",
            """
            def run(callback):
                callback()        # function-valued param: dynamic
                mystery()         # no such name anywhere: unresolved
            """,
        ),
    )
    kinds = kinds_of(graph, "repro.core.dark.run")
    assert ("callback", DYNAMIC_KIND) in kinds
    assert ("mystery", UNRESOLVED_KIND) in kinds
    assert {s.name for s in graph.unresolved_sites()} == {"mystery"}
    assert {s.name for s in graph.dynamic_sites()} == {"callback"}


def test_ambiguous_methods_get_no_edges():
    # Two unrelated classes define `fold`; an untyped receiver must
    # not guess — the site is reported ambiguous with no edge.
    graph = graph_of(
        (
            "repro.core.amb",
            """
            class A:
                def fold(self):
                    pass

            class B:
                def fold(self):
                    pass

            def run(thing):
                thing.fold()
            """,
        ),
    )
    kinds = kinds_of(graph, "repro.core.amb.run")
    assert ("fold", AMBIGUOUS_KIND) in kinds
    assert not graph.edges.get("repro.core.amb.run")


def test_real_tree_unresolved_fraction_within_budget():
    # ISSUE 8 honesty budget: ≤10% of intra-src/repro call sites may
    # remain unresolved/ambiguous — and they are reported, not
    # silently dropped.
    contexts = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        source = path.read_text()
        contexts.append(
            ModuleContext(str(path), source, ast.parse(source))
        )
    graph = build_call_graph(contexts)
    stats = graph.stats()
    assert stats["internal_sites"] > 1000  # the tree is non-trivial
    assert stats["unresolved_fraction"] <= 0.10, stats
    reported = len(graph.unresolved_sites())
    assert reported == stats["unresolved_sites"]


def test_staticmethod_first_param_is_not_self():
    # A @staticmethod's first parameter is an ordinary argument: its
    # annotation types it, and it must not be bound to the class.
    graph = graph_of(
        (
            "repro.core.clockmod",
            """
            class Clock:
                def tick(self):
                    return 1

            class Runner:
                @staticmethod
                def drive(clock: Clock):
                    return clock.tick()
            """,
        ),
    )
    assert graph.edges["repro.core.clockmod.Runner.drive"] == {
        "repro.core.clockmod.Clock.tick"
    }


def test_closure_inherits_enclosing_types():
    # A nested def reads names it does not bind with the enclosing
    # function's types — including chains through the closed-over
    # receiver — while names it rebinds stay untyped.
    graph = graph_of(
        (
            "repro.core.closures",
            """
            class Store:
                def put(self, value):
                    return value

            def outer():
                store = Store()

                def flush():
                    return store.put(1)

                def shadow():
                    store = object()
                    return store.put(2)

                return flush, shadow
            """,
        ),
    )
    assert graph.edges["repro.core.closures.outer.<locals>.flush"] == {
        "repro.core.closures.Store.put"
    }
    # The rebinding scope must not see the enclosing Store type (its
    # `put` site falls back to the untyped unique-definer heuristic).
    (shadow_put,) = [
        s
        for s in graph.calls["repro.core.closures.outer.<locals>.shadow"]
        if s.name == "put"
    ]
    assert shadow_put.kind == "unique"


def test_classmethod_called_on_class_name():
    graph = graph_of(
        (
            "repro.core.plans",
            """
            class Plan:
                @classmethod
                def from_dict(cls, data):
                    return cls()

            def load(data):
                return Plan.from_dict(data)
            """,
        ),
    )
    assert graph.edges["repro.core.plans.load"] == {
        "repro.core.plans.Plan.from_dict"
    }


def test_sorted_preserves_element_type():
    graph = graph_of(
        (
            "repro.core.sortmod",
            """
            from typing import List

            class Action:
                def describe(self):
                    return ""

            def describe_all(actions: List[Action]):
                return [a.describe() for a in sorted(actions)]
            """,
        ),
    )
    assert graph.edges["repro.core.sortmod.describe_all"] == {
        "repro.core.sortmod.Action.describe"
    }


def test_annotated_module_global_types_foreign_receiver():
    # A module-level global annotated with a foreign class makes
    # method calls on it external, not unresolved debt.
    graph = graph_of(
        (
            "repro.core.regexmod",
            """
            import re

            _PATTERN: "re.Pattern" = re.compile(r"x")

            def scrub(name: str) -> str:
                return _PATTERN.sub("_", name)
            """,
        ),
    )
    (site,) = [
        s
        for s in graph.calls["repro.core.regexmod.scrub"]
        if s.name == "sub"
    ]
    assert site.kind == "external"
