"""FunctionCFG: statement-level control flow and dominators."""

import ast
import textwrap

from repro.analysis.dataflow import FunctionCFG, header_exprs


def build(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    return func, FunctionCFG(func)


def find_call(func, name):
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == name
        ):
            return node
    raise AssertionError(f"no call to {name}")


def is_check(stmt):
    # Header-aware, the way real checkers consume dominators: only the
    # part of a compound statement that runs on every path counts.
    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "check"
            ):
                return True
    return False


def test_straight_line_dominance():
    func, cfg = build("""
        def f(x):
            check(x)
            use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert cfg.dominated_by(use, is_check)


def test_branch_does_not_dominate_join():
    # check() only on one branch: the join point is not dominated.
    func, cfg = build("""
        def f(x, flag):
            if flag:
                check(x)
            use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert not cfg.dominated_by(use, is_check)


def test_test_expression_dominates_both_branches():
    func, cfg = build("""
        def f(x):
            if check(x):
                use(x)
            else:
                other(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    other = cfg.statement_of(find_call(func, "other"))
    assert cfg.dominated_by(use, is_check)
    assert cfg.dominated_by(other, is_check)


def test_early_return_guard_dominates_rest():
    func, cfg = build("""
        def f(x):
            if not check(x):
                return None
            use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert cfg.dominated_by(use, is_check)


def test_loop_body_dominated_by_loop_header():
    func, cfg = build("""
        def f(xs):
            for x in check(xs):
                use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert cfg.dominated_by(use, is_check)


def test_except_handler_not_dominated_by_try_body():
    # Any try-body statement may raise before check() runs.
    func, cfg = build("""
        def f(x):
            try:
                check(x)
            except ValueError:
                use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert not cfg.dominated_by(use, is_check)


def test_statement_of_returns_innermost():
    func, cfg = build("""
        def f(x, flag):
            if flag:
                use(x)
    """)
    stmt = cfg.statement_of(find_call(func, "use"))
    assert isinstance(stmt, ast.Expr)


def test_statement_of_outside_function_is_none():
    func, cfg = build("""
        def f(x):
            return x
    """)
    assert cfg.statement_of(ast.parse("y = 1").body[0]) is None


def test_match_case_does_not_dominate_join():
    # check() inside one case arm must not vouch for the join point.
    func, cfg = build("""
        def f(msg, x):
            match msg:
                case 1:
                    check(x)
                case 2:
                    pass
            use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert not cfg.dominated_by(use, is_check)


def test_match_subject_dominates_case_bodies():
    # The subject expression runs before any case, so a check in the
    # subject (header_exprs) dominates every arm.
    func, cfg = build("""
        def f(msg, x):
            match check(x):
                case 1:
                    use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert cfg.dominated_by(use, is_check)


def test_match_without_wildcard_falls_through():
    # No irrefutable case: control may skip every arm, so per-arm
    # checks cannot dominate the statement after the match.
    func, cfg = build("""
        def f(msg, x):
            match msg:
                case 1:
                    check(x)
                case 2:
                    check(x)
            use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert not cfg.dominated_by(use, is_check)


def test_per_arm_checks_do_not_dominate_join():
    # Even with every arm checking and an irrefutable wildcard, no
    # *single* check statement dominates the join — dominance is per
    # node, so this stays conservatively unproven (sound for a lint:
    # missed dominance is flagged, never invented). Hoisting the check
    # above the match is the fix the rules push toward.
    func, cfg = build("""
        def f(msg, x):
            match msg:
                case 1:
                    check(x)
                case _:
                    check(x)
            use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert not cfg.dominated_by(use, is_check)


def test_check_before_match_dominates_all_arms():
    func, cfg = build("""
        def f(msg, x):
            check(x)
            match msg:
                case 1:
                    use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert cfg.dominated_by(use, is_check)


def test_match_guarded_wildcard_is_refutable():
    # `case _ if cond:` can still fail; the match must keep its
    # fall-through edge.
    func, cfg = build("""
        def f(msg, x):
            match msg:
                case _ if msg > 0:
                    check(x)
            use(x)
    """)
    use = cfg.statement_of(find_call(func, "use"))
    assert not cfg.dominated_by(use, is_check)
