"""The repository must satisfy its own lints, and the CLI contract
(exit codes, JSON shape) must hold."""

import json
import pathlib

from repro.analysis import run_analysis
from repro.analysis.__main__ import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_src_repro_is_clean():
    findings = run_analysis([str(REPO_ROOT / "src" / "repro")])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_tests_are_clean():
    findings = run_analysis([str(REPO_ROOT / "tests")])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_interprocedural_pass_is_clean():
    # The full BP001-BP012 run (call graph + taint fixpoint) over the
    # whole repository, src and tests in one graph — the CI gate.
    findings = run_analysis(
        [str(REPO_ROOT / "src" / "repro"), str(REPO_ROOT / "tests")],
        interproc=True,
    )
    assert findings == [], "\n".join(str(f) for f in findings)


def test_cli_exit_zero_on_clean_tree(capsys):
    code = main([str(REPO_ROOT / "src" / "repro" / "pbft" / "quorums.py")])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exit_one_with_findings(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "clock.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef now():\n    return time.time()\n")
    code = main([str(bad)])
    assert code == 1
    assert "BP001" in capsys.readouterr().out


def test_cli_exit_two_on_unknown_rule(capsys):
    code = main(["--rules", "BP999", str(REPO_ROOT / "src" / "repro")])
    assert code == 2
    assert "BP999" in capsys.readouterr().err


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "clock.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef now():\n    return time.time()\n")
    code = main(["--format", "json", str(bad)])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["count"] == 1
    (finding,) = document["findings"]
    assert finding["rule"] == "BP001"
    assert finding["line"] == 4


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("BP001", "BP002", "BP003", "BP004",
                 "BP005", "BP006", "BP007", "BP008",
                 "BP009", "BP010", "BP011", "BP012",
                 "BP013"):
        assert rule in out


def test_cli_interproc_exit_zero_on_clean_tree(capsys):
    code = main(["--interproc", str(REPO_ROOT / "src" / "repro")])
    assert code == 0
    assert "clean" in capsys.readouterr().out
