"""repro.pbft.quorums: the one home of the fault-model arithmetic.

This file asserts the raw formulas against the helpers, which is the
one legitimate place to write them outside quorums.py itself.
"""
# bp-lint: disable=BP002 -- asserts the raw formulas against the helpers

from repro.pbft import quorums
from repro.baselines.hierarchical_pbft import HierarchicalPBFTDeployment
from repro.sim.simulator import Simulator
from repro.sim.topology import aws_four_dc_topology


def test_unit_size_matches_paper():
    # n = 3f + 1 (Section IV-B).
    assert quorums.unit_size(0) == 1
    assert quorums.unit_size(1) == 4
    assert quorums.unit_size(2) == 7
    assert quorums.unit_size(3) == 10


def test_max_faulty_inverts_unit_size():
    for f in range(6):
        assert quorums.max_faulty(quorums.unit_size(f)) == f
    # Non-exact sizes floor to the largest tolerable f.
    assert quorums.max_faulty(5) == 1
    assert quorums.max_faulty(6) == 1


def test_commit_and_reply_quorums():
    for f in range(6):
        assert quorums.commit_quorum(f) == 2 * f + 1
        assert quorums.reply_quorum(f) == f + 1
        assert quorums.proof_quorum(f) == f + 1


def test_quorum_intersection_property():
    # Two commit quorums in a 3f+1 unit intersect in >= f+1 nodes, so
    # every pair of quorums shares at least one honest node.
    for f in range(1, 6):
        n = quorums.unit_size(f)
        overlap = 2 * quorums.commit_quorum(f) - n
        assert overlap >= quorums.reply_quorum(f)


def test_majority_helpers():
    assert quorums.majority(4) == 3
    assert quorums.majority(5) == 3
    assert quorums.site_majority(4) == 3
    assert quorums.replication_set_size(0) == 1
    assert quorums.replication_set_size(3) == 7


def test_hierarchical_unit_sizing_follows_f():
    """Regression: unit membership was hardcoded for f=1; f=2 sites
    must get 3*2+1 = 7 replicas each."""
    sim = Simulator(seed=7)
    deployment = HierarchicalPBFTDeployment(
        sim, aws_four_dc_topology(), "C", f=2
    )
    for site, nodes in deployment.units.items():
        assert len(nodes) == quorums.unit_size(2) == 7, site
