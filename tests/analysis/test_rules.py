"""Golden fixtures per rule: known-bad must flag with the right rule
id, known-good must pass."""

import textwrap

from repro.analysis import analyze_source, registered_checkers, run_analysis


def check(rule, source, module="repro.core.fixture"):
    checker = registered_checkers()[rule]()
    findings = analyze_source(
        textwrap.dedent(source), "fixture.py", [checker], module=module
    )
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# BP001 — determinism
# ----------------------------------------------------------------------

def test_bp001_flags_wall_clock():
    assert check("BP001", """
        import time

        def stamp():
            return time.time()
    """) == ["BP001"]


def test_bp001_flags_aliased_import():
    assert check("BP001", """
        from time import monotonic

        def stamp():
            return monotonic()
    """) == ["BP001"]


def test_bp001_flags_global_random():
    assert check("BP001", """
        import random

        def backoff():
            return random.random() * 10
    """) == ["BP001"]


def test_bp001_allows_seeded_generator():
    assert check("BP001", """
        import random

        def make_rng(seed):
            return random.Random(seed)
    """) == []


def test_bp001_flags_set_ordered_fanout():
    assert check("BP001", """
        def fan_out(self, peers):
            for peer in set(peers):
                self.send(peer, "ping")
    """) == ["BP001"]


def test_bp001_allows_sorted_fanout():
    assert check("BP001", """
        def fan_out(self, peers):
            for peer in sorted(set(peers)):
                self.send(peer, "ping")
    """) == []


def test_bp001_ignores_non_protocol_modules():
    assert check("BP001", """
        import time

        def stamp():
            return time.time()
    """, module="repro.obs.hub") == []


# ----------------------------------------------------------------------
# BP002 — quorum literals
# ----------------------------------------------------------------------

def test_bp002_flags_commit_quorum_literal():
    assert check("BP002", """
        def quorum(self):
            return 2 * self.f + 1
    """) == ["BP002"]


def test_bp002_flags_unit_size_literal():
    assert check("BP002", """
        def members(f):
            return 3 * f + 1
    """) == ["BP002"]


def test_bp002_flags_reply_quorum_literal():
    assert check("BP002", """
        def needed(self):
            return self.f_geo + 1
    """) == ["BP002"]


def test_bp002_flags_majority_literal():
    assert check("BP002", """
        def majority(nodes):
            return len(nodes) // 2 + 1
    """) == ["BP002"]


def test_bp002_flags_max_faulty_literal():
    assert check("BP002", """
        def faulty(n):
            return (n - 1) // 3
    """) == ["BP002"]


def test_bp002_allows_helper_calls_and_unrelated_arithmetic():
    assert check("BP002", """
        from repro.pbft.quorums import commit_quorum

        def quorum(self):
            return commit_quorum(self.f)

        def unrelated(x):
            return 2 * x + 3
    """) == []


# ----------------------------------------------------------------------
# BP003 — unchecked sealed-transmission payload reads
# ----------------------------------------------------------------------

def test_bp003_flags_unverified_payload_read():
    assert check("BP003", """
        def ingest(self, sealed):
            record = sealed.record
            self.apply(record.message)
    """) == ["BP003"]


def test_bp003_allows_read_dominated_by_check():
    assert check("BP003", """
        def ingest(self, sealed):
            record = sealed.record
            if not sealed.proof.is_valid(record.digest()):
                return
            self.apply(record.message)
    """) == []


def test_bp003_flags_branch_that_skips_verification():
    # The else-branch reads the payload without any dominating check.
    assert check("BP003", """
        def ingest(self, sealed, fast_path):
            record = sealed.record
            if fast_path:
                self.apply(record.message)
            else:
                if sealed.proof.is_valid(record.digest()):
                    self.apply(record.message)
    """) == ["BP003"]


# ----------------------------------------------------------------------
# BP004 — handler exhaustiveness + purity
# ----------------------------------------------------------------------

def test_bp004_flags_unhandled_message(tmp_path):
    pkg = tmp_path / "repro" / "fake"
    pkg.mkdir(parents=True)
    (pkg / "messages.py").write_text(textwrap.dedent("""
        from repro.sim.node import Message

        class Ping(Message):
            pass

        class Pong(Message):
            pass
    """))
    (pkg / "server.py").write_text(textwrap.dedent("""
        class Server:
            def handle_ping(self, msg, src):
                return msg
    """))
    findings = run_analysis([str(tmp_path)], rules=["BP004"])
    assert [f.rule for f in findings] == ["BP004"]
    assert "Pong" in findings[0].message


def test_bp004_respects_suppression_on_deliberate_gap(tmp_path):
    pkg = tmp_path / "repro" / "fake"
    pkg.mkdir(parents=True)
    (pkg / "messages.py").write_text(textwrap.dedent("""
        from repro.sim.node import Message

        class Embedded(Message):  # bp-lint: disable=BP004
            pass
    """))
    assert run_analysis([str(tmp_path)], rules=["BP004"]) == []


def test_bp004_flags_handler_mutating_message():
    assert check("BP004", """
        class Server:
            def handle_ping(self, msg, src):
                msg.seq += 1
    """) == ["BP004"]


def test_bp004_allows_pure_handler():
    assert check("BP004", """
        class Server:
            def handle_ping(self, msg, src):
                self.last = msg.seq
    """) == []


# ----------------------------------------------------------------------
# BP005 — proofs read by handlers must be verified
# ----------------------------------------------------------------------

def test_bp005_flags_proof_read_without_verification():
    assert check("BP005", """
        class Server:
            def handle_mirror_response(self, msg, src):
                self.proofs.append(msg.proof)
    """) == ["BP005"]


def test_bp005_allows_verified_proof_read():
    assert check("BP005", """
        class Server:
            def handle_mirror_response(self, msg, src):
                if not msg.proof.is_valid(msg.digest):
                    return
                self.proofs.append(msg.proof)
    """) == []


# ----------------------------------------------------------------------
# BP006 — exception discipline
# ----------------------------------------------------------------------

def test_bp006_flags_bare_except():
    assert check("BP006", """
        def run(step):
            try:
                step()
            except:
                pass
    """) == ["BP006"]


def test_bp006_flags_silent_blanket_handler():
    assert check("BP006", """
        def run(step):
            try:
                step()
            except Exception:
                pass
    """) == ["BP006"]


def test_bp006_allows_verdict_returning_handler():
    assert check("BP006", """
        def valid(check):
            try:
                check()
            except Exception:
                return False
            return True
    """) == []


# ----------------------------------------------------------------------
# BP007 — float virtual-time equality
# ----------------------------------------------------------------------

def test_bp007_flags_time_equality():
    assert check("BP007", """
        def expired(self, deadline_ms):
            return self.sim.now == deadline_ms
    """) == ["BP007"]


def test_bp007_allows_sentinel_and_ordered_comparison():
    assert check("BP007", """
        def expired(self, deadline_ms):
            if deadline_ms == -1:
                return False
            return self.sim.now >= deadline_ms
    """) == []


# ----------------------------------------------------------------------
# BP008 — slotted wire messages
# ----------------------------------------------------------------------

def test_bp008_flags_unslotted_message():
    assert check("BP008", """
        import dataclasses
        from repro.sim.node import Message

        @dataclasses.dataclass
        class Vote(Message):
            seq: int = 0
    """, module="repro.fake.messages") == ["BP008"]


def test_bp008_allows_slots_dataclass_and_explicit_slots():
    assert check("BP008", """
        import dataclasses
        from repro.sim.node import Message

        @dataclasses.dataclass(slots=True)
        class Vote(Message):
            seq: int = 0

        class Manual(Message):
            __slots__ = ("seq",)
    """, module="repro.fake.messages") == []


def test_bp008_ignores_non_message_modules():
    assert check("BP008", """
        import dataclasses
        from repro.sim.node import Message

        @dataclasses.dataclass
        class Scratch(Message):
            seq: int = 0
    """, module="repro.fake.helpers") == []
