"""BP013 — wire classes and the generated codec stay in lockstep."""

import textwrap

from repro.analysis import run_analysis
from repro.analysis.rules.codec_sync import CodecSyncChecker
from repro.core import codec


def _write_messages(tmp_path, body):
    pkg = tmp_path / "repro" / "pbft"
    pkg.mkdir(parents=True)
    path = pkg / "messages.py"
    path.write_text(textwrap.dedent(body))
    return str(path)


def test_repo_tree_is_in_sync():
    assert run_analysis(["src/repro"], rules=["BP013"]) == []


def test_flags_wire_class_missing_from_manifest(tmp_path):
    path = _write_messages(tmp_path, """
        from repro.sim.node import Message

        class UnmanifestedZap(Message):
            seq: int = 0
    """)
    findings = run_analysis([str(tmp_path)], rules=["BP013"])
    assert [finding.rule for finding in findings] == ["BP013"]
    assert "UnmanifestedZap" in findings[0].message
    assert findings[0].path == path


def test_manifested_class_passes(tmp_path):
    # Same name as a real MANIFEST class: the checker compares the
    # MANIFEST field list against the *live* dataclass, which matches.
    _write_messages(tmp_path, """
        from repro.sim.node import Message

        class Prepare(Message):
            pass
    """)
    assert run_analysis([str(tmp_path)], rules=["BP013"]) == []


def test_non_protocol_messages_modules_are_out_of_scope(tmp_path):
    pkg = tmp_path / "repro" / "testkit"
    pkg.mkdir(parents=True)
    (pkg / "messages.py").write_text(textwrap.dedent("""
        from repro.sim.node import Message

        class AdHocDouble(Message):
            pass
    """))
    assert run_analysis([str(tmp_path)], rules=["BP013"]) == []


def test_suppression_is_honored(tmp_path):
    _write_messages(tmp_path, """
        from repro.sim.node import Message

        class UnmanifestedZap(Message):  # bp-lint: disable=BP013 -- test double
            pass
    """)
    assert run_analysis([str(tmp_path)], rules=["BP013"]) == []


def test_detects_manifest_field_drift(monkeypatch):
    """A MANIFEST entry whose field list no longer matches the live
    dataclass is reported at the class definition site."""
    from repro.pbft.messages import Prepare

    tag, fields = codec.MANIFEST[Prepare]
    drifted = dict(codec.MANIFEST)
    drifted[Prepare] = (tag, tuple(fields[:-1]))
    monkeypatch.setattr(codec, "MANIFEST", drifted)

    checker = CodecSyncChecker()
    checker._wire_classes["Prepare"] = ("src/repro/pbft/messages.py", 1, 0)
    findings = checker.finalize()
    assert [finding.rule for finding in findings] == ["BP013"]
    assert "Prepare" in findings[0].message
    assert "update the MANIFEST" in findings[0].message
