"""Tests for the static budget checker and dynamic invariant suite."""

from repro.chaos.invariants import (
    byzantine_node_ids,
    check_at_most_once,
    check_local_log_agreement,
    check_plan_budget,
    check_post_heal,
    check_transmission_chains,
)
from repro.chaos.plan import FaultAction, FaultBudget, FaultPlan
from repro.core.records import (
    RECORD_COMMUNICATION,
    RECORD_LOG_COMMIT,
    RECORD_RECEIVED,
    SealedTransmission,
    TransmissionRecord,
)
from repro.crypto.signatures import QuorumProof

from tests.conftest import build_pair


def plan_with(*actions, f_geo=0):
    return FaultPlan(
        seed=1,
        budget=FaultBudget(f_independent=1, f_geo=f_geo,
                           horizon_ms=10_000.0),
        actions=tuple(actions),
    )


def invariants_of(violations):
    return [violation.invariant for violation in violations]


# ----------------------------------------------------------------------
# Static budget checks
# ----------------------------------------------------------------------
def test_clean_plan_passes_budget_check():
    plan = plan_with(
        FaultAction(kind="crash", site="V", node_index=1,
                    start=500.0, end=1_500.0),
        FaultAction(kind="crash", site="V", node_index=2,
                    start=2_000.0, end=3_000.0),  # disjoint: fine
    )
    assert check_plan_budget(plan) == []


def test_overlapping_member_faults_exceed_fi():
    plan = plan_with(
        FaultAction(kind="crash", site="V", node_index=1,
                    start=500.0, end=2_000.0),
        FaultAction(kind="crash", site="V", node_index=2,
                    start=1_000.0, end=1_800.0),
    )
    violations = check_plan_budget(plan)
    assert invariants_of(violations) == ["budget"]
    assert "concurrent faulty members" in violations[0].detail


def test_withholding_counts_against_the_gateway():
    # A withholding daemon (member 0) plus a crashed member 1 is two
    # concurrent faulty members — over an fi=1 budget.
    plan = plan_with(
        FaultAction(kind="withhold", site="I", peer="C",
                    start=500.0, end=2_000.0),
        FaultAction(kind="crash", site="I", node_index=1,
                    start=800.0, end=1_500.0),
    )
    assert "budget" in invariants_of(check_plan_budget(plan))


def test_byzantine_plant_occupies_whole_run():
    plan = plan_with(
        FaultAction(kind="byzantine", site="C", node_index=2,
                    behavior="silent"),
        FaultAction(kind="crash", site="C", node_index=1,
                    start=4_000.0, end=5_000.0),
    )
    assert "budget" in invariants_of(check_plan_budget(plan))


def test_concurrent_site_outages_exceed_fg():
    plan = plan_with(
        FaultAction(kind="site_outage", site="C", start=500.0, end=2_000.0),
        FaultAction(kind="site_outage", site="V", start=1_000.0, end=1_500.0),
        f_geo=1,
    )
    violations = check_plan_budget(plan)
    assert invariants_of(violations) == ["budget"]
    assert "concurrent site outages" in violations[0].detail


def test_malformed_actions_are_reported():
    plan = plan_with(
        FaultAction(kind="crash", site="X", node_index=0,
                    start=1.0, end=2.0),                      # unknown site
        FaultAction(kind="partition", site="C", peer="C",
                    start=1.0, end=2.0),                      # self-peer
        FaultAction(kind="crash", site="V", node_index=1, start=1.0),  # open
        FaultAction(kind="crash", site="V", node_index=9,
                    start=1.0, end=2.0),                      # bad index
        FaultAction(kind="loss", probability=0.95, start=1.0, end=2.0),
        FaultAction(kind="byzantine", site="O", node_index=0,
                    behavior="silent"),                       # gateway plant
        FaultAction(kind="crash", site="V", node_index=1,
                    start=1.0, end=20_000.0),                 # past horizon
    )
    details = "\n".join(v.detail for v in check_plan_budget(plan))
    for fragment in ("unknown site", "bad peer", "window never closes",
                     "node index out of unit", "loss probability",
                     "non-gateway", "outlives"):
        assert fragment in details


def test_byzantine_node_ids_from_plan():
    plan = plan_with(
        FaultAction(kind="byzantine", site="C", node_index=2,
                    behavior="silent"),
    )
    assert byzantine_node_ids(plan) == {"C-2"}


# ----------------------------------------------------------------------
# Dynamic checks against a (manipulated) deployment
# ----------------------------------------------------------------------
def _sealed(source, destination, position, prev, message="m"):
    record = TransmissionRecord(
        source=source, destination=destination, message=message,
        source_position=position, prev_position=prev,
    )
    return SealedTransmission(
        record=record, proof=QuorumProof(digest=record.digest(), signatures=())
    )


def test_fresh_deployment_is_clean(sim):
    deployment = build_pair(sim)
    assert check_local_log_agreement(deployment) == []
    assert check_transmission_chains(deployment) == []
    assert check_at_most_once(deployment) == []
    assert check_post_heal(deployment) == []


def test_log_fork_is_detected(sim):
    deployment = build_pair(sim)
    unit = deployment.unit("A")
    unit.nodes[0].local_log.append(RECORD_LOG_COMMIT, "good")
    unit.nodes[1].local_log.append(RECORD_LOG_COMMIT, "evil")
    violations = check_local_log_agreement(deployment)
    assert "log-fork" in invariants_of(violations)


def test_length_divergence_is_a_convergence_violation(sim):
    deployment = build_pair(sim)
    deployment.unit("A").nodes[0].local_log.append(RECORD_LOG_COMMIT, "x")
    violations = check_local_log_agreement(deployment)
    assert invariants_of(violations) == ["convergence"]


def test_crashed_nodes_are_excluded_from_agreement(sim):
    deployment = build_pair(sim)
    node = deployment.unit("A").nodes[0]
    node.local_log.append(RECORD_LOG_COMMIT, "x")
    node.crashed = True
    assert check_local_log_agreement(deployment) == []
    assert invariants_of(check_post_heal(deployment)) == ["post-heal"]


def test_chain_gap_when_a_committed_send_never_arrives(sim):
    deployment = build_pair(sim)
    log_a = deployment.unit("A").nodes[0].local_log
    log_a.append(RECORD_COMMUNICATION, "m1", meta={"destination": "B"})
    violations = check_transmission_chains(deployment)
    assert invariants_of(violations) == ["chain-gap"]
    assert violations[0].site == "B"


def test_chain_forgery_when_receiver_holds_unknown_position(sim):
    deployment = build_pair(sim)
    log_b = deployment.unit("B").nodes[0].local_log
    log_b.append(RECORD_RECEIVED, _sealed("A", "B", position=4, prev=None))
    violations = check_transmission_chains(deployment)
    assert "chain-forgery" in invariants_of(violations)


def test_chain_pointer_mismatch_is_detected(sim):
    deployment = build_pair(sim)
    log_a = deployment.unit("A").nodes[0].local_log
    first = log_a.append(RECORD_COMMUNICATION, "m1", meta={"destination": "B"})
    second = log_a.append(RECORD_COMMUNICATION, "m2", meta={"destination": "B"})
    log_b = deployment.unit("B").nodes[0].local_log
    log_b.append(RECORD_RECEIVED, _sealed("A", "B", first.position, None))
    # Claims the wrong predecessor for the second record.
    log_b.append(RECORD_RECEIVED, _sealed("A", "B", second.position, None))
    violations = check_transmission_chains(deployment)
    assert invariants_of(violations) == ["chain-pointer"]


def test_duplicate_delivery_is_detected(sim):
    deployment = build_pair(sim)
    log_a = deployment.unit("A").nodes[0].local_log
    entry = log_a.append(RECORD_COMMUNICATION, "m1", meta={"destination": "B"})
    log_b = deployment.unit("B").nodes[0].local_log
    log_b.append(RECORD_RECEIVED, _sealed("A", "B", entry.position, None))
    log_b.append(RECORD_RECEIVED, _sealed("A", "B", entry.position, None))
    violations = check_at_most_once(deployment)
    assert invariants_of(violations) == ["duplicate-delivery"]


# ----------------------------------------------------------------------
# Truncation-aware invariants
# ----------------------------------------------------------------------
def test_truncated_and_full_logs_still_agree(sim):
    deployment = build_pair(sim)
    logs = [node.local_log for node in deployment.unit("A").nodes]
    for log in logs:
        for value in ("a", "b", "c", "d"):
            log.append(RECORD_LOG_COMMIT, value)
    logs[1].truncate_before(3)
    assert check_local_log_agreement(deployment) == []


def test_snapshot_divergence_across_the_truncation_boundary(sim):
    deployment = build_pair(sim)
    full, truncated = (
        deployment.unit("A").nodes[0].local_log,
        deployment.unit("A").nodes[1].local_log,
    )
    for value in ("a", "b", "c", "d"):
        full.append(RECORD_LOG_COMMIT, value)
    for value in ("a", "EVIL", "c", "d"):
        truncated.append(RECORD_LOG_COMMIT, value)
    truncated.truncate_before(3)
    # The forged entry is hidden inside the folded prefix; only the
    # base-chain cross-check can see it.
    violations = check_local_log_agreement(deployment)
    assert "snapshot-divergence" in invariants_of(violations)


def test_fork_in_the_retained_overlap_still_reported(sim):
    deployment = build_pair(sim)
    full, truncated = (
        deployment.unit("A").nodes[0].local_log,
        deployment.unit("A").nodes[1].local_log,
    )
    for value in ("a", "b", "c", "d"):
        full.append(RECORD_LOG_COMMIT, value)
    for value in ("a", "b", "c", "EVIL"):
        truncated.append(RECORD_LOG_COMMIT, value)
    truncated.truncate_before(3)
    assert "log-fork" in invariants_of(
        check_local_log_agreement(deployment)
    )


def test_folded_receptions_do_not_read_as_chain_gaps(sim):
    deployment = build_pair(sim)
    log_a = deployment.unit("A").nodes[0].local_log
    log_b = deployment.unit("B").nodes[0].local_log
    first = log_a.append(
        RECORD_COMMUNICATION, "m1", meta={"destination": "B"}
    )
    second = log_a.append(
        RECORD_COMMUNICATION, "m2", meta={"destination": "B"}
    )
    log_b.append(RECORD_RECEIVED, _sealed("A", "B", first.position, None))
    log_b.append(
        RECORD_RECEIVED, _sealed("A", "B", second.position, first.position)
    )
    assert check_transmission_chains(deployment) == []
    # Receiver folds both receptions; the source folds the first comm
    # record. Neither side may now read as a gap or a forgery.
    log_b.truncate_before(log_b.next_position)
    log_a.truncate_before(first.position + 1)
    assert check_transmission_chains(deployment) == []
    assert check_at_most_once(deployment) == []


def test_real_gap_behind_the_source_fold_is_still_a_gap(sim):
    deployment = build_pair(sim)
    log_a = deployment.unit("A").nodes[0].local_log
    log_a.append(RECORD_COMMUNICATION, "m1", meta={"destination": "B"})
    second = log_a.append(
        RECORD_COMMUNICATION, "m2", meta={"destination": "B"}
    )
    # B received nothing at all; both records retained at the source.
    violations = check_transmission_chains(deployment)
    assert invariants_of(violations).count("chain-gap") == 1
    assert second is not None


def test_snapshot_certificates_clean_on_honest_run(sim):
    from repro.chaos.invariants import check_snapshot_certificates
    from repro.core import BlockplaneConfig
    from repro.pbft.config import PBFTConfig
    from tests.conftest import build_single_dc

    deployment = build_single_dc(
        sim,
        config=BlockplaneConfig(
            f_independent=1,
            pbft=PBFTConfig(checkpoint_interval=2, gc_executed_log=True),
        ),
    )
    api = deployment.api("DC")

    def work():
        for index in range(6):
            yield api.log_commit(f"v{index}")

    sim.run_until_resolved(sim.spawn(work()), max_events=5_000_000)
    sim.run(until=sim.now + 200.0)
    nodes = deployment.unit("DC").nodes
    assert all(node.stable_certificate is not None for node in nodes)
    assert check_snapshot_certificates(deployment) == []


def test_snapshot_payload_certificate_mismatch_detected(sim):
    import dataclasses

    from repro.chaos.invariants import check_snapshot_certificates
    from repro.core import BlockplaneConfig
    from repro.pbft.config import PBFTConfig
    from tests.conftest import build_single_dc

    deployment = build_single_dc(
        sim,
        config=BlockplaneConfig(
            f_independent=1,
            pbft=PBFTConfig(checkpoint_interval=2, gc_executed_log=True),
        ),
    )
    api = deployment.api("DC")

    def work():
        for index in range(6):
            yield api.log_commit(f"v{index}")

    sim.run_until_resolved(sim.spawn(work()), max_events=5_000_000)
    sim.run(until=sim.now + 200.0)
    node = deployment.unit("DC").nodes[0]
    node._stable_snapshot_payload = dataclasses.replace(
        node._stable_snapshot_payload, entry_chain="forged"
    )
    violations = check_snapshot_certificates(deployment)
    assert invariants_of(violations) == ["snapshot-divergence"]


def test_recovery_from_snapshot_flags_nodes_without_installs(sim):
    from repro.chaos.invariants import check_recovery_from_snapshot

    deployment = build_pair(sim)
    node = deployment.unit("A").nodes[0]
    violations = check_recovery_from_snapshot(deployment, [node.node_id])
    assert invariants_of(violations) == ["recovery-from-snapshot"]
    node.snapshot_installs = 1
    assert check_recovery_from_snapshot(deployment, [node.node_id]) == []
    # Unknown ids are ignored (the plan may name a node that was
    # removed by shrinking).
    assert check_recovery_from_snapshot(deployment, ["ghost"]) == []
