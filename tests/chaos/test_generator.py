"""Tests for the budget-bounded schedule generator."""

import pytest

from repro.chaos.generator import PROFILES, ScheduleGenerator
from repro.chaos.invariants import check_plan_budget


def test_unknown_profile_is_rejected():
    with pytest.raises(ValueError):
        ScheduleGenerator(1, profile="nope")


def test_same_seed_and_index_is_deterministic():
    for profile in PROFILES:
        a = ScheduleGenerator(7, profile=profile).generate(3)
        b = ScheduleGenerator(7, profile=profile).generate(3)
        assert a == b


def test_run_indices_draw_distinct_plans():
    generator = ScheduleGenerator(7, profile="mixed")
    plans = [generator.generate(index) for index in range(6)]
    assert len({plan.actions for plan in plans}) > 1
    assert len({plan.seed for plan in plans}) == len(plans)


def test_generated_plans_are_within_budget_by_construction():
    # The acceptance property: across profiles and many draws, the
    # static budget checker never flags a generated plan.
    for profile in PROFILES:
        generator = ScheduleGenerator(99, profile=profile)
        for index in range(20):
            plan = generator.generate(index)
            assert check_plan_budget(plan) == [], (profile, index)


def test_profiles_respect_their_fault_vocabulary():
    crash_kinds = {
        action.kind
        for index in range(10)
        for action in ScheduleGenerator(5, profile="crash").generate(index).actions
    }
    assert "site_outage" not in crash_kinds
    assert "byzantine" not in crash_kinds
    assert "tamper" not in crash_kinds

    byz_kinds = {
        action.kind
        for index in range(10)
        for action in ScheduleGenerator(5, profile="byzantine").generate(index).actions
    }
    assert "site_outage" not in byz_kinds
    assert "byzantine" in byz_kinds


def test_fg_budget_follows_profile():
    assert ScheduleGenerator(1, profile="crash").budget.f_geo == 0
    assert ScheduleGenerator(1, profile="geo").budget.f_geo == 1
    assert ScheduleGenerator(1, profile="mixed").budget.f_geo == 1


def test_windows_close_before_the_horizon():
    generator = ScheduleGenerator(13, profile="mixed")
    for index in range(10):
        plan = generator.generate(index)
        for action in plan.actions:
            if action.kind == "byzantine":
                assert action.end is None
            else:
                assert action.end is not None
                assert action.end <= plan.budget.horizon_ms
