"""Tests for the chaos CLI entry points."""

import json
import os

from repro.chaos.__main__ import main as chaos_main
from repro.chaos.plan import FaultAction, FaultBudget, FaultPlan
from repro.__main__ import main as repro_main


def small_plan(*actions):
    return FaultPlan(
        seed=9,
        profile="crash",
        budget=FaultBudget(f_independent=1, f_geo=0,
                           horizon_ms=3_000.0, settle_ms=1_500.0),
        actions=tuple(actions),
        batches=1,
    )


def write_plan(tmp_path, plan):
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json(), encoding="utf-8")
    return str(path)


def test_replaying_a_clean_plan_exits_zero(tmp_path, capsys):
    path = write_plan(tmp_path, small_plan())
    assert chaos_main(["--plan", path]) == 0
    out = capsys.readouterr().out
    assert "1/1 runs clean" in out


def test_over_budget_plan_fails_and_shrinks(tmp_path, capsys):
    path = write_plan(tmp_path, small_plan(
        FaultAction(kind="crash", site="V", node_index=1,
                    start=500.0, end=1_500.0),
        FaultAction(kind="crash", site="V", node_index=2,
                    start=800.0, end=1_400.0),
    ))
    out_dir = str(tmp_path / "artifacts")
    code = chaos_main(["--plan", path, "--shrink", "--obs-out", out_dir])
    assert code == 1
    out = capsys.readouterr().out
    assert "minimal plan:" in out
    assert "standalone reproduction script" in out
    repro = os.path.join(out_dir, "repro_minimal.py")
    assert os.path.exists(repro)
    with open(repro, "r", encoding="utf-8") as handle:
        compile(handle.read(), repro, "exec")


def test_obs_out_writes_artifacts_only_for_failing_runs(tmp_path):
    clean_path = write_plan(tmp_path, small_plan())
    out_dir = str(tmp_path / "artifacts")
    assert chaos_main(["--plan", clean_path, "--obs-out", out_dir]) == 0
    assert not os.path.exists(out_dir)  # clean runs leave nothing behind

    failing = small_plan(
        FaultAction(kind="crash", site="V", node_index=1,
                    start=500.0, end=1_500.0),
        FaultAction(kind="crash", site="V", node_index=2,
                    start=800.0, end=1_400.0),
    )
    failing_path = write_plan(tmp_path, failing)
    assert chaos_main(["--plan", failing_path, "--obs-out", out_dir]) == 1
    plan_files = [
        os.path.join(root, name)
        for root, _dirs, names in os.walk(out_dir)
        for name in names
        if name == "plan.json"
    ]
    assert plan_files
    with open(plan_files[0], "r", encoding="utf-8") as handle:
        assert FaultPlan.from_dict(json.load(handle)) == failing


def test_generated_sweep_with_short_horizon_is_clean(capsys):
    assert chaos_main(
        ["--seed", "3", "--runs", "1", "--profile", "crash",
         "--horizon-ms", "4000", "--settle-ms", "2000"]
    ) == 0
    assert "1/1 runs clean" in capsys.readouterr().out


def test_repro_main_forwards_chaos_subcommand(tmp_path, capsys):
    path = write_plan(tmp_path, small_plan())
    assert repro_main(["chaos", "--plan", path]) == 0
    assert "1/1 runs clean" in capsys.readouterr().out
