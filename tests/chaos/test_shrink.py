"""Tests for failing-schedule shrinking (ddmin + window narrowing)."""


import pytest

from repro.chaos.invariants import check_plan_budget
from repro.chaos.plan import FaultAction, FaultBudget, FaultPlan
from repro.chaos.shrink import repro_script, shrink_plan


def budget_plan(*actions):
    return FaultPlan(
        seed=3,
        budget=FaultBudget(f_independent=1, f_geo=0, horizon_ms=10_000.0),
        actions=tuple(actions),
    )


def budget_oracle(plan):
    return bool(check_plan_budget(plan))


NOISE = [
    FaultAction(kind="crash", site="C", node_index=1,
                start=3_000.0, end=3_500.0),
    FaultAction(kind="loss", probability=0.1, start=100.0, end=900.0),
    FaultAction(kind="partition", site="C", peer="I",
                start=4_000.0, end=5_000.0),
]
OVERLAP = [
    FaultAction(kind="crash", site="V", node_index=1,
                start=500.0, end=2_100.0),
    FaultAction(kind="crash", site="V", node_index=2,
                start=900.0, end=1_700.0),
]


def test_shrink_requires_a_failing_plan():
    with pytest.raises(ValueError):
        shrink_plan(budget_plan(*NOISE), oracle=budget_oracle)


def test_shrink_isolates_the_overlapping_pair():
    plan = budget_plan(*(NOISE + OVERLAP))
    report = shrink_plan(plan, oracle=budget_oracle)
    assert report.removed == len(NOISE)
    kinds = sorted(
        (action.kind, action.site) for action in report.minimal.actions
    )
    assert kinds == [("crash", "V"), ("crash", "V")]
    # 1-minimality: the shrunken plan still fails, every single-action
    # subset passes.
    assert budget_oracle(report.minimal)
    for index in range(len(report.minimal.actions)):
        remaining = [
            action
            for position, action in enumerate(report.minimal.actions)
            if position != index
        ]
        assert not budget_oracle(report.minimal.with_actions(remaining))


def test_windows_are_narrowed_while_failure_persists():
    # A synthetic oracle that only needs the crash to exist at all, so
    # narrowing can halve the window down to its floor.
    plan = budget_plan(
        FaultAction(kind="crash", site="V", node_index=1,
                    start=0.0, end=6_400.0),
    )
    report = shrink_plan(
        plan,
        oracle=lambda p: any(a.kind == "crash" for a in p.actions),
    )
    action = report.minimal.actions[0]
    assert action.end - action.start <= 6_400.0 / 16  # 4 halving rounds


def test_oracle_budget_is_respected():
    calls = [0]

    def counting_oracle(plan):
        calls[0] += 1
        return budget_oracle(plan)

    plan = budget_plan(*(NOISE + OVERLAP))
    shrink_plan(plan, oracle=counting_oracle, max_oracle_runs=4)
    assert calls[0] <= 4


def test_failure_without_faults_shrinks_to_the_empty_plan():
    plan = budget_plan(*NOISE)
    report = shrink_plan(plan, oracle=lambda _plan: True)
    assert report.minimal.actions == ()


def test_repro_script_embeds_the_plan_and_compiles():
    plan = budget_plan(*OVERLAP)
    script = repro_script(plan)
    compile(script, "<repro>", "exec")
    embedded = FaultPlan.from_json(
        script.split('PLAN_JSON = r"""')[1].split('"""')[0]
    )
    assert embedded == plan


def test_shrink_report_counts_oracle_runs():
    plan = budget_plan(*(NOISE + OVERLAP))
    report = shrink_plan(plan, oracle=budget_oracle)
    assert report.oracle_runs >= 1
    assert report.original == plan
