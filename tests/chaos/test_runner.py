"""Tests for the chaos run orchestrator.

These use deliberately small plans (short horizon, few batches) so the
whole file stays fast; the full-size sweeps live in CI's chaos-smoke
job, not the unit suite.
"""

import json
import os

from repro.chaos.plan import FaultAction, FaultBudget, FaultPlan
from repro.chaos.runner import ChaosRunner, write_artifacts


def tiny_plan(*actions, seed=5, batches=1):
    return FaultPlan(
        seed=seed,
        profile="crash",
        budget=FaultBudget(f_independent=1, f_geo=0,
                           horizon_ms=3_000.0, settle_ms=1_500.0),
        actions=tuple(actions),
        batches=batches,
    )


def test_fault_free_plan_runs_clean():
    result = ChaosRunner(tiny_plan()).run()
    assert result.ran
    assert result.violations == []
    assert result.stats["communications_committed"] > 0
    assert result.stats["virtual_ms"] > 3_000.0


def test_single_crash_within_budget_runs_clean():
    plan = tiny_plan(
        FaultAction(kind="crash", site="V", node_index=2,
                    start=600.0, end=1_200.0),
    )
    result = ChaosRunner(plan).run()
    assert result.ran
    assert result.violations == []


def test_over_budget_plan_is_refused_statically():
    plan = tiny_plan(
        FaultAction(kind="crash", site="V", node_index=1,
                    start=500.0, end=1_500.0),
        FaultAction(kind="crash", site="V", node_index=2,
                    start=800.0, end=1_400.0),
    )
    result = ChaosRunner(plan).run()
    assert not result.ran
    assert result.violations
    assert all(v.invariant == "budget" for v in result.violations)
    # Refused before building a deployment: nothing was simulated.
    assert result.stats == {}


def test_runs_are_deterministic():
    plan = tiny_plan(
        FaultAction(kind="crash", site="O", node_index=1,
                    start=700.0, end=1_300.0),
    )
    first = ChaosRunner(plan).run()
    second = ChaosRunner(plan).run()
    assert first.stats == second.stats
    assert first.violations == second.violations


def test_byzantine_plants_swap_the_node_class():
    plan = tiny_plan(
        FaultAction(kind="byzantine", site="V", node_index=2,
                    behavior="silent"),
    )
    runner = ChaosRunner(plan)
    result = runner.run()
    assert result.ran and result.violations == []
    planted = runner.deployment.unit("V").nodes[2]
    honest = runner.deployment.unit("V").nodes[1]
    assert type(planted) is not type(honest)


def test_write_artifacts_round_trips_the_plan(tmp_path):
    plan = tiny_plan()
    result = ChaosRunner(plan).run()
    paths = write_artifacts(result, str(tmp_path / "run-0"))
    assert os.path.exists(paths["plan"])
    assert os.path.exists(paths["violations"])
    with open(paths["plan"], "r", encoding="utf-8") as handle:
        assert FaultPlan.from_dict(json.load(handle)) == plan
    with open(paths["violations"], "r", encoding="utf-8") as handle:
        assert "no violations" in handle.read()


def test_checkpointed_run_truncates_and_stays_clean():
    # Aggressive checkpointing under a crash window: truncation commits
    # ride alongside the workload and every invariant (including the
    # snapshot-certificate checks) must still pass.
    plan = tiny_plan(
        FaultAction(kind="crash", site="V", node_index=2,
                    start=600.0, end=1_200.0),
        batches=6,
    )
    runner = ChaosRunner(plan, checkpoint_interval=2)
    result = runner.run()
    assert result.ran
    assert result.violations == []
    assert result.stats["log_truncations"], "no unit ever truncated"
    assert "snapshot_installs" in result.stats


def test_expect_snapshot_recovery_flags_a_node_that_never_installed():
    plan = tiny_plan(batches=2)
    runner = ChaosRunner(
        plan, checkpoint_interval=2, expect_snapshot_recovery=("V-1",)
    )
    result = runner.run()
    # Fault-free run: V-1 never fell behind, so demanding a snapshot
    # install from it must surface as a recovery-from-snapshot
    # violation — proving the check is wired into the dynamic suite.
    assert "recovery-from-snapshot" in [
        violation.invariant for violation in result.violations
    ]
