"""Tests for declarative fault plans (serialization, describe)."""

from repro.chaos.plan import FaultAction, FaultBudget, FaultPlan


def sample_plan():
    return FaultPlan(
        seed=11,
        profile="mixed",
        budget=FaultBudget(f_independent=1, f_geo=1,
                           horizon_ms=5_000.0, settle_ms=2_000.0),
        actions=(
            FaultAction(kind="crash", site="V", node_index=2,
                        start=600.0, end=1_400.0),
            FaultAction(kind="site_outage", site="O",
                        start=2_000.0, end=3_000.0),
            FaultAction(kind="partition", site="C", peer="I",
                        start=900.0, end=1_800.0),
            FaultAction(kind="loss", probability=0.1,
                        start=1_000.0, end=2_000.0),
            FaultAction(kind="withhold", site="I", peer="C",
                        start=1_200.0, end=2_200.0),
            FaultAction(kind="byzantine", site="C", node_index=3,
                        behavior="silent"),
        ),
        batches=4,
    )


def test_json_round_trip_is_lossless():
    plan = sample_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_action_dict_omits_defaults():
    action = FaultAction(kind="crash", site="V", node_index=2,
                         start=1.0, end=2.0)
    data = action.to_dict()
    assert "probability" not in data
    assert "behavior" not in data
    assert "peer" not in data
    assert FaultAction.from_dict(data) == action


def test_from_dict_ignores_unknown_keys():
    action = FaultAction.from_dict(
        {"kind": "crash", "site": "V", "not_a_field": 1}
    )
    assert action.kind == "crash" and action.site == "V"


def test_with_actions_replaces_schedule_only():
    plan = sample_plan()
    kept = plan.actions[:2]
    shrunk = plan.with_actions(kept)
    assert shrunk.actions == tuple(kept)
    assert shrunk.seed == plan.seed
    assert shrunk.budget == plan.budget


def test_describe_sorts_by_start_and_names_every_kind():
    lines = sample_plan().describe()
    assert len(lines) == 6
    # The byzantine plant (start 0) leads; the outage (start 2000) is last.
    assert lines[0].startswith("byzantine")
    assert lines[-1].startswith("site outage")
    text = "\n".join(lines)
    for fragment in ("crash V[2]", "partition C", "loss p=0.10",
                     "withhold I→C", "byzantine C[3] (silent)"):
        assert fragment in text
