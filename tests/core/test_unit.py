"""Tests for unit construction and wiring."""

import pytest

from repro.core import BlockplaneConfig
from repro.core.verification import VerificationRoutines
from repro.errors import ConfigurationError

from tests.conftest import build_four_dc, build_single_dc


def test_node_ids_follow_convention(sim):
    deployment = build_single_dc(sim, f_independent=2)
    unit = deployment.unit("DC")
    assert [node.node_id for node in unit.nodes] == [
        f"DC-{index}" for index in range(7)
    ]


def test_daemons_attached_per_destination(sim):
    deployment = build_four_dc(sim)
    unit = deployment.unit("C")
    assert set(unit.daemons) == {"O", "V", "I"}
    gateway = unit.gateway_node()
    for daemon in unit.daemons.values():
        assert daemon.node is gateway


def test_reserves_live_on_non_gateway_nodes(sim):
    deployment = build_four_dc(sim)
    unit = deployment.unit("C")
    gateway = unit.gateway_node()
    # f+1 reserve hosts per destination.
    assert len(unit.reserves) == (1 + 1) * 3
    for reserve in unit.reserves:
        assert reserve.node is not gateway


def test_each_node_gets_its_own_routines_instance(sim):
    class Marker(VerificationRoutines):
        instances = []

        def __init__(self):
            Marker.instances.append(self)

    Marker.instances = []
    deployment = build_single_dc(
        sim, routines_factory=lambda _name: Marker()
    )
    unit = deployment.unit("DC")
    routines = [node.routines for node in unit.nodes]
    assert len(set(map(id, routines))) == len(routines)


def test_bind_hook_called_with_owning_node(sim):
    bound = []

    class Binder(VerificationRoutines):
        def bind(self, node):
            bound.append(node.node_id)

    build_single_dc(sim, routines_factory=lambda _name: Binder())
    assert sorted(bound) == [f"DC-{index}" for index in range(4)]


def test_shared_routines_instance_supported(sim):
    from repro.core.unit import BlockplaneUnit
    from repro.core.directory import Directory
    from repro.crypto.keys import KeyRegistry
    from repro.sim.network import Network
    from repro.sim.topology import single_dc_topology

    shared = VerificationRoutines()
    topology = single_dc_topology("Z")
    network = Network(sim, topology)
    directory = Directory(topology, KeyRegistry())
    unit = BlockplaneUnit(
        sim, network, "Z", BlockplaneConfig(), directory, shared
    )
    assert all(node.routines is shared for node in unit.nodes)


def test_duplicate_unit_registration_rejected(sim):
    deployment = build_single_dc(sim)
    with pytest.raises(ConfigurationError):
        deployment.directory.register_unit("DC", ["DC-9"])


def test_directory_gateway_repointing(sim):
    deployment = build_single_dc(sim)
    deployment.directory.set_gateway("DC", "DC-2")
    assert deployment.unit("DC").gateway_node().node_id == "DC-2"
    with pytest.raises(ConfigurationError):
        deployment.directory.set_gateway("DC", "X-1")
