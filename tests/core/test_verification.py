"""Unit tests for the built-in receive verification routine."""

import pytest

from repro.core.local_log import LocalLog
from repro.core.records import (
    RECORD_RECEIVED,
    SealedTransmission,
    TransmissionRecord,
)
from repro.core.verification import verify_received
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import QuorumProof, collect_signatures
from repro.errors import ReceiveVerificationError

SOURCE_UNIT = ["A-0", "A-1", "A-2", "A-3"]


@pytest.fixture
def registry():
    reg = KeyRegistry(seed=2)
    reg.register_all(SOURCE_UNIT + ["B-0", "V-0", "V-1"])
    return reg


def make_sealed(registry, position, prev, signers=("A-0", "A-1"), message="m"):
    record = TransmissionRecord(
        source="A",
        destination="B",
        message=message,
        source_position=position,
        prev_position=prev,
    )
    proof = QuorumProof.build(
        record.digest(),
        collect_signatures(registry, list(signers), record.digest()),
    )
    return SealedTransmission(record=record, proof=proof)


def check(sealed, log, registry, **kwargs):
    verify_received(
        sealed,
        log,
        registry,
        source_unit_members=SOURCE_UNIT,
        required_signatures=2,
        expected_destination="B",
        **kwargs,
    )


def test_valid_first_transmission_passes(registry):
    check(make_sealed(registry, 1, None), LocalLog("B"), registry)


def test_wrong_destination_rejected(registry):
    sealed = make_sealed(registry, 1, None)
    with pytest.raises(ReceiveVerificationError, match="addressed"):
        verify_received(
            sealed,
            LocalLog("X"),
            registry,
            SOURCE_UNIT,
            2,
            expected_destination="X",
        )


def test_insufficient_signatures_rejected(registry):
    sealed = make_sealed(registry, 1, None, signers=("A-0",))
    with pytest.raises(ReceiveVerificationError, match="valid source"):
        check(sealed, LocalLog("B"), registry)


def test_signatures_from_outside_source_unit_do_not_count(registry):
    sealed = make_sealed(registry, 1, None, signers=("A-0", "B-0"))
    with pytest.raises(ReceiveVerificationError, match="valid source"):
        check(sealed, LocalLog("B"), registry)


def test_proof_over_different_record_rejected(registry):
    good = make_sealed(registry, 1, None)
    other = make_sealed(registry, 2, 1)
    mismatched = SealedTransmission(record=good.record, proof=other.proof)
    with pytest.raises(ReceiveVerificationError, match="cover"):
        check(mismatched, LocalLog("B"), registry)


def test_duplicate_rejected(registry):
    log = LocalLog("B")
    sealed = make_sealed(registry, 1, None)
    log.append(RECORD_RECEIVED, sealed)
    with pytest.raises(ReceiveVerificationError, match="duplicate"):
        check(sealed, log, registry)


def test_gap_rejected(registry):
    log = LocalLog("B")
    log.append(RECORD_RECEIVED, make_sealed(registry, 1, None))
    # position 3 claims prev=2, but we only have 1: message 2 was
    # withheld or is still in flight.
    sealed = make_sealed(registry, 3, 2)
    with pytest.raises(ReceiveVerificationError, match="out-of-order"):
        check(sealed, log, registry)


def test_chain_successor_accepted(registry):
    log = LocalLog("B")
    log.append(RECORD_RECEIVED, make_sealed(registry, 1, None))
    check(make_sealed(registry, 4, 1), log, registry)


def test_geo_proofs_required_when_enabled(registry):
    sealed = make_sealed(registry, 1, None)
    with pytest.raises(ReceiveVerificationError, match="geo"):
        check(
            sealed,
            LocalLog("B"),
            registry,
            geo_required=1,
            geo_unit_members={"V": ["V-0", "V-1"]},
        )


def test_geo_proofs_validated(registry):
    record = TransmissionRecord("A", "B", "m", 1, None)
    proof = QuorumProof.build(
        record.digest(),
        collect_signatures(registry, ["A-0", "A-1"], record.digest()),
    )
    geo_proof = QuorumProof.build(
        record.digest(),
        collect_signatures(registry, ["V-0", "V-1"], record.digest()),
    )
    sealed = SealedTransmission(
        record=record, proof=proof, geo_proofs=(("V", geo_proof),)
    )
    check(
        sealed,
        LocalLog("B"),
        registry,
        geo_required=1,
        geo_unit_members={"V": ["V-0", "V-1"], "A": SOURCE_UNIT},
    )


def test_geo_proof_from_source_itself_does_not_count(registry):
    record = TransmissionRecord("A", "B", "m", 1, None)
    proof = QuorumProof.build(
        record.digest(),
        collect_signatures(registry, ["A-0", "A-1"], record.digest()),
    )
    sealed = SealedTransmission(
        record=record, proof=proof, geo_proofs=(("A", proof),)
    )
    with pytest.raises(ReceiveVerificationError, match="geo"):
        check(
            sealed,
            LocalLog("B"),
            registry,
            geo_required=1,
            geo_unit_members={"A": SOURCE_UNIT},
        )
