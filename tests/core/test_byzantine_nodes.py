"""Each byzantine Blockplane-node variant is defeated by the documented
mechanism."""

from repro.core import BlockplaneConfig
from repro.core.byzantine import (
    CounterfeitingGateway,
    ForgingSigner,
    ImpersonatingSigner,
    PromiscuousSigner,
    SilentUnitMember,
)


def build_with(sim, node_class, node_id="A-2", config=None):
    from repro.core import BlockplaneDeployment
    from repro.sim.topology import symmetric_topology

    return BlockplaneDeployment(
        sim,
        symmetric_topology(["A", "B"], 20.0),
        config or BlockplaneConfig(f_independent=1),
        node_class_overrides={node_id: node_class},
    )


def roundtrip(sim, deployment, message="probe"):
    received = deployment.api("B").receive("A")
    sim.run_until_resolved(
        deployment.api("A").send(message, to="B"), max_events=20_000_000
    )
    sim.run(until=sim.now + 200, max_events=20_000_000)
    return received


def test_silent_member_does_not_block_the_pipeline(sim):
    deployment = build_with(sim, SilentUnitMember)
    received = roundtrip(sim, deployment)
    assert received.resolved and received.result() == "probe"


def test_promiscuous_signer_cannot_validate_forgeries_alone(sim):
    deployment = build_with(sim, PromiscuousSigner)
    # Normal traffic still works (extra signatures are harmless)...
    received = roundtrip(sim, deployment)
    assert received.resolved
    # ...but a forged record backed only by the promiscuous signer and
    # the forger itself cannot reach f+1 *log-backed* honesty: craft a
    # proof with the corrupt node and verify receivers reject it.
    from repro.core.messages import TransmissionMessage
    from repro.core.records import SealedTransmission, TransmissionRecord
    from repro.crypto.signatures import QuorumProof, collect_signatures

    record = TransmissionRecord(
        source="A",
        destination="B",
        message="forged",
        source_position=99,
        prev_position=None,
    )
    proof = QuorumProof.build(
        record.digest(),
        collect_signatures(deployment.registry, ["A-2"], record.digest()),
    )
    for node in deployment.unit("B").nodes:
        node.handle_transmission_message(
            TransmissionMessage(sealed=SealedTransmission(record, proof)),
            "A-2",
        )
    sim.run(until=sim.now + 500, max_events=20_000_000)
    log_b = deployment.unit("B").gateway_node().local_log
    assert all(
        not (e.record_type == "received" and e.value.record.message == "forged")
        for e in log_b
    )


def test_forging_signer_contributes_nothing(sim):
    deployment = build_with(sim, ForgingSigner)
    received = roundtrip(sim, deployment)
    assert received.resolved and received.result() == "probe"
    # The delivered proof contains only verifiable signatures.
    log_b = deployment.unit("B").gateway_node().local_log
    sealed = next(e.value for e in log_b if e.record_type == "received")
    valid = sealed.proof.valid_signers(
        deployment.registry,
        allowed_signers=deployment.directory.unit_members("A"),
    )
    assert "A-2" not in valid
    assert len(valid) >= 2


def test_impersonating_signer_rejected(sim):
    deployment = build_with(sim, ImpersonatingSigner)
    received = roundtrip(sim, deployment)
    assert received.resolved
    log_b = deployment.unit("B").gateway_node().local_log
    sealed = next(e.value for e in log_b if e.record_type == "received")
    # The proof's valid signers are genuine unit members who really
    # signed; the impersonation never verifies.
    valid = sealed.proof.valid_signers(
        deployment.registry,
        allowed_signers=deployment.directory.unit_members("A"),
    )
    assert len(valid) >= 2


def test_counterfeiting_gateway_cannot_inject_messages(sim):
    deployment = build_with(sim, CounterfeitingGateway, node_id="A-1")
    corrupt = deployment.unit("A").node("A-1")
    corrupt.forge_and_ship("B", "minted-message")
    sim.run(until=2000.0, max_events=20_000_000)
    log_b = deployment.unit("B").gateway_node().local_log
    assert all(entry.record_type != "received" for entry in log_b)
    buffer = deployment.unit("B").gateway_node().reception_buffers.get("A")
    assert not buffer
