"""Unit tests for record dataclasses."""

from repro.core.records import (
    LogEntry,
    MirrorEntry,
    RECORD_COMMUNICATION,
    RECORD_LOG_COMMIT,
    SealedTransmission,
    TransmissionRecord,
)
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import QuorumProof, collect_signatures


def test_log_entry_destination_helper():
    entry = LogEntry(1, RECORD_COMMUNICATION, "m", meta={"destination": "B"})
    assert entry.destination == "B"
    plain = LogEntry(2, RECORD_LOG_COMMIT, "v")
    assert plain.destination is None


def test_transmission_record_digest_covers_chain_pointer():
    base = dict(
        source="A", destination="B", message="m", source_position=5
    )
    first = TransmissionRecord(prev_position=None, **base)
    second = TransmissionRecord(prev_position=3, **base)
    assert first.digest() != second.digest()


def test_transmission_record_digest_covers_all_identity_fields():
    record = TransmissionRecord("A", "B", "m", 1, None)
    tweaked = TransmissionRecord("A", "B", "m2", 1, None)
    assert record.digest() != tweaked.digest()
    moved = TransmissionRecord("A", "C", "m", 1, None)
    assert record.digest() != moved.digest()


def test_sealed_transmission_size_includes_proofs():
    registry = KeyRegistry()
    registry.register_all(["a", "b"])
    record = TransmissionRecord("A", "B", "m", 1, None, payload_bytes=100)
    proof = QuorumProof.build(
        record.digest(),
        collect_signatures(registry, ["a", "b"], record.digest()),
    )
    sealed = SealedTransmission(record=record, proof=proof)
    assert sealed.size_bytes() == 100 + proof.size_bytes()
    with_geo = SealedTransmission(
        record=record, proof=proof, geo_proofs=(("V", proof),)
    )
    assert with_geo.size_bytes() == 100 + 2 * proof.size_bytes()


def test_mirror_entry_digest_identity():
    a = MirrorEntry("A", 1, RECORD_LOG_COMMIT, "v")
    same = MirrorEntry("A", 1, RECORD_LOG_COMMIT, "v")
    other_pos = MirrorEntry("A", 2, RECORD_LOG_COMMIT, "v")
    other_src = MirrorEntry("B", 1, RECORD_LOG_COMMIT, "v")
    assert a.digest() == same.digest()
    assert a.digest() != other_pos.digest()
    assert a.digest() != other_src.digest()
