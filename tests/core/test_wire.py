"""Wire-format round-trip tests (plus hypothesis payload fuzzing)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import (
    LogEntry,
    MirrorEntry,
    RECORD_LOG_COMMIT,
    RECORD_RECEIVED,
    SealedTransmission,
    TransmissionRecord,
)
from repro.core.wire import (
    decode_log_entry,
    decode_mirror_entry,
    decode_proof,
    decode_sealed,
    decode_signature,
    encode_log_entry,
    encode_mirror_entry,
    encode_proof,
    encode_sealed,
    encode_signature,
    from_json,
    to_json,
)
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import QuorumProof, collect_signatures, sign
from repro.errors import ProtocolError

json_payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.text(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@pytest.fixture
def registry():
    reg = KeyRegistry(seed=4)
    reg.register_all(["A-0", "A-1", "A-2", "A-3"])
    return reg


def test_signature_roundtrip(registry):
    signature = sign(registry, "A-0", "ab" * 32)
    decoded = decode_signature(from_json(to_json(encode_signature(signature))))
    assert decoded == signature


def test_proof_roundtrip_stays_valid(registry):
    digest = "cd" * 32
    proof = QuorumProof.build(
        digest, collect_signatures(registry, ["A-0", "A-1"], digest)
    )
    decoded = decode_proof(from_json(to_json(encode_proof(proof))))
    assert decoded.is_valid(registry, 2, allowed_signers=["A-0", "A-1"])


def test_transmission_record_digest_survives_the_wire(registry):
    record = TransmissionRecord(
        source="A",
        destination="B",
        message={"type": "paxos-propose", "slot": 1},
        source_position=7,
        prev_position=3,
        payload_bytes=100,
    )
    sealed = SealedTransmission(
        record=record,
        proof=QuorumProof.build(
            record.digest(),
            collect_signatures(registry, ["A-0", "A-1"], record.digest()),
        ),
    )
    decoded = decode_sealed(from_json(to_json(encode_sealed(sealed))))
    assert decoded.record.digest() == record.digest()
    assert decoded.proof.is_valid(registry, 2)


def test_sealed_with_geo_proofs_roundtrip(registry):
    record = TransmissionRecord("A", "B", "m", 1, None)
    proof = QuorumProof.build(
        record.digest(),
        collect_signatures(registry, ["A-0", "A-1"], record.digest()),
    )
    sealed = SealedTransmission(
        record=record, proof=proof, geo_proofs=(("V", proof),)
    )
    decoded = decode_sealed(from_json(to_json(encode_sealed(sealed))))
    assert decoded.geo_proofs[0][0] == "V"
    assert decoded.geo_proofs[0][1].digest == proof.digest


def test_log_entry_roundtrip_with_nested_sealed(registry):
    record = TransmissionRecord("A", "B", "msg", 1, None)
    sealed = SealedTransmission(
        record=record,
        proof=QuorumProof.build(
            record.digest(),
            collect_signatures(registry, ["A-0", "A-1"], record.digest()),
        ),
    )
    entry = LogEntry(3, RECORD_RECEIVED, sealed, meta={"source": "A"})
    decoded = decode_log_entry(from_json(to_json(encode_log_entry(entry))))
    assert isinstance(decoded.value, SealedTransmission)
    assert decoded.value.record.digest() == record.digest()
    assert decoded.position == 3


def test_mirror_entry_digest_survives_the_wire():
    entry = MirrorEntry("A", 4, RECORD_LOG_COMMIT, {"k": "v"}, None)
    decoded = decode_mirror_entry(
        from_json(to_json(encode_mirror_entry(entry)))
    )
    assert decoded.digest() == entry.digest()


def test_malformed_inputs_raise_protocol_errors():
    with pytest.raises(ProtocolError):
        decode_signature({"signer": "x"})
    with pytest.raises(ProtocolError):
        decode_proof({"digest": "x"})
    with pytest.raises(ProtocolError):
        decode_sealed({"record": {}})


@given(payload=json_payloads)
@settings(max_examples=100, deadline=None)
def test_any_json_payload_roundtrips(payload):
    record = TransmissionRecord("A", "B", payload, 1, None)
    decoded = decode_sealed(
        from_json(
            to_json(
                encode_sealed(
                    SealedTransmission(
                        record=record,
                        proof=QuorumProof(digest=record.digest(), signatures=()),
                    )
                )
            )
        )
    )
    assert decoded.record.message == payload
    assert decoded.record.digest() == record.digest()


def test_json_is_actually_json():
    entry = LogEntry(1, RECORD_LOG_COMMIT, {"a": [1, 2]}, None)
    text = to_json(encode_log_entry(entry))
    json.loads(text)  # raises if not valid JSON
