"""Tests for state replay and snapshots."""

import pytest

from repro.core.local_log import LocalLog
from repro.core.records import RECORD_LOG_COMMIT
from repro.core.replay import (
    Snapshot,
    SnapshotStore,
    attach_replayer,
    replay,
    states_agree,
)
from repro.errors import LogError

from tests.conftest import build_single_dc


def adder(state, entry):
    if entry.record_type == RECORD_LOG_COMMIT and isinstance(entry.value, int):
        return state + entry.value
    return state


def make_log(values):
    log = LocalLog("DC")
    for value in values:
        log.append(RECORD_LOG_COMMIT, value)
    return log


def test_replay_folds_in_order():
    log = make_log([1, 2, 3, 4])
    assert replay(log, adder, 0) == 10


def test_replay_segment():
    log = make_log([1, 2, 3, 4])
    assert replay(log, adder, 0, from_position=2, to_position=3) == 5


def test_replay_is_deterministic():
    log = make_log(list(range(20)))
    assert replay(log, adder, 0) == replay(log, adder, 0)


def test_snapshot_digest_identity():
    a = Snapshot.of(5, {"x": 1})
    b = Snapshot.of(5, {"x": 1})
    c = Snapshot.of(6, {"x": 1})
    assert a.digest == b.digest
    assert a.digest != c.digest


def test_snapshot_store_applies_in_order():
    store = SnapshotStore(adder, 0, interval=2)
    log = make_log([5, 6, 7])
    for entry in log:
        store.apply(entry)
    assert store.state == 18
    assert store.position == 3
    assert store.latest_snapshot().position == 2
    assert store.latest_snapshot().state == 11


def test_snapshot_store_rejects_gaps():
    store = SnapshotStore(adder, 0)
    log = make_log([1, 2])
    store.apply(log.read(1))
    with pytest.raises(LogError):
        store.apply(log.read(1))  # replayed entry
    with pytest.raises(LogError):
        SnapshotStore(adder, 0).apply(log.read(2))  # skipped entry


def test_recover_replays_only_the_suffix():
    calls = []

    def counting_adder(state, entry):
        calls.append(entry.position)
        return adder(state, entry)

    store = SnapshotStore(counting_adder, 0, interval=3)
    log = make_log([1, 1, 1, 1, 1])
    for entry in list(log)[:3]:
        store.apply(entry)
    calls.clear()
    state = store.recover(log)
    assert state == 5
    assert calls == [4, 5]  # only the post-snapshot suffix


def test_recover_without_snapshot_replays_everything():
    store = SnapshotStore(adder, 0, interval=100)
    log = make_log([2, 2, 2])
    assert store.recover(log) == 6


def test_states_agree_detects_divergence():
    a = SnapshotStore(adder, 0)
    b = SnapshotStore(adder, 0)
    log = make_log([3, 4])
    for entry in log:
        a.apply(entry)
        b.apply(entry)
    assert states_agree([a, b])
    b._state = 999  # simulated corruption
    assert not states_agree([a, b])
    assert states_agree([])


def test_attach_replayer_tracks_unit_commits(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    stores = [
        attach_replayer(node, adder, 0, interval=2)
        for node in deployment.unit("DC").nodes
    ]

    def workload():
        for value in (10, 20, 30):
            yield api.log_commit(value)

    sim.run_until_resolved(sim.spawn(workload()))
    sim.run(until=sim.now + 50)
    assert all(store.state == 60 for store in stores)
    assert states_agree(stores)


def test_invalid_interval_rejected():
    with pytest.raises(LogError):
        SnapshotStore(adder, 0, interval=0)
