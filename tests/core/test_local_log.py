"""Unit tests for the Local Log and its Blockplane indexes."""

import pytest

from repro.core.local_log import LocalLog
from repro.core.records import (
    RECORD_COMMUNICATION,
    RECORD_LOG_COMMIT,
    RECORD_RECEIVED,
    SealedTransmission,
    TransmissionRecord,
)
from repro.crypto.signatures import QuorumProof
from repro.errors import LogError


def sealed(source, position, prev, message="m"):
    record = TransmissionRecord(
        source=source,
        destination="DC",
        message=message,
        source_position=position,
        prev_position=prev,
    )
    return SealedTransmission(
        record=record, proof=QuorumProof(digest=record.digest(), signatures=())
    )


def test_append_assigns_sequential_positions():
    log = LocalLog("DC")
    e1 = log.append(RECORD_LOG_COMMIT, "a")
    e2 = log.append(RECORD_LOG_COMMIT, "b")
    assert (e1.position, e2.position) == (1, 2)
    assert len(log) == 2
    assert log.next_position == 3


def test_read_positions_are_one_based():
    log = LocalLog("DC")
    log.append(RECORD_LOG_COMMIT, "a")
    assert log.read(1).value == "a"
    with pytest.raises(LogError):
        log.read(0)
    with pytest.raises(LogError):
        log.read(2)


def test_read_from_returns_suffix():
    log = LocalLog("DC")
    for value in "abc":
        log.append(RECORD_LOG_COMMIT, value)
    assert [e.value for e in log.read_from(2)] == ["b", "c"]
    assert [e.value for e in log.read_from(0)] == ["a", "b", "c"]


def test_communication_records_require_destination():
    log = LocalLog("DC")
    with pytest.raises(LogError):
        log.append(RECORD_COMMUNICATION, "msg", meta={})


def test_communication_chain_per_destination():
    log = LocalLog("DC")
    log.append(RECORD_COMMUNICATION, "m1", meta={"destination": "B"})
    log.append(RECORD_LOG_COMMIT, "state")
    log.append(RECORD_COMMUNICATION, "m2", meta={"destination": "X"})
    log.append(RECORD_COMMUNICATION, "m3", meta={"destination": "B"})
    assert log.communication_positions("B") == [1, 4]
    assert log.communication_positions("X") == [3]
    assert log.previous_communication_position("B", 4) == 1
    assert log.previous_communication_position("B", 1) is None
    assert log.previous_communication_position("X", 3) is None


def test_reception_state_tracks_source_positions():
    log = LocalLog("DC")
    assert log.last_received_from("A") == 0
    log.append(RECORD_RECEIVED, sealed("A", 2, None))
    assert log.last_received_from("A") == 2
    assert log.has_received("A", 2)
    assert not log.has_received("A", 5)
    log.append(RECORD_RECEIVED, sealed("A", 5, 2))
    assert log.last_received_from("A") == 5


def test_reception_state_is_per_source():
    log = LocalLog("DC")
    log.append(RECORD_RECEIVED, sealed("A", 3, None))
    assert log.last_received_from("B") == 0
    assert not log.has_received("B", 3)


def test_iteration_yields_entries_in_order():
    log = LocalLog("DC")
    for value in "abc":
        log.append(RECORD_LOG_COMMIT, value)
    assert [entry.value for entry in log] == ["a", "b", "c"]


def test_entry_digest_depends_on_position_and_content():
    log_a = LocalLog("DC")
    log_b = LocalLog("DC")
    e1 = log_a.append(RECORD_LOG_COMMIT, "x")
    log_b.append(RECORD_LOG_COMMIT, "pad")
    e2 = log_b.append(RECORD_LOG_COMMIT, "x")
    assert e1.digest() != e2.digest()  # same value, different position
