"""Tests for BlockplaneNode internals: signature service, reception
handling, duplicate suppression, position futures."""

from repro.core.messages import SignRequest, TransmissionMessage
from repro.core.records import (
    RECORD_COMMUNICATION,
    RECORD_LOG_COMMIT,
    SealedTransmission,
    TransmissionRecord,
)
from repro.crypto.signatures import QuorumProof, collect_signatures

from tests.conftest import build_pair, build_single_dc


def commit(sim, api, value, record_type=RECORD_LOG_COMMIT, meta=None):
    gateway = api.unit.gateway_node()
    return sim.run_until_resolved(
        gateway.local_commit(value, record_type, meta, 100)
    )


def test_collect_local_signatures_reaches_f_plus_one(sim):
    deployment = build_pair(sim)
    api = deployment.api("A")
    sim.run_until_resolved(api.send("m", to="B"))
    sim.run(until=sim.now + 5)
    gateway = deployment.unit("A").gateway_node()
    entry = gateway.local_log.read(1)
    record = TransmissionRecord(
        source="A",
        destination="B",
        message="m",
        source_position=1,
        prev_position=None,
        payload_bytes=entry.payload_bytes,
    )
    proof = sim.run_until_resolved(
        gateway.collect_local_signatures(1, record.digest(), "transmission")
    )
    assert proof.is_valid(
        deployment.registry, 2,
        allowed_signers=deployment.directory.unit_members("A"),
    )


def test_nodes_refuse_to_sign_unsubstantiated_records(sim):
    deployment = build_pair(sim)
    gateway = deployment.unit("A").gateway_node()
    other = deployment.unit("A").nodes[1]
    # Nothing committed: a sign request for position 1 must be deferred,
    # not answered.
    request = SignRequest(position=1, digest="ff" * 32, purpose="transmission")
    other.handle_sign_request(request, gateway.node_id)
    sim.run(until=5.0)
    assert ("ff" * 32) not in {
        collector.digest for collector in gateway._sign_collectors.values()
    }
    assert other._deferred_sign_requests


def test_nodes_refuse_to_sign_mismatched_digest(sim):
    deployment = build_pair(sim)
    api = deployment.api("A")
    sim.run_until_resolved(api.send("m", to="B"))
    sim.run(until=sim.now + 5)
    node = deployment.unit("A").nodes[1]
    bogus = SignRequest(position=1, digest="00" * 32, purpose="transmission")
    assert node._attest(bogus) is False


def test_signing_defers_until_entry_applied_then_answers(sim):
    deployment = build_pair(sim)
    gateway = deployment.unit("A").gateway_node()
    api = deployment.api("A")
    # Ask for signatures before the entry exists anywhere.
    record = TransmissionRecord(
        source="A",
        destination="B",
        message="early",
        source_position=1,
        prev_position=None,
        payload_bytes=1000,
    )
    proof_future = gateway.collect_local_signatures(
        1, record.digest(), "transmission"
    )
    sim.run(until=2.0)
    assert not proof_future.resolved
    sim.run_until_resolved(api.send("early", to="B"))
    proof = sim.run_until_resolved(proof_future)
    assert len(proof.signatures) >= 2


def test_incoming_transmission_committed_once_despite_fanout(sim):
    # Both fanout targets submit the same transmission; the unit must
    # commit it exactly once.
    deployment = build_pair(sim)
    api_b = deployment.api("B")
    got = []

    def receiver():
        message = yield api_b.receive("A")
        got.append(message)

    sim.spawn(receiver())
    sim.run_until_resolved(deployment.api("A").send("once", to="B"))
    sim.run(until=500.0)
    assert got == ["once"]
    log = deployment.unit("B").gateway_node().local_log
    received_entries = [
        entry for entry in log if entry.record_type == "received"
    ]
    assert len(received_entries) == 1


def test_retransmitted_transmission_is_dropped(sim):
    deployment = build_pair(sim)
    api_b = deployment.api("B")
    sim.run_until_resolved(deployment.api("A").send("m", to="B"))
    sim.run(until=300.0)
    log_b = deployment.unit("B").gateway_node().local_log
    length_before = len(log_b)
    # Re-deliver the same sealed transmission out of band.
    gateway_a = deployment.unit("A").gateway_node()
    entry = gateway_a.local_log.read(1)
    record = TransmissionRecord(
        source="A",
        destination="B",
        message=entry.value,
        source_position=1,
        prev_position=None,
        payload_bytes=entry.payload_bytes,
    )
    proof = QuorumProof.build(
        record.digest(),
        collect_signatures(
            deployment.registry, ["A-0", "A-1"], record.digest()
        ),
    )
    for node in deployment.unit("B").nodes:
        node.handle_transmission_message(
            TransmissionMessage(sealed=SealedTransmission(record, proof)),
            "A-0",
        )
    sim.run(until=sim.now + 200.0)
    assert len(log_b) == length_before


def test_forged_transmission_never_commits(sim):
    # A transmission with too few source signatures must be refused by
    # the receive verification routine on every honest node.
    deployment = build_pair(sim)
    record = TransmissionRecord(
        source="A",
        destination="B",
        message="forged",
        source_position=1,
        prev_position=None,
    )
    weak_proof = QuorumProof.build(
        record.digest(),
        collect_signatures(deployment.registry, ["A-0"], record.digest()),
    )
    for node in deployment.unit("B").nodes:
        node.handle_transmission_message(
            TransmissionMessage(sealed=SealedTransmission(record, weak_proof)),
            "A-0",
        )
    sim.run(until=500.0)
    log = deployment.unit("B").gateway_node().local_log
    assert all(entry.record_type != "received" for entry in log)


def test_position_future_resolves_after_apply(sim):
    deployment = build_single_dc(sim)
    gateway = deployment.unit("DC").gateway_node()
    committed = sim.run_until_resolved(
        gateway.local_commit("v", RECORD_LOG_COMMIT, None, 10)
    )
    position = sim.run_until_resolved(gateway.position_future(committed.seq))
    assert position == 1


def test_out_of_order_transmissions_delivered_in_chain_order(sim):
    # Deliver transmission #2 before #1 (a racing daemon): the chain
    # machinery must hand the application "first" then "second", and
    # both must commit exactly once.
    deployment = build_pair(sim)
    registry = deployment.registry

    def sealed(position, prev, message):
        record = TransmissionRecord(
            source="A",
            destination="B",
            message=message,
            source_position=position,
            prev_position=prev,
        )
        proof = QuorumProof.build(
            record.digest(),
            collect_signatures(registry, ["A-0", "A-1"], record.digest()),
        )
        return SealedTransmission(record, proof)

    got = []

    def receiver():
        api = deployment.api("B")
        while len(got) < 2:
            message = yield api.receive("A")
            got.append(message)

    sim.spawn(receiver())
    target = deployment.unit("B").gateway_node()
    target.handle_transmission_message(
        TransmissionMessage(sealed=sealed(2, 1, "second")), "A-0"
    )
    sim.run(until=50.0)
    target.handle_transmission_message(
        TransmissionMessage(sealed=sealed(1, None, "first")), "A-0"
    )
    sim.run(until=1000.0)
    assert got == ["first", "second"]
    log = target.local_log
    received_positions = sorted(
        entry.value.record.source_position
        for entry in log
        if entry.record_type == "received"
    )
    assert received_positions == [1, 2]
