"""Tests for the user-space API: log_commit, send, receive, read."""

import pytest

from repro.core import BlockplaneConfig
from repro.core.records import RECORD_COMMUNICATION, RECORD_LOG_COMMIT
from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator

from tests.conftest import build_four_dc, build_pair, build_single_dc


def test_log_commit_returns_sequential_positions(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    positions = []

    def work():
        for value in ("a", "b", "c"):
            position = yield api.log_commit(value)
            positions.append(position)

    sim.run_until_resolved(sim.spawn(work()))
    assert positions == [1, 2, 3]


def test_log_commit_replicates_to_all_unit_nodes(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    sim.run_until_resolved(api.log_commit("durable"))
    sim.run(until=sim.now + 10)
    for node in deployment.unit("DC").nodes:
        assert len(node.local_log) == 1
        assert node.local_log.read(1).value == "durable"
        assert node.local_log.read(1).record_type == RECORD_LOG_COMMIT


def test_send_appends_communication_record(sim):
    deployment = build_pair(sim)
    api = deployment.api("A")
    position = sim.run_until_resolved(api.send("hello", to="B"))
    sim.run(until=sim.now + 5)
    entry = deployment.unit("A").gateway_node().local_log.read(position)
    assert entry.record_type == RECORD_COMMUNICATION
    assert entry.destination == "B"


def test_send_to_self_rejected(sim):
    deployment = build_pair(sim)
    with pytest.raises(ConfigurationError):
        deployment.api("A").send("x", to="A")


def test_send_to_unknown_participant_rejected(sim):
    deployment = build_pair(sim)
    with pytest.raises(ConfigurationError):
        deployment.api("A").send("x", to="Z")


def test_send_receive_roundtrip(sim):
    deployment = build_pair(sim, rtt_ms=20.0)
    api_a = deployment.api("A")
    api_b = deployment.api("B")
    received = []

    def receiver():
        message = yield api_b.receive("A")
        received.append((message, sim.now))

    sim.spawn(receiver())
    sim.run_until_resolved(api_a.send("ping", to="B"))
    sim.run(until=200.0)
    assert received and received[0][0] == "ping"
    # one-way 10ms + local commits at both ends
    assert 10.0 < received[0][1] < 30.0


def test_receive_from_any_source(sim):
    deployment = build_four_dc(sim)
    api_v = deployment.api("V")
    got = []

    def receiver():
        for _ in range(2):
            message = yield api_v.receive()
            got.append(message)

    sim.spawn(receiver())
    deployment.api("C").send("from-C", to="V")
    deployment.api("O").send("from-O", to="V")
    sim.run(until=500.0)
    assert sorted(got) == ["from-C", "from-O"]


def test_messages_from_one_source_arrive_in_send_order(sim):
    deployment = build_pair(sim)
    api_a = deployment.api("A")
    api_b = deployment.api("B")
    got = []

    def receiver():
        while len(got) < 5:
            message = yield api_b.receive("A")
            got.append(message)

    sim.spawn(receiver())

    def sender():
        for index in range(5):
            yield api_a.send(f"m{index}", to="B")

    sim.spawn(sender())
    sim.run(until=1000.0)
    assert got == [f"m{index}" for index in range(5)]


def test_receive_blocks_until_message_arrives(sim):
    deployment = build_pair(sim)
    api_b = deployment.api("B")
    future = api_b.receive("A")
    sim.run(until=50.0)
    assert not future.resolved
    deployment.api("A").send("late", to="B")
    sim.run(until=200.0)
    assert future.resolved and future.result() == "late"


def test_log_length_reflects_commits(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    assert api.log_length() == 0
    sim.run_until_resolved(api.log_commit("x"))
    assert api.log_length() == 1


def test_default_payload_bytes_config():
    sim = Simulator(seed=1)
    deployment = build_single_dc(
        sim, config=BlockplaneConfig(default_payload_bytes=5000)
    )
    api = deployment.api("DC")
    position = sim.run_until_resolved(api.log_commit("x"))
    entry = deployment.unit("DC").gateway_node().local_log.read(position)
    assert entry.payload_bytes == 5000


class TestAdmissionControl:
    def _deployment(self, sim, limit):
        return build_single_dc(
            sim, config=BlockplaneConfig(admission_max_in_flight=limit)
        )

    def test_window_sheds_excess_submissions(self, sim):
        from repro.errors import Overloaded

        api = self._deployment(sim, 1).api("DC")
        first = api.log_commit("a")
        with pytest.raises(Overloaded):
            api.log_commit("b")
        assert api.shed_total == 1
        assert api.in_flight == 1
        # Shedding happens before proposal: only the admitted value
        # commits.
        position = sim.run_until_resolved(first)
        assert position == 1
        assert api.log_length() == 1

    def test_window_reopens_as_commits_settle(self, sim):
        api = self._deployment(sim, 1).api("DC")
        sim.run_until_resolved(api.log_commit("a"))
        assert api.in_flight == 0
        sim.run_until_resolved(api.log_commit("b"))
        assert api.log_length() == 2

    def test_sends_count_against_the_same_window(self, sim):
        from repro.errors import Overloaded

        deployment = build_pair(
            sim, config=BlockplaneConfig(admission_max_in_flight=1)
        )
        api = deployment.api("A")
        pending = api.send("m1", to="B")
        with pytest.raises(Overloaded):
            api.log_commit("state")
        sim.run_until_resolved(pending)

    def test_zero_limit_means_unlimited(self, sim):
        api = self._deployment(sim, 0).api("DC")
        futures = [api.log_commit(f"v{i}") for i in range(32)]
        for future in futures:
            sim.run_until_resolved(future)
        assert api.shed_total == 0
        assert api.log_length() == 32

    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockplaneConfig(admission_max_in_flight=-1)
