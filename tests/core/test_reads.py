"""Tests for the three read strategies (Section VI-A)."""

from repro.core.reads import ReadStrategy, required_responses

from tests.conftest import build_single_dc


def test_required_responses_per_strategy():
    assert required_responses(ReadStrategy.READ_ONE, 1) == 1
    assert required_responses(ReadStrategy.READ_QUORUM, 1) == 3
    assert required_responses(ReadStrategy.READ_QUORUM, 2) == 5
    assert required_responses(ReadStrategy.LINEARIZABLE, 1) == 1


def test_read_one_returns_committed_entry(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    position = sim.run_until_resolved(api.log_commit("value"))
    entry = sim.run_until_resolved(api.read(position))
    assert entry.value == "value"
    assert entry.position == position


def test_read_unwritten_position_returns_none(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    sim.run_until_resolved(api.log_commit("value"))
    entry = sim.run_until_resolved(api.read(99))
    assert entry is None


def test_read_quorum_agrees_with_read_one(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    position = sim.run_until_resolved(api.log_commit("q"))
    sim.run(until=sim.now + 10)  # let every replica apply
    entry = sim.run_until_resolved(
        api.read(position, ReadStrategy.READ_QUORUM)
    )
    assert entry.value == "q"


def test_read_one_can_be_fooled_by_lying_gateway(sim):
    # A malicious closest node can deny a committed entry under read-1;
    # the 2f+1 strategy is immune. We emulate the lie by truncating the
    # gateway's log copy.
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    position = sim.run_until_resolved(api.log_commit("hidden"))
    sim.run(until=sim.now + 10)
    gateway = deployment.unit("DC").gateway_node()
    stolen = gateway.local_log.entries.pop()  # the lie
    lied = sim.run_until_resolved(api.read(position))
    assert lied is None  # read-1 believed the liar
    quorum_read = sim.run_until_resolved(
        api.read(position, ReadStrategy.READ_QUORUM)
    )
    assert quorum_read is not None and quorum_read.value == "hidden"
    gateway.local_log.entries.append(stolen)


def test_quorum_read_waits_for_lagging_replicas(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    position = sim.run_until_resolved(api.log_commit("slow"))
    # Immediately after the submit future resolves, some replicas may
    # not have applied yet; the quorum read must still succeed.
    entry = sim.run_until_resolved(
        api.read(position, ReadStrategy.READ_QUORUM), max_events=5_000_000
    )
    assert entry.value == "slow"


def test_read_proven_returns_entry_with_valid_proof(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    position = sim.run_until_resolved(api.log_commit("attested"))
    sim.run(until=sim.now + 10)
    entry, proof = sim.run_until_resolved(api.read_proven(position))
    assert entry.value == "attested"
    assert proof.is_valid(
        deployment.registry, 2,
        allowed_signers=deployment.directory.unit_members("DC"),
    )


def test_read_proven_unwritten_position_is_none(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    sim.run_until_resolved(api.log_commit("x"))
    assert sim.run_until_resolved(api.read_proven(42)) is None


def test_read_proven_detects_forged_contents(sim):
    # A lying gateway swaps the entry's contents; honest unit members
    # refuse to attest the forged digest, so the proof never forms and
    # the read times out rather than returning a forgery. We detect the
    # absence of a resolution within a generous window.
    from repro.core.records import LogEntry

    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    position = sim.run_until_resolved(api.log_commit("true-value"))
    sim.run(until=sim.now + 10)
    gateway = deployment.unit("DC").gateway_node()
    forged = LogEntry(
        position=position,
        record_type="log-commit",
        value="forged-value",
        meta=None,
        payload_bytes=0,
    )
    gateway.local_log.entries[position - 1] = forged
    future = api.read_proven(position)
    sim.run(until=sim.now + 500, max_events=5_000_000)
    # Either unresolved (no quorum of signatures for the forgery) or, if
    # resolved, it must have been rejected.
    if future.resolved:
        assert future.exception is not None


def test_linearizable_read_commits_a_marker(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    position = sim.run_until_resolved(api.log_commit("lin"))
    before = api.log_length()
    entry = sim.run_until_resolved(
        api.read(position, ReadStrategy.LINEARIZABLE)
    )
    assert entry.value == "lin"
    assert api.log_length() == before + 1  # the read marker
