"""Tests for communication daemons and reserves."""

from repro.core import BlockplaneConfig

from tests.conftest import build_four_dc, build_pair


def test_daemon_ships_committed_sends(sim):
    deployment = build_pair(sim)
    sim.run_until_resolved(deployment.api("A").send("x", to="B"))
    sim.run(until=300.0)
    assert sim.trace.count("bp.transmit") >= 1
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(entry.record_type == "received" for entry in log_b)


def test_daemon_attaches_chain_pointers(sim):
    deployment = build_pair(sim)

    def sender():
        api = deployment.api("A")
        yield api.send("m1", to="B")
        yield api.send("m2", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=500.0)
    log_b = deployment.unit("B").gateway_node().local_log
    received = [e.value.record for e in log_b if e.record_type == "received"]
    assert received[0].prev_position is None
    assert received[1].prev_position == received[0].source_position


def test_per_destination_daemons_are_independent(sim):
    deployment = build_four_dc(sim)
    api_c = deployment.api("C")

    def sender():
        yield api_c.send("to-v", to="V")
        yield api_c.send("to-o", to="O")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=1000.0)
    log_v = deployment.unit("V").gateway_node().local_log
    log_o = deployment.unit("O").gateway_node().local_log
    assert any(
        e.record_type == "received" and e.value.record.message == "to-v"
        for e in log_v
    )
    assert any(
        e.record_type == "received" and e.value.record.message == "to-o"
        for e in log_o
    )
    # Each log only received what was addressed to it.
    assert all(
        e.value.record.message != "to-o"
        for e in log_v
        if e.record_type == "received"
    )


def test_reserve_promotes_when_daemon_withholds(sim):
    # Simulate a malicious/failed communication daemon by deactivating
    # the primary daemon after commit but before shipping.
    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )
    deployment = build_pair(sim, config=config)
    unit_a = deployment.unit("A")
    unit_a.daemons["B"].active = False  # the daemon goes rogue

    def sender():
        api = deployment.api("A")
        yield api.send("withheld", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=2000.0)
    assert sim.trace.count("bp.reserve_promoted") >= 1
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(
        e.record_type == "received" and e.value.record.message == "withheld"
        for e in log_b
    )


def test_reserves_do_not_promote_when_daemon_healthy(sim):
    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=50.0,
        reserve_gap_threshold=2,
    )
    deployment = build_pair(sim, config=config)

    def sender():
        api = deployment.api("A")
        for index in range(5):
            yield api.send(f"m{index}", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=2000.0)
    assert sim.trace.count("bp.reserve_promoted") == 0


def test_duplicate_deliveries_from_promoted_reserve_are_harmless(sim):
    # Promotion re-ships everything above the trusted floor; the
    # receiver must deduplicate.
    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )
    deployment = build_pair(sim, config=config)

    def sender():
        api = deployment.api("A")
        yield api.send("m1", to="B")
        yield api.send("m2", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=3000.0)
    log_b = deployment.unit("B").gateway_node().local_log
    received = [
        e.value.record.source_position
        for e in log_b
        if e.record_type == "received"
    ]
    assert len(received) == len(set(received)) == 2


def test_reserve_shipments_carry_geo_proofs(sim):
    # With fg > 0, a reserve-promoted daemon must attach geo proofs to
    # the transmissions it re-ships (its host holds a passive
    # coordinator), or receivers would reject them.
    config = BlockplaneConfig(
        f_independent=1,
        f_geo=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )
    deployment = build_four_dc(
        sim,
        config=config,
        replication_sets={
            "C": ["C", "V", "O"],
            "V": ["C", "V", "O"],
            "O": ["C", "V", "O"],
            "I": ["I", "V", "C"],
        },
    )
    deployment.unit("C").daemons["V"].active = False  # rogue daemon

    def sender():
        yield deployment.api("C").send("geo-via-reserve", to="V")

    sim.run_until_resolved(sim.spawn(sender()), max_events=100_000_000)
    sim.run(until=5000.0, max_events=100_000_000)
    assert sim.trace.count("bp.reserve_promoted") >= 1
    log_v = deployment.unit("V").gateway_node().local_log
    delivered = [
        e.value
        for e in log_v
        if e.record_type == "received"
        and e.value.record.message == "geo-via-reserve"
    ]
    assert delivered and len(delivered[0].geo_proofs) >= 1


def test_transmission_survives_message_loss_via_reserves(sim):
    # Drop the first wide-area transmission attempts entirely; the
    # reserve path must eventually deliver.
    from repro.core.messages import TransmissionMessage
    from repro.sim.faults import FaultInjector

    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )
    deployment = build_pair(sim, config=config)
    injector = FaultInjector(sim, deployment.network)
    injector.drop_matching(
        lambda src, dst, msg: isinstance(msg, TransmissionMessage),
        start=0.0,
        end=400.0,
    )
    sim.run_until_resolved(deployment.api("A").send("lossy", to="B"))
    sim.run(until=3000.0)
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(
        e.record_type == "received" and e.value.record.message == "lossy"
        for e in log_b
    )


def test_reserve_first_probes_are_staggered(sim):
    # Reserves derive a deterministic per-(node, destination) offset so
    # an entire unit's reserves never probe in lockstep.
    from repro.core.daemon import ReserveDaemon

    deployment = build_pair(sim)
    interval = deployment.config.reserve_poll_interval_ms
    delays = []
    node = deployment.unit("A").nodes[3]
    for destination in ("B", "B2", "B3"):
        captured = []
        original = node.set_timer
        node.set_timer = lambda delay, *a, **k: captured.append(delay)
        try:
            ReserveDaemon(node, destination)
        finally:
            node.set_timer = original
        delays.append(captured[0])
    assert len(set(delays)) == len(delays)
    for delay in delays:
        assert interval <= delay < 2 * interval


def test_retransmission_recovers_loss_without_reserves(sim):
    # A transient WAN loss is healed by the ack-driven retry path alone;
    # the reserves never need to wake up.
    from repro.core.messages import TransmissionMessage
    from repro.sim.faults import FaultInjector

    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=60_000.0,
        reserve_gap_threshold=100,
    )
    deployment = build_pair(sim, config=config)
    injector = FaultInjector(sim, deployment.network)
    injector.drop_matching(
        lambda src, dst, msg: isinstance(msg, TransmissionMessage),
        start=0.0,
        end=250.0,
    )
    sim.run_until_resolved(deployment.api("A").send("retried", to="B"))
    sim.run(until=2_000.0)
    assert sim.trace.count("bp.retransmit") >= 1
    assert sim.trace.count("bp.reserve_promoted") == 0
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(
        e.record_type == "received" and e.value.record.message == "retried"
        for e in log_b
    )


def test_retransmission_backs_off_and_gives_up(sim):
    # Under a permanent blackhole the retry schedule spaces out
    # exponentially and stops at the configured limit.
    from repro.core.messages import TransmissionMessage
    from repro.sim.faults import FaultInjector

    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=60_000.0,
        reserve_gap_threshold=100,
    )
    deployment = build_pair(sim, config=config)
    injector = FaultInjector(sim, deployment.network)
    injector.drop_matching(
        lambda src, dst, msg: isinstance(msg, TransmissionMessage),
        start=0.0,
    )
    sim.run_until_resolved(deployment.api("A").send("blackholed", to="B"))
    sim.run(until=10_000.0)
    retries = [r for r in sim.trace.records if r["kind"] == "bp.retransmit"]
    assert len(retries) == config.transmission_retry_limit
    gaps = [
        later["time"] - earlier["time"]
        for earlier, later in zip(retries, retries[1:])
    ]
    assert all(b > a for a, b in zip(gaps, gaps[1:])) or len(gaps) == 1
    if len(gaps) >= 2:
        assert gaps[1] > gaps[0]
    assert sim.trace.count("bp.retransmit_exhausted") == 1


def test_retry_limit_zero_disables_retransmission(sim):
    config = BlockplaneConfig(f_independent=1, transmission_retry_limit=0)
    deployment = build_pair(sim, config=config)
    sim.run_until_resolved(deployment.api("A").send("once", to="B"))
    sim.run(until=2_000.0)
    assert sim.trace.count("bp.retransmit") == 0
    assert deployment.unit("A").daemons["B"]._awaiting_ack == {}
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(e.record_type == "received" for e in log_b)


def test_healthy_network_never_retransmits(sim):
    deployment = build_pair(sim)

    def sender():
        api = deployment.api("A")
        for index in range(4):
            yield api.send(f"m{index}", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=2_000.0)
    assert sim.trace.count("bp.retransmit") == 0
    assert deployment.unit("A").daemons["B"]._awaiting_ack == {}


def test_reserve_ignores_gap_claims_from_other_units(sim):
    # Regression: the node fans every GapResponse to all of its
    # reserves, so a reserve auditing B once recorded claims made by
    # members of OTHER units about their own reception — inflating the
    # trusted floor and hiding B's real gap.
    from repro.core.messages import GapResponse

    deployment = build_pair(sim)
    reserve = next(
        r for r in deployment.unit("A").reserves if r.destination == "B"
    )
    outsider = GapResponse(source_participant="A", last_source_position=15)
    reserve.handle_gap_response(outsider, "A-1")
    assert reserve._responses == {}
    member = GapResponse(source_participant="A", last_source_position=2)
    reserve.handle_gap_response(member, "B-1")
    assert reserve._responses == {"B-1": 2}


def test_retry_delay_grows_then_caps():
    from repro.core.daemon import retry_delay

    delays = [
        retry_delay(250.0, 2.0, attempts, 4_000.0, "A-0", "B")
        for attempt_count in [range(8)]
        for attempts in attempt_count
    ]
    # Strip jitter to compare the underlying schedule: each delay is
    # base*backoff^n stretched by at most 10%.
    for attempts, delay in enumerate(delays):
        uncapped = 250.0 * 2.0 ** attempts
        expected = min(uncapped, 4_000.0)
        assert expected <= delay <= expected * 1.1
    # The tail is capped: attempts 4.. all sit within 10% of the cap.
    assert all(delay <= 4_000.0 * 1.1 for delay in delays[4:])
    assert delays[1] > delays[0]


def test_retry_delay_zero_cap_disables_ceiling():
    from repro.core.daemon import retry_delay

    delay = retry_delay(250.0, 2.0, 10, 0.0, "A-0", "B")
    assert delay >= 250.0 * 2.0 ** 10


def test_retry_delay_jitter_is_deterministic_and_desynchronized():
    from repro.core.daemon import retry_delay

    again = [
        retry_delay(250.0, 2.0, 3, 4_000.0, "A-0", "B") for _ in range(3)
    ]
    assert len(set(again)) == 1
    spread = {
        retry_delay(250.0, 2.0, 3, 4_000.0, node, "B")
        for node in ("A-0", "A-1", "A-2", "A-3")
    }
    assert len(spread) > 1


def test_retry_cap_bounds_the_worst_case_gap(sim):
    # With an aggressive backoff and no cap, the third re-ship would
    # wait 250 * 8^3 = 128s; the cap keeps every retry under ~1.1s so
    # a long outage cannot push the next attempt past the horizon.
    config = BlockplaneConfig(
        transmission_retry_backoff=8.0,
        transmission_retry_max_delay_ms=1_000.0,
        transmission_retry_limit=4,
    )
    deployment = build_pair(sim, config=config)
    from repro.sim.faults import FaultInjector

    injector = FaultInjector(sim, deployment.network)
    injector.partition(
        deployment.directory.unit_members("A"),
        deployment.directory.unit_members("B"),
        start=0.0,
        end=3_000.0,
    )
    deployment.api("A").send("stranded", to="B")
    sim.run(until=8_000.0)
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(entry.record_type == "received" for entry in log_b)


def test_delivery_floor_tracks_unacked_communication(sim):
    deployment = build_pair(sim)
    daemon = deployment.unit("A").daemons["B"]
    assert daemon.delivery_floor() is None
    sim.run_until_resolved(deployment.api("A").send("m1", to="B"))
    sim.run(until=1_000.0)
    # Delivered and acked: nothing blocks truncation.
    assert daemon.delivery_floor() is None

    from repro.sim.faults import FaultInjector

    injector = FaultInjector(sim, deployment.network)
    injector.partition(
        deployment.directory.unit_members("A"),
        deployment.directory.unit_members("B"),
        start=sim.now,
        end=sim.now + 500.0,
    )
    future = deployment.api("A").send("m2", to="B")
    sim.run(until=sim.now + 400.0)
    floor = daemon.delivery_floor()
    assert floor is not None
    log_a = deployment.unit("A").gateway_node().local_log
    assert log_a.read(floor).record_type == "communication"
    sim.run_until_resolved(future)
    sim.run(until=sim.now + 2_000.0)
    assert daemon.delivery_floor() is None
