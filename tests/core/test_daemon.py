"""Tests for communication daemons and reserves."""

from repro.core import BlockplaneConfig

from tests.conftest import build_four_dc, build_pair


def test_daemon_ships_committed_sends(sim):
    deployment = build_pair(sim)
    sim.run_until_resolved(deployment.api("A").send("x", to="B"))
    sim.run(until=300.0)
    assert sim.trace.count("bp.transmit") >= 1
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(entry.record_type == "received" for entry in log_b)


def test_daemon_attaches_chain_pointers(sim):
    deployment = build_pair(sim)

    def sender():
        api = deployment.api("A")
        yield api.send("m1", to="B")
        yield api.send("m2", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=500.0)
    log_b = deployment.unit("B").gateway_node().local_log
    received = [e.value.record for e in log_b if e.record_type == "received"]
    assert received[0].prev_position is None
    assert received[1].prev_position == received[0].source_position


def test_per_destination_daemons_are_independent(sim):
    deployment = build_four_dc(sim)
    api_c = deployment.api("C")

    def sender():
        yield api_c.send("to-v", to="V")
        yield api_c.send("to-o", to="O")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=1000.0)
    log_v = deployment.unit("V").gateway_node().local_log
    log_o = deployment.unit("O").gateway_node().local_log
    assert any(
        e.record_type == "received" and e.value.record.message == "to-v"
        for e in log_v
    )
    assert any(
        e.record_type == "received" and e.value.record.message == "to-o"
        for e in log_o
    )
    # Each log only received what was addressed to it.
    assert all(
        e.value.record.message != "to-o"
        for e in log_v
        if e.record_type == "received"
    )


def test_reserve_promotes_when_daemon_withholds(sim):
    # Simulate a malicious/failed communication daemon by deactivating
    # the primary daemon after commit but before shipping.
    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )
    deployment = build_pair(sim, config=config)
    unit_a = deployment.unit("A")
    unit_a.daemons["B"].active = False  # the daemon goes rogue

    def sender():
        api = deployment.api("A")
        yield api.send("withheld", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=2000.0)
    assert sim.trace.count("bp.reserve_promoted") >= 1
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(
        e.record_type == "received" and e.value.record.message == "withheld"
        for e in log_b
    )


def test_reserves_do_not_promote_when_daemon_healthy(sim):
    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=50.0,
        reserve_gap_threshold=2,
    )
    deployment = build_pair(sim, config=config)

    def sender():
        api = deployment.api("A")
        for index in range(5):
            yield api.send(f"m{index}", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=2000.0)
    assert sim.trace.count("bp.reserve_promoted") == 0


def test_duplicate_deliveries_from_promoted_reserve_are_harmless(sim):
    # Promotion re-ships everything above the trusted floor; the
    # receiver must deduplicate.
    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )
    deployment = build_pair(sim, config=config)

    def sender():
        api = deployment.api("A")
        yield api.send("m1", to="B")
        yield api.send("m2", to="B")

    sim.run_until_resolved(sim.spawn(sender()))
    sim.run(until=3000.0)
    log_b = deployment.unit("B").gateway_node().local_log
    received = [
        e.value.record.source_position
        for e in log_b
        if e.record_type == "received"
    ]
    assert len(received) == len(set(received)) == 2


def test_reserve_shipments_carry_geo_proofs(sim):
    # With fg > 0, a reserve-promoted daemon must attach geo proofs to
    # the transmissions it re-ships (its host holds a passive
    # coordinator), or receivers would reject them.
    config = BlockplaneConfig(
        f_independent=1,
        f_geo=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )
    deployment = build_four_dc(
        sim,
        config=config,
        replication_sets={
            "C": ["C", "V", "O"],
            "V": ["C", "V", "O"],
            "O": ["C", "V", "O"],
            "I": ["I", "V", "C"],
        },
    )
    deployment.unit("C").daemons["V"].active = False  # rogue daemon

    def sender():
        yield deployment.api("C").send("geo-via-reserve", to="V")

    sim.run_until_resolved(sim.spawn(sender()), max_events=100_000_000)
    sim.run(until=5000.0, max_events=100_000_000)
    assert sim.trace.count("bp.reserve_promoted") >= 1
    log_v = deployment.unit("V").gateway_node().local_log
    delivered = [
        e.value
        for e in log_v
        if e.record_type == "received"
        and e.value.record.message == "geo-via-reserve"
    ]
    assert delivered and len(delivered[0].geo_proofs) >= 1


def test_transmission_survives_message_loss_via_reserves(sim):
    # Drop the first wide-area transmission attempts entirely; the
    # reserve path must eventually deliver.
    from repro.core.messages import TransmissionMessage
    from repro.sim.faults import FaultInjector

    config = BlockplaneConfig(
        f_independent=1,
        reserve_poll_interval_ms=100.0,
        reserve_gap_threshold=0,
    )
    deployment = build_pair(sim, config=config)
    injector = FaultInjector(sim, deployment.network)
    injector.drop_matching(
        lambda src, dst, msg: isinstance(msg, TransmissionMessage),
        start=0.0,
        end=400.0,
    )
    sim.run_until_resolved(deployment.api("A").send("lossy", to="B"))
    sim.run(until=3000.0)
    log_b = deployment.unit("B").gateway_node().local_log
    assert any(
        e.record_type == "received" and e.value.record.message == "lossy"
        for e in log_b
    )
