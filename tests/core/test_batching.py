"""Tests for batching and group commit (Section VI-C)."""

import pytest

from repro.core.batching import Batcher
from repro.errors import ConfigurationError

from tests.conftest import build_single_dc


def test_commands_resolve_with_batch_position(sim):
    deployment = build_single_dc(sim)
    batcher = Batcher(deployment.api("DC"))
    futures = [batcher.submit(f"cmd{i}") for i in range(3)]
    for future in futures:
        sim.run_until_resolved(future)
    # Group commit: the first command opens a batch immediately; the
    # two submitted while it was in flight coalesce into the next one.
    positions = [future.result()[0] for future in futures]
    assert positions[0] < positions[1] == positions[2]
    assert futures[1].result()[1] == 0
    assert futures[2].result()[1] == 1


def test_one_batch_in_flight_at_a_time(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    batcher = Batcher(api, max_batch_commands=2)
    futures = [batcher.submit(f"cmd{i}") for i in range(6)]
    for future in futures:
        sim.run_until_resolved(future)
    # Batches: {c0} (opened immediately), {c1,c2}, {c3,c4}, {c5}.
    assert batcher.batches_committed == 4
    positions = [future.result()[0] for future in futures]
    assert positions == sorted(positions)


def test_commands_submitted_during_flight_join_next_batch(sim):
    deployment = build_single_dc(sim)
    batcher = Batcher(deployment.api("DC"))
    first = batcher.submit("first")
    late = []

    def submit_late():
        yield 0.1  # while the first batch is still committing
        late.append(batcher.submit("late"))

    sim.spawn(submit_late())
    sim.run_until_resolved(first)
    sim.run_until_resolved(late[0])
    assert first.result()[0] < late[0].result()[0]


def test_batch_respects_byte_limit(sim):
    deployment = build_single_dc(sim)
    batcher = Batcher(
        deployment.api("DC"), max_batch_commands=100, max_batch_bytes=1000
    )
    futures = [batcher.submit(f"c{i}", payload_bytes=600) for i in range(4)]
    for future in futures:
        sim.run_until_resolved(future)
    assert batcher.batches_committed == 4  # 600+600 > 1000 -> one each


def test_dependencies_preserved_in_batch_order(sim):
    deployment = build_single_dc(sim)
    batcher = Batcher(deployment.api("DC"))
    writer = batcher.submit("write-x")
    reader = batcher.submit("read-x", depends_on=[writer])
    sim.run_until_resolved(reader)
    sim.run_until_resolved(writer)
    w_pos, w_idx = writer.result()
    r_pos, r_idx = reader.result()
    assert (w_pos, w_idx) < (r_pos, r_idx)


def test_batch_content_committed_to_log(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    batcher = Batcher(api)
    future = batcher.submit("payload-cmd")
    sim.run_until_resolved(future)
    position, _index = future.result()
    entry = deployment.unit("DC").gateway_node().local_log.read(position)
    marker, commands = entry.value
    assert marker == "__batch__"
    assert "payload-cmd" in commands


def test_invalid_configuration_rejected(sim):
    deployment = build_single_dc(sim)
    with pytest.raises(ConfigurationError):
        Batcher(deployment.api("DC"), max_batch_commands=0)
