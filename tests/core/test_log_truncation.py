"""Log truncation, snapshots, and restore (the bounded-memory layer).

The contract under test: folding a prefix into a :class:`LogSnapshot`
must not change any answer the middleware relies on — duplicate/gap
rejection of receptions, communication chain pointers, digest-chain
comparability — and a restore from a certified snapshot must leave a
recovering log giving those same answers.
"""

import pytest

from repro.core.local_log import GENESIS_CHAIN, LocalLog
from repro.core.records import (
    RECORD_COMMUNICATION,
    RECORD_LOG_COMMIT,
    RECORD_RECEIVED,
    SealedTransmission,
    TransmissionRecord,
)
from repro.crypto.signatures import QuorumProof
from repro.errors import LogError


def sealed(source, position, prev, message="m"):
    record = TransmissionRecord(
        source=source,
        destination="DC",
        message=message,
        source_position=position,
        prev_position=prev,
    )
    return SealedTransmission(
        record=record, proof=QuorumProof(digest=record.digest(), signatures=())
    )


def build_log(participant="DC"):
    """A log mixing all three record types:

    1 state, 2 comm->B, 3 recv A@3, 4 state, 5 comm->B, 6 recv A@7,
    7 comm->X, 8 state.
    """
    log = LocalLog(participant)
    log.append(RECORD_LOG_COMMIT, "s1")
    log.append(RECORD_COMMUNICATION, "m1", meta={"destination": "B"})
    log.append(RECORD_RECEIVED, sealed("A", 3, 0))
    log.append(RECORD_LOG_COMMIT, "s2")
    log.append(RECORD_COMMUNICATION, "m2", meta={"destination": "B"})
    log.append(RECORD_RECEIVED, sealed("A", 7, 3))
    log.append(RECORD_COMMUNICATION, "m3", meta={"destination": "X"})
    log.append(RECORD_LOG_COMMIT, "s3")
    return log


class TestTruncateBasics:
    def test_positions_stay_global_after_truncation(self):
        log = build_log()
        log.truncate_before(5)
        assert len(log) == 8
        assert log.base_position == 5
        assert log.retained_count == 4
        assert log.read(5).value == "m2"
        assert log.next_position == 9
        entry = log.append(RECORD_LOG_COMMIT, "s4")
        assert entry.position == 9

    def test_covers_reflects_retained_window(self):
        log = build_log()
        assert log.covers(1) and log.covers(8)
        log.truncate_before(5)
        assert not log.covers(4)
        assert log.covers(5) and log.covers(8)
        assert not log.covers(9)

    def test_folded_read_raises(self):
        log = build_log()
        log.truncate_before(3)
        with pytest.raises(LogError, match="folded"):
            log.read(2)

    def test_truncate_past_next_position_rejected(self):
        log = build_log()
        with pytest.raises(LogError):
            log.truncate_before(10)

    def test_truncate_is_idempotent_and_monotonic(self):
        log = build_log()
        first = log.truncate_before(5)
        again = log.truncate_before(5)
        backwards = log.truncate_before(2)
        assert first == again == backwards
        assert log.base_position == 5

    def test_read_from_clamps_to_base(self):
        log = build_log()
        log.truncate_before(5)
        assert [e.position for e in log.read_from(1)] == [5, 6, 7, 8]


class TestReceptionAnswersSurviveTruncation:
    def test_duplicate_rejection_identical_before_and_after(self):
        # Source positions that actually carried transmissions to us
        # (3 and 7) and everything above the floor must answer exactly
        # as before folding. Positions below the floor that carried no
        # transmission may flip to True — the floor is an
        # over-approximation there, harmless because the source's chain
        # can never offer them.
        log = build_log()
        exact = (3, 7, 8, 9)
        before = {p: log.has_received("A", p) for p in exact}
        log.truncate_before(7)  # folds both receptions (positions 3, 6)
        after = {p: log.has_received("A", p) for p in exact}
        assert before == after
        assert after[3] and after[7]
        assert not after[8] and not after[9]

    def test_gap_detection_identical_before_and_after(self):
        log = build_log()
        assert log.last_received_from("A") == 7
        log.truncate_before(7)
        assert log.last_received_from("A") == 7
        assert log.last_received_from("other") == 0

    def test_new_receptions_layer_over_the_floor(self):
        log = build_log()
        log.truncate_before(7)
        log.append(RECORD_RECEIVED, sealed("A", 9, 7))
        assert log.has_received("A", 9)
        assert not log.has_received("A", 8)
        assert log.last_received_from("A") == 9


class TestCommunicationChainsSurviveTruncation:
    def test_retained_positions_exclude_folded(self):
        log = build_log()
        log.truncate_before(5)
        assert log.communication_positions("B") == [5]
        assert log.folded_communication_head("B") == 2
        assert log.folded_communication_head("X") is None

    def test_chain_pointer_bridges_the_boundary(self):
        log = build_log()
        expected = log.previous_communication_position("B", 5)
        log.truncate_before(5)
        assert log.previous_communication_position("B", 5) == expected == 2


class TestDigestChain:
    def test_chain_at_boundary_matches_pre_truncation_value(self):
        log = build_log()
        boundary_chain = log.chain_at(4)
        head = log.entry_chain
        log.truncate_before(5)
        assert log.base_chain == boundary_chain
        assert log.chain_at(4) == boundary_chain
        assert log.entry_chain == head
        with pytest.raises(LogError):
            log.chain_at(3)

    def test_untruncated_and_truncated_copies_stay_comparable(self):
        full, truncated = build_log(), build_log()
        truncated.truncate_before(6)
        boundary = truncated.base_position - 1
        assert full.chain_at(boundary) == truncated.base_chain
        for position in range(6, 9):
            assert full.chain_at(position) == truncated.chain_at(position)

    def test_fresh_log_base_is_genesis(self):
        assert LocalLog("DC").base_chain == GENESIS_CHAIN


class TestSnapshotRoundTrip:
    def test_snapshot_equals_truncate_everything(self):
        log = build_log()
        described = log.snapshot()
        folded = log.truncate_before(log.next_position)
        assert described == folded
        assert log.retained_count == 0

    def test_restore_round_trip_preserves_all_answers(self):
        source = build_log()
        snapshot = source.snapshot()
        restored = LocalLog("DC")
        restored.restore(snapshot)

        assert len(restored) == len(source)
        assert restored.entry_chain == source.entry_chain
        assert restored.base_position == source.next_position
        for p in (3, 7, 8, 9):  # transmission positions + above-floor
            assert restored.has_received("A", p) == source.has_received("A", p)
        assert restored.last_received_from("A") == 7
        for destination in ("B", "X"):
            assert restored.folded_communication_head(destination) == (
                source.communication_positions(destination) or [None]
            )[-1]

    def test_restore_then_append_continues_the_chain(self):
        source = build_log()
        restored = LocalLog("DC")
        restored.restore(source.snapshot())
        a = source.append(RECORD_LOG_COMMIT, "s4")
        b = restored.append(RECORD_LOG_COMMIT, "s4")
        assert a.position == b.position == 9
        assert source.entry_chain == restored.entry_chain

    def test_restore_rejects_foreign_participant(self):
        snapshot = build_log("DC").snapshot()
        with pytest.raises(LogError, match="offered"):
            LocalLog("Other").restore(snapshot)

    def test_duplicate_and_gap_rejection_after_restore_and_truncate_agree(
        self,
    ):
        # The satellite contract, end to end: a log answering from a
        # restored snapshot and one answering from a truncated window
        # reject exactly the same duplicates.
        truncated = build_log()
        truncated.truncate_before(truncated.next_position)
        restored = LocalLog("DC")
        restored.restore(build_log().snapshot())
        for p in range(1, 10):
            assert truncated.has_received("A", p) == restored.has_received(
                "A", p
            )
        assert truncated.last_received_from(
            "A"
        ) == restored.last_received_from("A")
