"""Signed checkpoints, committed log truncation, and snapshot recovery
at the Blockplane layer (the middleware overrides of the PBFT hooks)."""

import dataclasses

from repro.core import BlockplaneConfig
from repro.core.recovery import resync_node
from repro.pbft.quorums import commit_quorum
from repro.crypto.signatures import sign
from repro.pbft.config import PBFTConfig
from repro.pbft.messages import Checkpoint, SnapshotResponse
from repro.pbft.replica import checkpoint_digest
from tests.conftest import build_single_dc


def checkpointed_config(interval=2):
    return BlockplaneConfig(
        f_independent=1,
        pbft=PBFTConfig(checkpoint_interval=interval, gc_executed_log=True),
    )


def commit_values(sim, api, count, prefix="v"):
    def work():
        for index in range(count):
            yield api.log_commit(f"{prefix}{index}")

    sim.run_until_resolved(sim.spawn(work()), max_events=10_000_000)


def checkpointed_deployment(sim, commits=8, interval=2):
    deployment = build_single_dc(sim, config=checkpointed_config(interval))
    commit_values(sim, deployment.api("DC"), commits)
    sim.run(until=sim.now + 500.0)
    return deployment


def test_stable_certificates_carry_verifying_signatures(sim):
    deployment = checkpointed_deployment(sim)
    unit = deployment.unit("DC")
    for node in unit.nodes:
        certificate = node.stable_certificate
        assert certificate is not None
        assert certificate.snapshot_digest != ""
        assert len(certificate.signatures) >= commit_quorum(
            node.bp_config.f_independent
        )
        # Transferable: any peer accepts it on signatures alone.
        for peer in unit.nodes:
            assert peer._certificate_valid(certificate)


def test_certificate_without_proof_quorum_is_rejected(sim):
    deployment = checkpointed_deployment(sim)
    node = deployment.unit("DC").nodes[0]
    certificate = node.stable_certificate
    stripped = dataclasses.replace(
        certificate,
        signatures=certificate.signatures[: node.bp_config.proof_size - 1],
    )
    assert not node._certificate_valid(stripped)
    forged = dataclasses.replace(certificate, snapshot_digest="forged")
    assert not node._certificate_valid(forged)


def test_checkpoint_votes_verify_signer_and_content(sim):
    deployment = build_single_dc(sim, config=checkpointed_config())
    nodes = deployment.unit("DC").nodes
    voter, judge, other = nodes[0], nodes[1], nodes[2]
    digest = checkpoint_digest(2, "state", "snap")
    vote = Checkpoint(
        seq=2,
        state_digest="state",
        snapshot_digest="snap",
        signature=sign(voter.directory.registry, voter.node_id, digest),
        replica=voter.node_id,
    )
    assert judge._checkpoint_vote_valid(vote)
    # Spoofed voter, tampered content, and missing signature all fail.
    assert not judge._checkpoint_vote_valid(
        dataclasses.replace(vote, replica=other.node_id)
    )
    assert not judge._checkpoint_vote_valid(
        dataclasses.replace(vote, state_digest="other")
    )
    assert not judge._checkpoint_vote_valid(
        dataclasses.replace(vote, signature=None)
    )


def test_committed_truncation_converges_across_the_unit(sim):
    deployment = checkpointed_deployment(sim, commits=12)
    nodes = deployment.unit("DC").nodes
    bases = {node.local_log.base_position for node in nodes}
    assert len(bases) == 1, "honest replicas disagree on the folded prefix"
    assert bases.pop() > 1
    chains = {node.local_log.entry_chain for node in nodes}
    assert len(chains) == 1


def test_truncation_bound_is_revalidated_against_own_certificate(sim):
    deployment = checkpointed_deployment(sim, commits=12)
    node = deployment.unit("DC").nodes[0]
    certified_base = node._stable_snapshot_payload.base_position
    meta = {"checkpoint_seq": node.stable_checkpoint}
    assert node._verify_truncate(certified_base, meta) is True
    # A bound past what our own certificate covers is byzantine.
    assert node._verify_truncate(certified_base + 100, meta) is False
    # A certificate we have not reached yet defers the verdict.
    assert (
        node._verify_truncate(
            1, {"checkpoint_seq": node.stable_checkpoint + 2}
        )
        is None
    )
    assert node._verify_truncate("x", meta) is False
    assert node._verify_truncate(certified_base, {}) is False


def test_replica_past_peer_gc_recovers_via_snapshot(sim):
    deployment = build_single_dc(sim, config=checkpointed_config())
    unit = deployment.unit("DC")
    api = deployment.api("DC")
    lagger = unit.nodes[3]
    lagger.crash()
    commit_values(sim, api, 10)
    sim.run(until=sim.now + 500.0)
    reference = unit.nodes[0]
    assert reference._executed_gc_seq > 0, "peers retained the full log"

    lagger.crashed = False  # rejoin without the on-recover hook
    resync_node(lagger)
    sim.run(until=sim.now + 1_000.0)

    assert lagger.snapshot_installs >= 1
    assert lagger.last_executed == reference.last_executed
    assert lagger.local_log.entry_chain == reference.local_log.entry_chain
    assert len(lagger.local_log) == len(reference.local_log)
    # And it participates again: a further commit reaches it.
    commit_values(sim, api, 2, prefix="w")
    sim.run(until=sim.now + 200.0)
    assert lagger.last_executed == reference.last_executed


def test_tampered_snapshot_offer_is_rejected(sim):
    deployment = build_single_dc(sim, config=checkpointed_config())
    unit = deployment.unit("DC")
    api = deployment.api("DC")
    victim = unit.nodes[3]
    victim.crash()
    commit_values(sim, api, 10)
    sim.run(until=sim.now + 500.0)
    honest = unit.nodes[0]
    certificate = honest.stable_certificate
    payload = honest._stable_snapshot_payload
    victim.crashed = False

    tampered = dataclasses.replace(payload, entry_chain="forged-chain")
    victim.handle_snapshot_response(
        SnapshotResponse(
            certificate=certificate,
            snapshot=tampered,
            entries=[],
            replica=honest.node_id,
        ),
        honest.node_id,
    )
    assert victim.snapshot_offers_rejected == 1
    assert victim.snapshot_installs == 0
    assert victim.last_executed == 0

    # The genuine payload from the same certificate installs fine.
    victim.handle_snapshot_response(
        SnapshotResponse(
            certificate=certificate,
            snapshot=payload,
            entries=[],
            replica=honest.node_id,
        ),
        honest.node_id,
    )
    assert victim.snapshot_installs == 1
    assert victim.last_executed == certificate.seq
