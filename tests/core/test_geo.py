"""Tests for geo-correlated fault tolerance: mirror proofs, failover,
and latency behaviour (Section V / Figure 8 mechanics)."""

from repro.core import BlockplaneConfig

from tests.conftest import build_four_dc

GEO_SETS = {
    "C": ["C", "V", "O"],
    "V": ["C", "V", "O"],
    "O": ["C", "V", "O"],
    "I": ["I", "V", "C"],
}


def geo_config(**kwargs):
    defaults = dict(
        f_independent=1,
        f_geo=1,
        heartbeat_interval_ms=50.0,
        heartbeat_suspect_ms=200.0,
    )
    defaults.update(kwargs)
    return BlockplaneConfig(**defaults)


def build(sim, **kwargs):
    return build_four_dc(
        sim, config=geo_config(**kwargs), replication_sets=GEO_SETS
    )


def test_commit_gathers_fg_mirror_proofs(sim):
    deployment = build(sim)
    position = sim.run_until_resolved(
        deployment.api("C").log_commit("v"), max_events=20_000_000
    )
    geo = deployment.unit("C").geo
    proofs = sim.run_until_resolved(geo.proofs_for(position))
    assert len(proofs) == 1
    participant, proof = proofs[0]
    assert participant == "O"  # closest peer in the set
    assert proof.is_valid(
        deployment.registry, 2,
        allowed_signers=deployment.directory.unit_members("O"),
    )


def test_mirror_entry_stored_at_secondary(sim):
    deployment = build(sim)
    sim.run_until_resolved(
        deployment.api("C").log_commit("mirrored-value"),
        max_events=20_000_000,
    )
    sim.run(until=sim.now + 100)
    mirrors = deployment.unit("O").gateway_node().mirror_logs.get("C", [])
    assert any(entry.value == "mirrored-value" for entry in mirrors)


def test_geo_latency_tracks_closest_peer(sim):
    deployment = build(sim)
    api = deployment.api("C")
    start = sim.now
    sim.run_until_resolved(api.log_commit("v"), max_events=20_000_000)
    latency = sim.now - start
    # C's closest set member is O (19 ms RTT) plus local commits.
    assert 19.0 < latency < 30.0


def test_backup_failure_fails_over_to_next_closest(sim):
    deployment = build(sim)
    api = deployment.api("C")
    sim.run_until_resolved(api.log_commit("warm"), max_events=20_000_000)
    deployment.unit("O").crash()
    start = sim.now
    sim.run_until_resolved(api.log_commit("after-failure"),
                           max_events=40_000_000)
    first_latency = sim.now - start
    # The first commit pays the detection timeout before reaching V.
    assert first_latency > 60.0
    start = sim.now
    sim.run_until_resolved(api.log_commit("steady"), max_events=40_000_000)
    steady = sim.now - start
    # Suspicion memory: subsequent commits go straight to V (61 ms RTT).
    assert 61.0 < steady < 75.0


def test_mirror_proofs_fail_without_enough_live_peers(sim):
    deployment = build(sim)
    deployment.unit("O").crash()
    deployment.unit("V").crash()
    future = deployment.api("C").log_commit("unprovable")
    sim.run(until=2000.0, max_events=40_000_000)
    assert not future.resolved  # fg proofs unattainable: set peers dead


def test_primary_failure_triggers_takeover(sim):
    deployment = build(sim)
    changes = []
    for site in ("V", "O"):
        deployment.unit(site).geo.on_primary_change.append(
            lambda primary, epoch: changes.append((primary, epoch))
        )
    sim.run(until=300.0)  # heartbeats flowing
    deployment.unit("C").crash()
    sim.run(until=1500.0)
    assert changes, "no takeover happened"
    assert changes[0][0] == "V"  # next in the replication set order
    assert deployment.unit("V").geo.is_primary


def test_no_spurious_takeover_while_primary_alive(sim):
    deployment = build(sim)
    sim.run(until=2000.0)
    assert deployment.unit("C").geo.is_primary
    assert not deployment.unit("V").geo.is_primary
    assert sim.trace.count("geo.take_over") == 0


def test_new_primary_commits_with_remaining_peers(sim):
    deployment = build(sim)
    sim.run(until=300.0)
    deployment.unit("C").crash()
    sim.run(until=1500.0)
    assert deployment.unit("V").geo.is_primary
    start = sim.now
    sim.run_until_resolved(
        deployment.api("V").log_commit("from-new-primary"),
        max_events=40_000_000,
    )
    # V's proofs now come from O (79 ms) or pay C's timeout first; in
    # either case the commit completes.
    assert sim.now - start < 500.0


def test_takeover_announcement_updates_other_secondaries(sim):
    deployment = build(sim)
    sim.run(until=300.0)
    deployment.unit("C").crash()
    sim.run(until=1500.0)
    assert deployment.unit("O").geo.current_primary == "V"


def test_fg_zero_skips_geo_machinery(sim):
    deployment = build_four_dc(sim, config=BlockplaneConfig(f_geo=0))
    sim.run_until_resolved(deployment.api("C").log_commit("v"))
    sim.run(until=sim.now + 100)
    assert sim.trace.count("geo.proved") == 0
    assert deployment.unit("C").geo is None


def test_transmissions_carry_geo_proofs_and_are_verified(sim):
    deployment = build(sim)
    api_c = deployment.api("C")
    api_v = deployment.api("V")
    got = []

    def receiver():
        message = yield api_v.receive("C")
        got.append(message)

    sim.spawn(receiver())
    sim.run_until_resolved(api_c.send("geo-message", to="V"),
                           max_events=40_000_000)
    sim.run(until=3000.0)
    assert got == ["geo-message"]
    log_v = deployment.unit("V").gateway_node().local_log
    sealed = next(
        e.value for e in log_v if e.record_type == "received"
    )
    assert len(sealed.geo_proofs) >= 1
