"""Edge cases for the recovery helpers (core/recovery.py).

test_middleware.py covers the happy paths; these pin down behaviour
under partial and total failure, and the interaction between forced
view changes and in-flight daemon proposals.
"""

from repro.core.recovery import (
    await_log_length,
    current_leader,
    force_view_change,
    resync_node,
)

from tests.conftest import build_single_dc


def test_current_leader_is_none_when_all_nodes_are_down(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    unit.crash()
    assert current_leader(unit) is None


def test_current_leader_survives_a_minority_crash(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    unit.nodes[3].crash()
    assert current_leader(unit) == "DC-0"


def test_current_leader_tracks_forced_view_changes(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    old = current_leader(unit)
    force_view_change(unit)
    sim.run(until=300.0)
    new = current_leader(unit)
    assert new != old
    assert new in [node.node_id for node in unit.nodes]


def test_force_view_change_on_a_dead_unit_is_a_no_op(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    unit.crash()
    force_view_change(unit)  # must not raise
    assert all(node.view == 0 for node in unit.nodes)


def test_unit_still_commits_after_forced_view_change(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    api = deployment.api("DC")

    def scenario():
        yield api.log_commit("before")
        force_view_change(unit)
        yield sim.sleep(300.0)
        yield api.log_commit("after")

    sim.run_until_resolved(sim.spawn(scenario()), max_events=5_000_000)
    sim.run_until_resolved(await_log_length(unit, 2), max_events=5_000_000)
    values = [entry.value for entry in unit.nodes[0].local_log.entries]
    assert values == ["before", "after"]


def test_view_change_clears_in_flight_gateway_proposals(sim):
    # Regression: the gateway's dedup sets must be dropped on a view
    # change, or receptions pre-proposed in the dead view are never
    # re-proposed in the new one.
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    gateway = unit.gateway_node()
    gateway._proposed_receptions.add(("X", 1))
    gateway._proposed_mirrors.add(("X", 1))
    force_view_change(unit)
    sim.run(until=300.0)
    assert gateway._proposed_receptions == set()
    assert gateway._proposed_mirrors == set()


def test_await_log_length_ignores_crashed_nodes(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    api = deployment.api("DC")
    unit.nodes[3].crash()

    def committer():
        yield api.log_commit("v0")

    sim.spawn(committer())
    when = sim.run_until_resolved(
        await_log_length(unit, 1), max_events=5_000_000
    )
    assert when > 0
    assert len(unit.nodes[3].local_log) == 0  # still down, still behind


def test_resync_after_silent_rejoin_restores_the_suffix(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    api = deployment.api("DC")
    lagger = unit.nodes[2]
    lagger.crash()

    def committer():
        for index in range(3):
            yield api.log_commit(f"v{index}")

    sim.run_until_resolved(sim.spawn(committer()), max_events=5_000_000)
    lagger.crashed = False  # rejoin without the on-recover hook
    assert len(lagger.local_log) == 0
    resync_node(lagger)
    sim.run(until=sim.now + 200.0)
    assert len(lagger.local_log) == 3
    assert [entry.value for entry in lagger.local_log.entries] == [
        "v0", "v1", "v2",
    ]
