"""Tests for the deployment builder and recovery helpers."""

import pytest

from repro.core import BlockplaneConfig, BlockplaneDeployment
from repro.core.recovery import (
    await_log_length,
    current_leader,
    force_view_change,
    resync_node,
)
from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator
from repro.sim.topology import aws_four_dc_topology, single_dc_topology

from tests.conftest import build_four_dc, build_single_dc


def test_unit_sizes_follow_config(sim):
    deployment = build_four_dc(sim, config=BlockplaneConfig(f_independent=2))
    for participant in deployment.participants:
        assert len(deployment.unit(participant).nodes) == 7


def test_every_node_registered_in_directory_and_registry(sim):
    deployment = build_four_dc(sim)
    for participant in deployment.participants:
        members = deployment.directory.unit_members(participant)
        assert len(members) == 4
        for node_id in members:
            assert node_id in deployment.registry


def test_unknown_participant_lookup(sim):
    deployment = build_four_dc(sim)
    with pytest.raises(ConfigurationError):
        deployment.api("X")
    with pytest.raises(ConfigurationError):
        deployment.unit("X")


def test_participants_subset(sim):
    deployment = BlockplaneDeployment(
        sim,
        aws_four_dc_topology(),
        BlockplaneConfig(),
        participants=["C", "V"],
    )
    assert deployment.participants == ["C", "V"]


def test_fg_needs_enough_participants():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        BlockplaneDeployment(
            sim,
            single_dc_topology(),
            BlockplaneConfig(f_geo=1),
        )


def test_default_replication_sets_are_closest_peers(sim):
    deployment = build_four_dc(sim, config=BlockplaneConfig(f_geo=1))
    geo_c = deployment.unit("C").geo
    assert geo_c.replication_set == ["C", "O", "V"]


def test_all_nodes_enumeration(sim):
    deployment = build_four_dc(sim)
    assert len(deployment.all_nodes()) == 16


def test_gateway_prefers_configured_then_leader_then_any(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    assert unit.gateway_node().node_id == "DC-0"
    unit.nodes[0].crash()
    fallback = unit.gateway_node()
    assert fallback.node_id != "DC-0"
    for node in unit.nodes:
        node.crash()
    with pytest.raises(ConfigurationError):
        unit.gateway_node()


def test_unit_crash_and_recover(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    unit.crash()
    assert all(node.crashed for node in unit.nodes)
    unit.recover()
    assert not any(node.crashed for node in unit.nodes)


def test_current_leader_helper(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    assert current_leader(unit) == "DC-0"


def test_await_log_length_converges(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")

    def committer():
        for index in range(3):
            yield api.log_commit(f"v{index}")

    sim.spawn(committer())
    when = sim.run_until_resolved(
        await_log_length(deployment.unit("DC"), 3), max_events=5_000_000
    )
    assert when > 0
    for node in deployment.unit("DC").nodes:
        assert len(node.local_log) == 3


def test_force_view_change_rotates_leader(sim):
    deployment = build_single_dc(sim)
    unit = deployment.unit("DC")
    force_view_change(unit)
    sim.run(until=200.0)
    assert max(node.view for node in unit.nodes) >= 1


def test_resync_node_catches_up(sim):
    deployment = build_single_dc(sim)
    api = deployment.api("DC")
    lagger = deployment.unit("DC").nodes[3]
    lagger.crash()

    def committer():
        for index in range(4):
            yield api.log_commit(f"v{index}")

    sim.run_until_resolved(sim.spawn(committer()))
    lagger.crashed = False  # silent rejoin without the recovery hook
    resync_node(lagger)
    sim.run(until=sim.now + 100)
    assert len(lagger.local_log) == 4
