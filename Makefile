PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-rules lint-baseline chaos audit bench bench-smoke soak latency console experiments

test:
	$(PYTHON) -m pytest -x -q

# Protocol-aware lints always run; ruff (generic hygiene) only when
# installed — the offline dev container ships without it, CI installs it.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping generic hygiene checks"; \
	fi
	$(PYTHON) -m repro.analysis src tests --interproc

lint-rules:
	$(PYTHON) -m repro.analysis --list-rules

# Record the current findings as accepted; `--baseline` runs then fail
# only on *new* findings (BP012 keeps the backlog from fossilising).
lint-baseline:
	$(PYTHON) -m repro.analysis src tests --interproc \
		--write-baseline lint-baseline.json

chaos:
	$(PYTHON) -m repro.chaos --seed 7 --runs 5 --profile mixed --shrink

audit:
	$(PYTHON) -m repro obs-audit --seed 2 --runs 2 --profile byzantine --strict
	$(PYTHON) -m repro obs-audit --seed 7 --runs 2 --profile byzantine --fault-free --strict

bench:
	$(PYTHON) -m repro.bench --repeats 3 --out BENCH_0008.json \
		--disable-caches --disable-codec

# CI gate on the generated wire codecs: the precompiled encode/decode
# micros must beat the legacy dict-walking path by ≥3× (full runs land
# well above; 3× leaves headroom for throttled CI machines).
bench-smoke:
	$(PYTHON) -m repro.bench --only micro --filter wire --repeats 3 \
		--gate-wire-codec 3.0 --out bench-smoke.json
	$(PYTHON) -m repro.bench --validate bench-smoke.json

# Sustained open-loop soak: checkpoints + log truncation must hold the
# per-replica retained footprint under the bound for the whole run (the
# benchmark raises if it does not). ~10k ops keeps it CI-sized; the
# full 100k-op run is what BENCH_0007.json records.
soak:
	$(PYTHON) -m repro.bench --only macro --filter sustained \
		--repeats 1 --warmup 0 --sustained-ops 9999 --out soak.json
	$(PYTHON) -m repro.bench --validate soak.json

# Traced sustained soak -> schema-v4 latency block (critical-path
# attribution, conservation-enforced) -> p99 regression gate against
# the committed baseline. Virtual-time latencies are seed-
# deterministic, so the gate is machine-independent.
latency:
	$(PYTHON) -m repro.bench --only macro --filter sustained \
		--repeats 1 --warmup 0 --sustained-ops 9999 \
		--out latency-smoke.json \
		--gate-latency-regression ci/latency-smoke.json
	$(PYTHON) -m repro.bench --validate latency-smoke.json

# Seeded audited chaos run -> schema-checked bundle -> offline replay.
console:
	$(PYTHON) -m repro console --chaos-seed 2 --profile byzantine \
		--out replay.html --bundle-out replay-bundle.json
	$(PYTHON) -m repro console --validate replay-bundle.json

experiments:
	$(PYTHON) -m repro
