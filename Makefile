PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-rules chaos audit bench console experiments

test:
	$(PYTHON) -m pytest -x -q

# Protocol-aware lints always run; ruff (generic hygiene) only when
# installed — the offline dev container ships without it, CI installs it.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping generic hygiene checks"; \
	fi
	$(PYTHON) -m repro.analysis src tests

lint-rules:
	$(PYTHON) -m repro.analysis --list-rules

chaos:
	$(PYTHON) -m repro.chaos --seed 7 --runs 5 --profile mixed --shrink

audit:
	$(PYTHON) -m repro obs-audit --seed 2 --runs 2 --profile byzantine --strict
	$(PYTHON) -m repro obs-audit --seed 7 --runs 2 --profile byzantine --fault-free --strict

bench:
	$(PYTHON) -m repro.bench --repeats 5 --out BENCH_0006.json --disable-caches

# Seeded audited chaos run -> schema-checked bundle -> offline replay.
console:
	$(PYTHON) -m repro console --chaos-seed 2 --profile byzantine \
		--out replay.html --bundle-out replay-bundle.json
	$(PYTHON) -m repro console --validate replay-bundle.json

experiments:
	$(PYTHON) -m repro
